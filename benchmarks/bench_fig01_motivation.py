"""Figure 1 — motivation: convergence to the exact answer across families.

The paper shows ELPIS matching the serial scan's answer three orders of
magnitude faster and beating the graph-based EFANNA 3x on ImageNet
embeddings.  Here the comparison is by distance calculations (the
hardware-independent cost); the wall-clock gap at paper scale follows
from it.
"""

import numpy as np
import pytest

from repro.core.distances import DistanceComputer
from repro.eval.reporting import Report
from repro.hashing.lsh import QueryAwareLSH

TIER = "1M"
DATASET = "imagenet"


def _cost_graph(index, query, true_id):
    for width in (10, 20, 40, 80, 160, 320):
        result = index.search(query, k=1, beam_width=width)
        if result.ids[0] == true_id:
            return result.distance_calls
    return None


def _cost_qalsh(qalsh, computer, query, true_id):
    order = qalsh.examination_order(query)
    examined = 0
    for lo in range(0, order.size, 64):
        ids = order[lo : lo + 64]
        examined += ids.size
        if true_id in ids:
            return examined
    return None


@pytest.fixture(scope="module")
def experiment(store):
    data = store.data(DATASET, TIER)
    queries = store.queries(DATASET)
    computer = DistanceComputer(data)
    true_ids = [int(computer.exact_knn(q, 1)[0][0]) for q in queries]
    elpis = store.index("ELPIS", DATASET, TIER)
    efanna = store.index("EFANNA", DATASET, TIER)
    qalsh = QueryAwareLSH(n_projections=16, seed=1).build(data)
    return data, queries, computer, true_ids, elpis, efanna, qalsh


def test_fig01_convergence_cost(benchmark, store, experiment):
    data, queries, computer, true_ids, elpis, efanna, qalsh = experiment

    def workload():
        rows = []
        for q, true_id in zip(queries, true_ids):
            rows.append(
                {
                    "ELPIS": _cost_graph(elpis, q, true_id),
                    "EFANNA": _cost_graph(efanna, q, true_id),
                    "QALSH": _cost_qalsh(qalsh, computer, q, true_id),
                    "SerialScan": data.shape[0],
                }
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report("fig01_motivation")
    table = []
    means = {}
    for method in ("ELPIS", "EFANNA", "QALSH", "SerialScan"):
        found = [r[method] for r in rows if r[method] is not None]
        mean_calls = float(np.mean(found)) if found else None
        means[method] = mean_calls
        table.append([method, mean_calls, f"{len(found)}/{len(rows)}"])
    report.add_table(
        ["method", "mean dist calls to exact NN", "exact found"],
        table,
        title=f"Figure 1 (ImageNet-like, {data.shape[0]} vectors)",
    )
    report.save()
    # paper shape: graph methods beat the scan by a large factor; ELPIS
    # converges reliably
    assert means["ELPIS"] is not None
    assert means["ELPIS"] < means["SerialScan"]
