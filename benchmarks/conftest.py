"""Shared benchmark infrastructure.

Every bench module regenerates one table or figure of the paper.  Builds
are expensive, so a session-wide store caches datasets, ground truths, and
built indexes under stable keys; bench modules that share artifacts (e.g.
Figures 7-9 all need the same builds) pay for them once.

Environment knobs:

* ``REPRO_SCALE``   — multiplies every tier's point count (default 1.0).
* ``REPRO_QUERIES`` — queries per workload (default 10; the paper uses 100).
* ``REPRO_RESULTS_DIR`` — where text reports are archived
  (default ``benchmarks/results``).
* ``REPRO_TIER_MODE`` — ``disk`` answers the beyond-RAM tiers (25GB/100GB/
  1B) from a memory-mapped disk tier for the methods that support it
  (RNG/medoid-only seed selection: Vamana/NSG/SSG/NSW/DPG/KGraph); other
  methods and the 1M tier stay in RAM.  Default ``ram``.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.core.distances import DistanceComputer
from repro.core.incremental import build_ii_graph
from repro.datasets.synthetic import generate, tier_size
from repro.eval.metrics import ground_truth
from repro.indexes import create_index
from repro.indexes.base import load_disk_index

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
N_QUERIES = int(os.environ.get("REPRO_QUERIES", "10"))
TIER_MODE = os.environ.get("REPRO_TIER_MODE", "ram")

#: Tiers whose paper-scale footprint exceeds RAM — the ones ``TIER_MODE``
#: ``disk`` answers from a memory-mapped disk tier.
BEYOND_RAM_TIERS = ("25GB", "100GB", "1B")

#: Methods per tier, mirroring the paper's scalability exclusions (§4.4-4.5):
#: every method runs at 1M; methods that could not build 25GB+ indexes in
#: the paper are dropped at the same relative points here.
TIER_METHODS: dict[str, tuple[str, ...]] = {
    "1M": (
        "HNSW", "NSG", "SSG", "Vamana", "DPG", "EFANNA", "HCNNG", "KGraph",
        "NGT", "SPTAG-BKT", "SPTAG-KDT", "ELPIS", "LSHAPG",
    ),
    "25GB": ("HNSW", "NSG", "SSG", "Vamana", "SPTAG-BKT", "ELPIS"),
    "100GB": ("HNSW", "Vamana", "ELPIS"),
    "1B": ("HNSW", "Vamana", "ELPIS"),
}

#: Construction parameters: modest degrees/beams for the scaled-down tiers
#: (the paper's R=60 / L=800 target 100M-1B points).
BUILD_PARAMS: dict[str, dict] = {
    "HNSW": {"max_degree": 24, "ef_construction": 64},
    "Vamana": {"max_degree": 24, "build_beam_width": 64, "prune_pool_size": 96, "alpha": 1.3},
    "NSG": {"max_degree": 24, "build_beam_width": 48},
    "SSG": {"max_degree": 24, "theta_degrees": 60.0},
    "ELPIS": {"max_degree": 16, "ef_construction": 48, "nprobe": 4},
    "SPTAG-BKT": {"k_neighbors": 16, "n_partitions": 3, "leaf_size": 200},
    "SPTAG-KDT": {"k_neighbors": 16, "n_partitions": 3, "leaf_size": 200},
    "HCNNG": {"n_clusterings": 8, "min_cluster_size": 64},
    "DPG": {"k_neighbors": 16},
    "KGraph": {"k_neighbors": 20},
    "EFANNA": {"k_neighbors": 20},
    "NGT": {"k_neighbors": 16, "max_degree": 24},
    "LSHAPG": {"max_degree": 24, "ef_construction": 64},
}


class Store:
    """Session-wide cache for datasets, truths, builds, and II graphs."""

    def __init__(self):
        self._cache: dict = {}
        self._tier_root: tempfile.TemporaryDirectory | None = None

    def data(self, dataset: str, tier: str) -> np.ndarray:
        key = ("data", dataset, tier)
        if key not in self._cache:
            self._cache[key] = generate(dataset, tier_size(tier, SCALE), seed=7)
        return self._cache[key]

    def queries(self, dataset: str, n: int = N_QUERIES) -> np.ndarray:
        key = ("queries", dataset, n)
        if key not in self._cache:
            self._cache[key] = generate(dataset, n, seed=7_777_777)
        return self._cache[key]

    def truth(self, dataset: str, tier: str, k: int = 10) -> np.ndarray:
        key = ("truth", dataset, tier, k)
        if key not in self._cache:
            ids, _ = ground_truth(
                self.data(dataset, tier), self.queries(dataset), k
            )
            self._cache[key] = ids
        return self._cache[key]

    def index(self, method: str, dataset: str, tier: str):
        key = ("index", method, dataset, tier, TIER_MODE)
        if key not in self._cache:
            params = BUILD_PARAMS.get(method, {})
            index = create_index(method, seed=11, **params)
            index.build(self.data(dataset, tier))
            if (
                TIER_MODE == "disk"
                and tier in BEYOND_RAM_TIERS
                and getattr(index, "disk_tier_capable", False)
            ):
                if self._tier_root is None:
                    self._tier_root = tempfile.TemporaryDirectory(
                        prefix="repro-disk-tiers-"
                    )
                tier_dir = Path(self._tier_root.name) / f"{method}-{dataset}-{tier}"
                index.to_disk_tier(tier_dir)
                index = load_disk_index(tier_dir)
            self._cache[key] = index
        return self._cache[key]

    def ii_graph(self, dataset: str, tier: str, diversify: str, **params):
        """The Section 4.2/4.3 apparatus: one II graph per ND strategy."""
        key = ("ii", dataset, tier, diversify, tuple(sorted(params.items())))
        if key not in self._cache:
            computer = DistanceComputer(self.data(dataset, tier))
            result = build_ii_graph(
                computer,
                max_degree=24,
                beam_width=96,
                diversify=diversify,
                diversify_params=params,
                rng=np.random.default_rng(11),
            )
            self._cache[key] = (computer, result)
        return self._cache[key]


@pytest.fixture(scope="session")
def store() -> Store:
    return Store()
