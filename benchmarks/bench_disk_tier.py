"""Beyond-RAM tier — recall/QPS/page-reads under a resident-memory budget.

The paper's 25GB/100GB/1B experiments (Figures 13/14/16) assume the graph
and raw vectors fit in RAM.  This benchmark demonstrates the DiskANN-style
alternative end to end: PQ codes stay resident and drive the beam, the
graph and raw vectors are memory-mapped, and the final beam is re-ranked
exactly from disk.

Three acceptance properties are asserted, not just reported:

* **beyond-RAM**: the search phase runs in a fresh ``spawn`` subprocess
  whose peak-RSS growth stays under a budget of
  ``BUDGET_FRACTION × file_bytes`` — i.e. strictly less memory than the
  mmap'd artifacts it is searching over (asserted once the budget clears
  ``MIN_RSS_BUDGET``; below that, interpreter noise dominates).
* **recall parity**: recall after exact re-rank stays within
  ``RECALL_TOLERANCE`` of the in-memory exact path over the same graph.
* **determinism**: answer ids and the ``approx_calls``/``page_reads``
  counters are bit-identical across worker counts, kernel backends, and
  the subprocess boundary.
"""

import numpy as np

from conftest import N_QUERIES, SCALE

from repro.core.serialization import open_disk_tier
from repro.datasets.synthetic import generate
from repro.eval.disk import probe_disk_search
from repro.eval.metrics import ground_truth, recall
from repro.eval.parallel import run_batch
from repro.eval.reporting import Report
from repro.indexes.base import load_disk_index
from repro.indexes.randomgraph import RandomGraphIndex
from repro.indexes.vamana import VamanaIndex

N_DISK = max(2_000, int(120_000 * SCALE))
N_PARITY = max(1_200, int(5_000 * SCALE))
DATASET = "deep"  # dim 96 — the survey's largest-file synthetic stand-in
DEGREE = 32
K, BEAM = 10, 128
BUDGET_FRACTION = 0.45
MIN_RSS_BUDGET = 16 * 1024 * 1024
RECALL_TOLERANCE = 0.15


def _mean_recall(outcomes, truth) -> float:
    return float(np.mean([recall(o.ids, truth[o.query_index]) for o in outcomes]))


def test_disk_tier(benchmark, tmp_path):
    data = generate(DATASET, N_DISK, seed=13)
    queries = generate(DATASET, N_QUERIES, seed=13_131_313)
    truth, _ = ground_truth(data, queries, K)
    index = RandomGraphIndex(degree=DEGREE, seed=11).build(data)

    # in-memory exact path: the recall yardstick
    ram = run_batch(index, queries, k=K, beam_width=BEAM, n_workers=1)
    ram_recall = _mean_recall(ram.outcomes, truth)

    tier_dir = index.to_disk_tier(
        tmp_path / "tier", pq_subspaces=16, pq_centroids=64
    )
    tier = open_disk_tier(tier_dir)
    budget = int(BUDGET_FRACTION * tier.file_bytes())
    assert tier.resident_bytes() < budget, (
        f"resident PQ footprint {tier.resident_bytes()} exceeds the "
        f"{budget}-byte budget — the tier is not beyond-RAM at this scale"
    )

    # the timed leg: search in an isolated subprocess with RSS tracking
    probe = benchmark.pedantic(
        lambda: probe_disk_search(tier_dir, queries, k=K, beam_width=BEAM),
        rounds=1, iterations=1,
    )
    rss_delta = probe["peak_rss_bytes"] - probe["baseline_rss_bytes"]
    if budget >= MIN_RSS_BUDGET:
        assert rss_delta < budget, (
            f"search phase grew RSS by {rss_delta / 2**20:.1f} MiB, over the "
            f"{budget / 2**20:.1f} MiB budget (files: "
            f"{tier.file_bytes() / 2**20:.1f} MiB)"
        )

    # determinism: worker counts × kernel backends × the process boundary
    runs = {
        (n_workers, kernel): run_batch(
            load_disk_index(tier_dir), queries, k=K, beam_width=BEAM,
            n_workers=n_workers, kernel=kernel,
        )
        for n_workers, kernel in ((1, "python"), (2, "python"), (2, "scalar"))
    }
    base = runs[(1, "python")]
    for key, other in runs.items():
        for a, b in zip(base.outcomes, other.outcomes):
            assert np.array_equal(a.ids, b.ids), key
            assert (a.approx_calls, a.page_reads) == (
                b.approx_calls, b.page_reads
            ), key
    for a, child_ids in zip(base.outcomes, probe["ids"]):
        assert np.array_equal(a.ids, child_ids)
    assert probe["total_approx_calls"] == base.total_approx_calls
    assert probe["total_page_reads"] == base.total_page_reads

    disk_recall = _mean_recall(base.outcomes, truth)
    assert disk_recall >= ram_recall - RECALL_TOLERANCE, (
        f"PQ-guided + exact re-rank recall {disk_recall:.3f} fell more than "
        f"{RECALL_TOLERANCE} below the in-memory exact path ({ram_recall:.3f})"
    )

    report = Report("disk_tier")
    report.add_metadata(
        n=N_DISK, dataset=DATASET, scale=SCALE, degree=DEGREE,
        beam_width=BEAM, budget_bytes=budget,
        rss_asserted=budget >= MIN_RSS_BUDGET,
        rss_reset=probe["rss_reset"], cache_dropped=probe["cache_dropped"],
    )
    n_q = len(base.outcomes)
    report.add_table(
        ["metric", "value"],
        [
            ["points", N_DISK],
            ["file MiB (graph+vectors)", tier.file_bytes() / 2**20],
            ["resident KiB (PQ)", tier.resident_bytes() / 1024],
            ["RSS budget MiB", budget / 2**20],
            ["child baseline RSS MiB", probe["baseline_rss_bytes"] / 2**20],
            ["child peak RSS MiB", probe["peak_rss_bytes"] / 2**20],
            ["search RSS growth MiB", rss_delta / 2**20],
            ["recall (in-memory exact)", ram_recall],
            ["recall (disk, PQ+rerank)", disk_recall],
            ["QPS (subprocess)", probe["qps"]],
            ["mean approx calls/query", probe["total_approx_calls"] / n_q],
            ["mean page reads/query", probe["total_page_reads"] / n_q],
        ],
        title=f"Beyond-RAM disk tier: {DATASET} n={N_DISK} (RandomGraph "
        f"R={DEGREE}, beam {BEAM})",
    )
    report.save()


def test_disk_tier_recall_parity(benchmark, tmp_path):
    """PQ-guided traversal + exact re-rank on a *real* graph.

    The beyond-RAM test above uses a random graph (the only builder cheap
    enough at 80k points), where absolute recall is too low to say anything
    interesting about parity.  Here a Vamana graph at moderate scale gives a
    meaningful yardstick: the disk path's recall must track the in-memory
    exact path closely, not just stay within the blanket tolerance.
    """
    data = generate(DATASET, N_PARITY, seed=17)
    queries = generate(DATASET, N_QUERIES, seed=17_171_717)
    truth, _ = ground_truth(data, queries, K)
    index = VamanaIndex(
        seed=11, max_degree=40, build_beam_width=96, prune_pool_size=128
    ).build(data)

    ram = run_batch(index, queries, k=K, beam_width=BEAM, n_workers=1)
    ram_recall = _mean_recall(ram.outcomes, truth)

    tier_dir = index.to_disk_tier(
        tmp_path / "tier", pq_subspaces=16, pq_centroids=64
    )

    def workload():
        return run_batch(
            load_disk_index(tier_dir), queries, k=K, beam_width=BEAM,
            n_workers=1,
        )

    disk = benchmark.pedantic(workload, rounds=1, iterations=1)
    disk_recall = _mean_recall(disk.outcomes, truth)
    assert ram_recall >= 0.8, (
        f"yardstick too weak: in-memory Vamana recall {ram_recall:.3f}"
    )
    assert disk_recall >= ram_recall - RECALL_TOLERANCE, (
        f"disk recall {disk_recall:.3f} vs in-memory exact {ram_recall:.3f}"
    )

    report = Report("disk_tier_recall_parity")
    report.add_metadata(n=N_PARITY, dataset=DATASET, scale=SCALE, beam_width=BEAM)
    n_q = len(disk.outcomes)
    report.add_table(
        ["metric", "value"],
        [
            ["points", N_PARITY],
            ["recall (in-memory exact)", ram_recall],
            ["recall (disk, PQ+rerank)", disk_recall],
            ["mean approx calls/query", disk.total_approx_calls / n_q],
            ["mean page reads/query", disk.total_page_reads / n_q],
            ["mean exact calls/query", disk.total_distance_calls / n_q],
        ],
        title=f"Disk-tier recall parity: {DATASET} n={N_PARITY} "
        f"(Vamana, beam {BEAM})",
    )
    report.save()
