"""Streaming tier under churn: recall drift, determinism, mixed-load latency.

Not a paper figure: the paper's protocol is build-then-freeze, and this
benchmark characterizes the streaming serving tier layered on top of it.
A synthetic dataset is built into a :class:`StreamingIndex`, then driven
through a fixed insert/delete/consolidate schedule at 10% churn:

* **Recall drift.**  Recall against the *live* ground truth is measured
  after churn (tombstoned nodes still routing) and again after
  ``consolidate()``; the consolidated graph must stay within 2 recall
  points of a from-scratch build over the same live vectors.
* **Determinism.**  The whole schedule is replayed at worker counts 1, 2,
  and 4 and under both the vectorized and the scalar beam backend; graph
  bytes (fingerprint) and the aggregate distance-call counter must be
  bit-identical every time.
* **Mixed load.**  The asyncio serving engine answers concurrent
  micro-batched queries while deletes and inserts land between batches;
  client-observed p50/p95/p99 and cache behavior are recorded.

Environment knobs: ``REPRO_SCALE`` multiplies the 6k point count.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np

from repro.core.kernels import resolve_backend
from repro.core.streaming import StreamingIndex
from repro.datasets.synthetic import generate
from repro.eval.metrics import recall
from repro.eval.reporting import Report
from repro.eval.serving import ServingEngine

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
N_POINTS = max(int(6_000 * SCALE), 256)
N_QUERIES = 25
K = 10
MAX_DEGREE = 16
WIDTH = 64
CHURN = 0.10
WORKER_COUNTS = (1, 2, 4)


def _make_index(n_workers=1, kernel=None):
    return StreamingIndex(
        max_degree=MAX_DEGREE,
        build_beam_width=WIDTH,
        seed=11,
        default_beam_width=WIDTH,
        n_workers=n_workers,
        min_parallel_batch=8,
        kernel=kernel,
    )


def _churn_schedule(n):
    """Fixed, replayable schedule: who dies and what replaces them."""
    rng = np.random.default_rng(23)
    n_churn = int(round(CHURN * n))
    doomed = rng.choice(n, size=n_churn, replace=False)
    replacements = generate("deep", n_churn, seed=29)
    return doomed, replacements


def _apply_schedule(index, doomed, replacements):
    half = len(doomed) // 2
    index.delete(doomed[:half])
    index.insert(replacements[: len(replacements) // 2])
    index.delete(doomed[half:])
    index.insert(replacements[len(replacements) // 2:])


def _mean_recall(index, queries, true_ids, beam_width=WIDTH):
    recalls = []
    for j in range(queries.shape[0]):
        index.seed_query_rng(j)
        result = index.search(queries[j], k=K, beam_width=beam_width)
        recalls.append(recall(result.ids, true_ids[j]))
    return float(np.mean(recalls))


def test_streaming_churn_and_determinism():
    data = generate("deep", N_POINTS, seed=7)
    queries = generate("deep", N_QUERIES, seed=13)
    doomed, replacements = _churn_schedule(N_POINTS)

    report = Report("streaming")
    report.add_metadata(
        n_points=N_POINTS,
        n_queries=N_QUERIES,
        k=K,
        max_degree=MAX_DEGREE,
        beam_width=WIDTH,
        churn=CHURN,
        kernel=resolve_backend(None),
        worker_counts=list(WORKER_COUNTS),
        cores=os.cpu_count(),
    )

    # ------------------------------------------------------------------
    # recall drift at 10% churn, before and after consolidation
    # ------------------------------------------------------------------
    index = _make_index()
    start = time.perf_counter()
    index.build(data)
    build_s = time.perf_counter() - start
    _apply_schedule(index, doomed, replacements)
    true_ids, _ = index.alive_ground_truth(queries, K)
    recall_churned = _mean_recall(index, queries, true_ids)
    start = time.perf_counter()
    consolidation = index.consolidate()
    consolidate_s = time.perf_counter() - start
    recall_consolidated = _mean_recall(index, queries, true_ids)

    # the yardstick: a from-scratch build over exactly the live vectors
    alive_rows = np.concatenate(
        [
            data[np.setdiff1d(np.arange(N_POINTS), doomed)],
            replacements,
        ]
    )
    fresh = _make_index().build(alive_rows)
    fresh_truth, _ = fresh.alive_ground_truth(queries, K)
    recall_fresh = _mean_recall(fresh, queries, fresh_truth)

    report.add_table(
        ["stage", "recall@10", "dist calls", "seconds"],
        [
            ["initial build", "", index.build_report.distance_calls, round(build_s, 2)],
            ["churned (tombstones routing)", round(recall_churned, 4), "", ""],
            [
                "consolidated",
                round(recall_consolidated, 4),
                consolidation.distance_calls,
                round(consolidate_s, 2),
            ],
            ["from-scratch rebuild", round(recall_fresh, 4), fresh.build_report.distance_calls, ""],
        ],
        title=f"Recall vs live ground truth at {100 * CHURN:.0f}% churn, "
        f"n={N_POINTS}, R={MAX_DEGREE}, L={WIDTH}",
    )

    drift = recall_fresh - recall_consolidated
    assert drift < 0.02, (
        f"consolidated recall {recall_consolidated:.4f} drifted "
        f"{100 * drift:.1f} points below the from-scratch build's "
        f"{recall_fresh:.4f} (tolerance: 2 points)"
    )

    # ------------------------------------------------------------------
    # determinism: bit-identical state across workers and kernel backends
    # ------------------------------------------------------------------
    def replay(n_workers, kernel):
        replayed = _make_index(n_workers=n_workers, kernel=kernel)
        replayed.build(data)
        _apply_schedule(replayed, doomed, replacements)
        replayed.consolidate()
        return replayed.graph_fingerprint(), replayed.computer.count

    runs = {}
    for n_workers in WORKER_COUNTS:
        runs[(n_workers, "default")] = replay(n_workers, None)
    runs[(1, "scalar")] = replay(1, "scalar")
    baseline = runs[(1, "default")]
    for (n_workers, kernel), observed in runs.items():
        assert observed == baseline, (
            f"schedule replay at workers={n_workers} kernel={kernel} produced "
            f"fingerprint/count {observed}, baseline {baseline}"
        )
    report.add_table(
        ["workers", "kernel", "graph fingerprint", "dist calls"],
        [
            [n_workers, kernel, fingerprint, count]
            for (n_workers, kernel), (fingerprint, count) in runs.items()
        ],
        title="Schedule replay determinism (identical rows expected)",
    )

    # ------------------------------------------------------------------
    # mixed load through the serving engine: concurrent queries + churn
    # ------------------------------------------------------------------
    async def mixed_load():
        live = _make_index().build(data)
        engine = ServingEngine(live, k=K, beam_width=WIDTH, max_batch=8)
        half = len(doomed) // 2
        await asyncio.gather(
            engine.delete(doomed[:half]),
            *[engine.search(q) for q in queries],
        )
        await asyncio.gather(
            engine.insert(replacements),
            engine.delete(doomed[half:]),
            *[engine.search(q) for q in queries],
        )
        await engine.consolidate()
        answers = await asyncio.gather(*[engine.search(q) for q in queries])
        truth, _ = live.alive_ground_truth(queries, K)
        final_recall = float(
            np.mean([recall(ids, t) for (ids, _), t in zip(answers, truth)])
        )
        # deleted ids must never surface, at any point after the tombstoning
        for ids, _ in answers:
            assert not np.intersect1d(ids, doomed).size
        await engine.close()
        return engine.report, final_recall

    serving_report, served_recall = asyncio.run(mixed_load())
    measurement = serving_report.measurement(served_recall, WIDTH)
    report.add_table(
        ["metric", "value"],
        [
            ["queries served", serving_report.n_queries],
            ["cache hits", serving_report.cache_hits],
            ["mean batch size", round(serving_report.mean_batch_size, 2)],
            ["recall@10 (post-consolidate)", round(served_recall, 4)],
            ["p50 latency (ms)", round(1000 * measurement.p50_time_s, 3)],
            ["p95 latency (ms)", round(1000 * measurement.p95_time_s, 3)],
            ["p99 latency (ms)", round(1000 * measurement.p99_time_s, 3)],
            ["QPS", round(measurement.qps, 1)],
        ],
        title="Mixed insert/delete/query load (asyncio micro-batching)",
    )
    report.save()

    assert serving_report.n_queries == 3 * N_QUERIES
    assert measurement.p99_time_s > 0.0
