"""Figure 7 — indexing time across methods and dataset sizes.

Paper shape: II-based methods (ELPIS, HNSW) build fastest; ELPIS ~2.7x
faster than HNSW; SPTAG variants are the slowest by a wide margin; only
HNSW / ELPIS / Vamana scale to the largest tiers, with ELPIS fastest.
"""

import pytest

from repro.eval.reporting import Report

from conftest import TIER_METHODS

TIERS = ("1M", "25GB", "100GB", "1B")
DATASET = "deep"


def test_fig07_indexing_time(benchmark, store):
    def workload():
        times = {}
        for tier in TIERS:
            for method in TIER_METHODS[tier]:
                index = store.index(method, DATASET, tier)
                times[(tier, method)] = index.build_report.wall_time_s
        return times

    times = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report("fig07_indexing_time")
    rows = [
        [tier, method, round(t, 2)]
        for (tier, method), t in sorted(times.items())
    ]
    report.add_table(
        ["tier", "method", "build seconds"],
        rows,
        title="Figure 7: indexing time on Deep",
    )
    report.save()
    # paper shape at the 1B tier: ELPIS builds fastest (small tolerance for
    # run-to-run noise at reduced scale), clearly ahead of Vamana
    assert times[("1B", "ELPIS")] < times[("1B", "HNSW")] * 1.25
    assert times[("1B", "ELPIS")] < times[("1B", "Vamana")]
    # SPTAG is among the slowest builders at 1M (Figure 7's outlier)
    one_m = {m: times[("1M", m)] for m in TIER_METHODS["1M"]}
    sptag = max(one_m["SPTAG-BKT"], one_m["SPTAG-KDT"])
    assert sptag > one_m["ELPIS"]
