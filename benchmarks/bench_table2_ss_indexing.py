"""Table 2 — SS impact on indexing: SN-based vs KS-based construction.

The paper builds the same II+RND graph with SN and with KS build-time seed
selection on Deep 1M and 25GB, reporting the extra distance calculations SN
incurs and how many 100-NN queries (at 0.99 recall) KS's savings would
fund.  Shape: SN costs measurably more at both sizes, and the overhead
grows with dataset size.
"""

import numpy as np
import pytest

from repro.core.distances import DistanceComputer
from repro.core.incremental import (
    RandomBuildSeeds,
    StackedNSWBuildSeeds,
    build_ii_graph,
)
from repro.eval.reporting import Report

DATASET = "deep"
TIERS = ("1M", "25GB")
#: distance calls of one 100-NN query at 0.99 recall — taken from the
#: Figure 6 sweep at this scale; used to amortize the SN overhead.
CALLS_PER_QUERY = 2_000


def _build_calls(store, tier, provider_factory):
    computer = DistanceComputer(store.data(DATASET, tier))
    result = build_ii_graph(
        computer,
        max_degree=24,
        beam_width=96,
        diversify="rnd",
        rng=np.random.default_rng(13),
        build_seeds=provider_factory(),
        track_pruning=False,
    )
    return result.distance_calls


def test_table2_ss_indexing_cost(benchmark, store):
    def workload():
        out = {}
        for tier in TIERS:
            out[(tier, "KS")] = _build_calls(
                store, tier, lambda: RandomBuildSeeds(n_seeds=4)
            )
            out[(tier, "SN")] = _build_calls(
                store, tier, lambda: StackedNSWBuildSeeds(max_degree=16)
            )
        return out

    calls = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report("table2_ss_indexing")
    rows = []
    overheads = {}
    for tier in TIERS:
        overhead = calls[(tier, "SN")] - calls[(tier, "KS")]
        overheads[tier] = overhead
        rows.append(
            [
                tier,
                calls[(tier, "SN")],
                calls[(tier, "KS")],
                overhead,
                overhead // CALLS_PER_QUERY,
            ]
        )
    report.add_table(
        ["tier", "dist calls (SN)", "dist calls (KS)",
         "overhead (SN vs KS)", "additional 100-NN queries"],
        rows,
        title="Table 2: SS impact on indexing (Deep)",
    )
    report.save()
    for tier in TIERS:
        assert overheads[tier] > 0, f"SN should cost more than KS on {tier}"
    assert overheads["25GB"] > overheads["1M"]
