"""Table 1 — pruning ratios of the ND strategies on Deep/Sift (25GB tier).

Paper values: RND 20-25%, MOND 2-4%, RRND 0.6-0.7%.  The ratio is the
fraction of an overflowing neighbor list that the diversification predicate
itself removes during construction; the ordering RND > MOND > RRND is the
shape under test.
"""

import pytest

from repro.eval.reporting import Report

STRATEGIES = {
    "RND": ("rnd", {}),
    "MOND": ("mond", {"theta_degrees": 60.0}),
    "RRND": ("rrnd", {"alpha": 1.3}),
}
DATASETS = ("deep", "sift")
TIER = "25GB"


def test_table1_pruning_ratios(benchmark, store):
    def workload():
        ratios = {}
        for dataset in DATASETS:
            for label, (diversify, params) in STRATEGIES.items():
                _, built = store.ii_graph(dataset, TIER, diversify, **params)
                ratios[(dataset, label)] = built.prune_stats.ratio()
        return ratios

    ratios = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report("table1_pruning")
    report.add_table(
        ["dataset"] + list(STRATEGIES),
        [
            [d] + [f"{100 * ratios[(d, s)]:.1f}%" for s in STRATEGIES]
            for d in DATASETS
        ],
        title="Table 1: pruning ratios of ND methods",
    )
    report.save()
    for dataset in DATASETS:
        assert (
            ratios[(dataset, "RND")]
            > ratios[(dataset, "MOND")]
            > ratios[(dataset, "RRND")]
        ), dataset
