"""Figure 9 — final index size (including raw data) per method.

Paper shape: EFANNA, KGraph (and the methods keeping their dense k-NN
lists) have the largest final footprints relative to graph-only methods;
NSG's final graph is compact despite its expensive build.
"""

import pytest

from conftest import TIER_METHODS

from repro.eval.reporting import Report

DATASET = "deep"
TIER = "1M"


def test_fig09_index_sizes(benchmark, store):
    data = store.data(DATASET, TIER)
    raw_bytes = data.nbytes

    def workload():
        return {
            method: store.index(method, DATASET, TIER).memory_bytes()
            for method in TIER_METHODS[TIER]
        }

    sizes = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report("fig09_index_size")
    report.add_table(
        ["method", "index KiB", "index+raw KiB"],
        [
            [m, b // 1024, (b + raw_bytes) // 1024]
            for m, b in sorted(sizes.items(), key=lambda kv: kv[1])
        ],
        title=f"Figure 9: final index size (Deep {TIER} tier, raw = {raw_bytes // 1024} KiB)",
    )
    report.save()
    # EFANNA retains trees + dense k-NN lists: larger than NSG's final graph
    assert sizes["EFANNA"] > sizes["NSG"]
