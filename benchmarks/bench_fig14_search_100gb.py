"""Figure 14 — query performance on the 100GB tier.

Paper shape: only HNSW, ELPIS, and Vamana scale this far; HNSW and ELPIS
consistently rank top (Figure 18's large-dataset recommendation).
"""

import pytest

from conftest import TIER_METHODS

from repro.eval.reporting import Report
from repro.eval.runner import calls_at_recall, sweep_beam_widths

TIER = "100GB"
DATASET = "deep"
WIDTHS = (10, 20, 40, 80, 160, 320, 640)


def test_fig14_search_100gb(benchmark, store):
    queries = store.queries(DATASET)
    truth = store.truth(DATASET, TIER)

    def workload():
        return {
            method: sweep_beam_widths(
                store.index(method, DATASET, TIER), queries, truth,
                k=10, beam_widths=WIDTHS,
            )
            for method in TIER_METHODS[TIER]
        }

    curves = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report("fig14_search_100gb")
    rows = []
    for method, curve in curves.items():
        for p in curve:
            rows.append([method, p.beam_width, round(p.recall, 3), int(p.distance_calls)])
    report.add_table(
        ["method", "beam", "recall", "dist calls"],
        rows,
        title=f"Figure 14: Deep ({TIER} tier)",
    )
    report.save()
    at95 = {m: calls_at_recall(c, 0.95) for m, c in curves.items()}
    reached = {m: v for m, v in at95.items() if v is not None}
    assert "HNSW" in reached or "ELPIS" in reached
