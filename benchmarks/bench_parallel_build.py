"""Worker-count and round-size scaling of the batched II builder.

Not a paper figure: this benchmark characterizes the construction-side twin
of the batch-query engine.  A 20k-point synthetic dataset is built with the
ParlayANN-style prefix-doubling builder at worker counts 1, 2, and 4, and
the builder's guarantee is asserted unconditionally: the graph's edges and
the aggregate distance-calculation count are bit-identical at every worker
count.  The throughput expectation (>1.5x build throughput at 4 workers) is
asserted only when the machine actually has 4+ cores to scale onto; on
smaller runners the table is still recorded.

A second table sweeps ``max_round_size``: smaller rounds search a fresher
prefix graph (more synchronization, better candidates), larger rounds
parallelize more coarsely — the knob trades build quality against speed.

Environment knobs: ``REPRO_SCALE`` multiplies the 20k point count.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.distances import DistanceComputer
from repro.core.incremental import build_ii_graph
from repro.core.kernels import resolve_backend
from repro.datasets.synthetic import generate
from repro.eval.reporting import Report

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
N_POINTS = max(int(20_000 * SCALE), 64)
MAX_DEGREE = 12
WIDTH = 32
WORKER_COUNTS = (1, 2, 4)
ROUND_CAPS = (256, 1024, None)


def _build(data, workers, max_round_size=None, kernel=None):
    computer = DistanceComputer(data)
    start = time.perf_counter()
    result = build_ii_graph(
        computer,
        max_degree=MAX_DEGREE,
        beam_width=WIDTH,
        diversify="rnd",
        rng=np.random.default_rng(11),
        track_pruning=False,
        n_workers=workers,
        max_round_size=max_round_size,
        kernel=kernel,
    )
    elapsed = time.perf_counter() - start
    return result, elapsed


def _edge_fingerprint(graph):
    """Order-sensitive digest of every adjacency list."""
    parts = [graph.neighbors(node) for node in range(graph.n)]
    flat = np.concatenate([p for p in parts if p.size] or [np.empty(0, np.int64)])
    degrees = graph.degrees()
    return hash((flat.tobytes(), degrees.tobytes()))


def test_parallel_build_scaling():
    data = generate("deep", N_POINTS, seed=7)

    builds = {workers: _build(data, workers) for workers in WORKER_COUNTS}
    base_result, base_elapsed = builds[1]

    report = Report("parallel_build")
    report.add_metadata(
        n_points=N_POINTS,
        max_degree=MAX_DEGREE,
        beam_width=WIDTH,
        kernel=resolve_backend(None),
        worker_counts=list(WORKER_COUNTS),
        cores=os.cpu_count(),
    )
    report.add_table(
        ["workers", "build s", "points/s", "speedup", "dist calls", "edges"],
        [
            [
                workers,
                round(elapsed, 2),
                round(N_POINTS / elapsed, 1),
                round(base_elapsed / elapsed, 2),
                result.distance_calls,
                result.graph.num_edges(),
            ]
            for workers, (result, elapsed) in builds.items()
        ],
        title=f"Batched build scaling, n={N_POINTS}, R={MAX_DEGREE}, "
        f"L={WIDTH} ({os.cpu_count()} cores)",
    )

    sweep_workers = min(4, os.cpu_count() or 1)
    cap_rows = []
    for cap in ROUND_CAPS:
        result, elapsed = _build(data, sweep_workers, max_round_size=cap)
        cap_rows.append(
            [
                cap if cap is not None else "uncapped",
                round(elapsed, 2),
                round(N_POINTS / elapsed, 1),
                result.distance_calls,
                result.graph.num_edges(),
            ]
        )
    report.add_table(
        ["round cap", "build s", "points/s", "dist calls", "edges"],
        cap_rows,
        title=f"Round-size sweep at {sweep_workers} workers",
    )
    report.save()

    # the determinism guarantee holds on any machine
    base_fingerprint = _edge_fingerprint(base_result.graph)
    for workers, (result, _) in builds.items():
        assert result.distance_calls == base_result.distance_calls, (
            f"{workers}-worker build performed {result.distance_calls} "
            f"distance calls, sequential round loop {base_result.distance_calls}"
        )
        assert _edge_fingerprint(result.graph) == base_fingerprint, (
            f"{workers}-worker build produced different edges"
        )

    # the kernel backends' round searches are bit-identical to the scalar
    # reference, so the built graph is too
    scalar_result, _ = _build(data, 1, kernel="scalar")
    assert scalar_result.distance_calls == base_result.distance_calls
    assert _edge_fingerprint(scalar_result.graph) == base_fingerprint, (
        "scalar-kernel build produced different edges than the default kernel"
    )

    # the throughput claim needs cores to scale onto
    if (os.cpu_count() or 1) >= 4:
        _, elapsed_4 = builds[4]
        assert base_elapsed > 1.5 * elapsed_4, (
            f"4-worker build took {elapsed_4:.1f}s, not >1.5x faster than "
            f"the sequential round loop's {base_elapsed:.1f}s"
        )
