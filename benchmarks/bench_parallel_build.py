"""Worker-count, kernel-backend, and round-size scaling of the II builder.

Not a paper figure: this benchmark characterizes the construction-side twin
of the batch-query engine.  A 20k-point synthetic dataset is built with the
ParlayANN-style prefix-doubling builder at worker counts 1, 2, and 4, and
the builder's guarantee is asserted unconditionally: the graph's edges and
the aggregate distance-calculation count are bit-identical at every worker
count AND at every construction-kernel backend (``python``, ``numba``,
``scalar``).  The throughput expectation (>1.5x build throughput at 4
workers) is asserted only when the machine actually has 4+ cores to scale
onto; on smaller runners the table is still recorded.

A second table breaks the single-worker build into its phases — candidate
search, diversification/overflow prune, merge bookkeeping — for each kernel
backend, at the fixed ISSUE reference point n=1000/R=12/L=32.  The batched
kernels (vectorized beam searches + lockstep diversification) must deliver
at least 2x single-worker build throughput over the scalar reference path
at that point; this is asserted.

A third table sweeps ``max_round_size``: smaller rounds search a fresher
prefix graph (more synchronization, better candidates), larger rounds
parallelize more coarsely — the knob trades build quality against speed.

Environment knobs: ``REPRO_SCALE`` multiplies the 20k point count (the
kernel-phase table always runs at n=1000).
"""

from __future__ import annotations

import os
import time
import warnings

import numpy as np

from repro.core.batch_build import build_ii_graph_batched
from repro.core.distances import DistanceComputer
from repro.core.incremental import build_ii_graph
from repro.core.kernels import resolve_backend
from repro.datasets.synthetic import generate
from repro.eval.reporting import Report

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
N_POINTS = max(int(20_000 * SCALE), 64)
MAX_DEGREE = 12
WIDTH = 32
WORKER_COUNTS = (1, 2, 4)
ROUND_CAPS = (256, 1024, None)
KERNELS = ("scalar", "python", "numba")
# the ISSUE reference point for the kernel speedup claim
PHASE_N = 1000


def _build(data, workers, max_round_size=None, kernel=None):
    computer = DistanceComputer(data)
    start = time.perf_counter()
    result = build_ii_graph(
        computer,
        max_degree=MAX_DEGREE,
        beam_width=WIDTH,
        diversify="rnd",
        rng=np.random.default_rng(11),
        track_pruning=False,
        n_workers=workers,
        max_round_size=max_round_size,
        kernel=kernel,
    )
    elapsed = time.perf_counter() - start
    return result, elapsed


def _phase_build(data, kernel, repeats=3):
    """Best-of-N single-worker build with per-phase timings."""
    best = None
    for _ in range(repeats):
        computer = DistanceComputer(data)
        phases: dict[str, float] = {}
        start = time.perf_counter()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            result = build_ii_graph_batched(
                computer,
                max_degree=MAX_DEGREE,
                beam_width=WIDTH,
                diversify="rnd",
                rng=np.random.default_rng(11),
                track_pruning=False,
                n_workers=1,
                kernel=kernel,
                phase_times=phases,
            )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[1]:
            best = (result, elapsed, phases)
    return best


def _edge_fingerprint(graph):
    """Order-sensitive digest of every adjacency list."""
    parts = [graph.neighbors(node) for node in range(graph.n)]
    flat = np.concatenate([p for p in parts if p.size] or [np.empty(0, np.int64)])
    degrees = graph.degrees()
    return hash((flat.tobytes(), degrees.tobytes()))


def test_parallel_build_scaling():
    data = generate("deep", N_POINTS, seed=7)

    builds = {workers: _build(data, workers) for workers in WORKER_COUNTS}
    base_result, base_elapsed = builds[1]

    report = Report("parallel_build")
    report.add_metadata(
        n_points=N_POINTS,
        max_degree=MAX_DEGREE,
        beam_width=WIDTH,
        kernel=resolve_backend(None),
        worker_counts=list(WORKER_COUNTS),
        cores=os.cpu_count(),
    )
    report.add_table(
        ["workers", "build s", "points/s", "speedup", "dist calls", "edges"],
        [
            [
                workers,
                round(elapsed, 2),
                round(N_POINTS / elapsed, 1),
                round(base_elapsed / elapsed, 2),
                result.distance_calls,
                result.graph.num_edges(),
            ]
            for workers, (result, elapsed) in builds.items()
        ],
        title=f"Batched build scaling, n={N_POINTS}, R={MAX_DEGREE}, "
        f"L={WIDTH} ({os.cpu_count()} cores)",
    )

    # --- kernel-backend phase breakdown at the fixed reference point -----
    phase_data = generate("deep", PHASE_N, seed=7)
    phase_runs = {kern: _phase_build(phase_data, kern) for kern in KERNELS}
    scalar_elapsed = phase_runs["scalar"][1]
    phase_rows = []
    for kern, (result, elapsed, phases) in phase_runs.items():
        phase_rows.append(
            [
                kern,
                round(elapsed, 3),
                round(phases.get("search", 0.0), 3),
                round(phases.get("prune", 0.0), 3),
                round(phases.get("merge", 0.0), 3),
                round(scalar_elapsed / elapsed, 2),
                result.distance_calls,
            ]
        )
    report.add_table(
        ["kernel", "build s", "search s", "prune s", "merge s",
         "speedup vs scalar", "dist calls"],
        phase_rows,
        title=f"Construction-kernel phase breakdown, n={PHASE_N}, "
        f"R={MAX_DEGREE}, L={WIDTH}, 1 worker (best of 3)",
    )
    report.add_metadata(
        phase_breakdown={
            kern: {
                "build_s": round(elapsed, 4),
                "phases_s": {k: round(v, 4) for k, v in phases.items()},
                "speedup_vs_scalar": round(scalar_elapsed / elapsed, 3),
            }
            for kern, (result, elapsed, phases) in phase_runs.items()
        },
    )

    sweep_workers = min(4, os.cpu_count() or 1)
    cap_rows = []
    for cap in ROUND_CAPS:
        result, elapsed = _build(data, sweep_workers, max_round_size=cap)
        cap_rows.append(
            [
                cap if cap is not None else "uncapped",
                round(elapsed, 2),
                round(N_POINTS / elapsed, 1),
                result.distance_calls,
                result.graph.num_edges(),
            ]
        )
    report.add_table(
        ["round cap", "build s", "points/s", "dist calls", "edges"],
        cap_rows,
        title=f"Round-size sweep at {sweep_workers} workers",
    )
    report.save()

    # the determinism guarantee holds on any machine
    base_fingerprint = _edge_fingerprint(base_result.graph)
    for workers, (result, _) in builds.items():
        assert result.distance_calls == base_result.distance_calls, (
            f"{workers}-worker build performed {result.distance_calls} "
            f"distance calls, sequential round loop {base_result.distance_calls}"
        )
        assert _edge_fingerprint(result.graph) == base_fingerprint, (
            f"{workers}-worker build produced different edges"
        )

    # every construction-kernel backend is bit-identical to the scalar
    # reference — graph edges and distance charges alike (unconditional)
    for kern in KERNELS:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            kern_result, _ = _build(data, 1, kernel=kern)
        assert kern_result.distance_calls == base_result.distance_calls, (
            f"kernel={kern} build charged {kern_result.distance_calls} "
            f"distance calls, default kernel {base_result.distance_calls}"
        )
        assert _edge_fingerprint(kern_result.graph) == base_fingerprint, (
            f"kernel={kern} build produced different edges"
        )
    phase_fps = {
        kern: (
            _edge_fingerprint(result.graph),
            result.distance_calls,
        )
        for kern, (result, _, _) in phase_runs.items()
    }
    assert phase_fps["python"] == phase_fps["scalar"], (
        "python kernel diverged from scalar at the phase-breakdown point"
    )
    assert phase_fps["numba"] == phase_fps["scalar"], (
        "numba kernel diverged from scalar at the phase-breakdown point"
    )

    # the batched construction kernels must at least double single-worker
    # build throughput over the scalar reference at n=1000/R=12/L=32
    python_elapsed = phase_runs["python"][1]
    assert scalar_elapsed >= 2.0 * python_elapsed, (
        f"python-kernel build took {python_elapsed:.2f}s, not >=2x faster "
        f"than the scalar reference's {scalar_elapsed:.2f}s"
    )

    # the throughput claim needs cores to scale onto
    if (os.cpu_count() or 1) >= 4:
        _, elapsed_4 = builds[4]
        assert base_elapsed > 1.5 * elapsed_4, (
            f"4-worker build took {elapsed_4:.1f}s, not >1.5x faster than "
            f"the sequential round loop's {base_elapsed:.1f}s"
        )
