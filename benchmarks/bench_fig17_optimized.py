"""Figure 17 — original vs ParlayANN-style optimized implementations.

Paper shape: the optimized (contiguous-layout) variants are faster at low
recall; the advantage narrows at high recall where distance computations
dominate.  Here the optimized variants flatten adjacency into CSR arrays;
distance-calculation counts are identical by construction, so the measured
contrast is pure wall-clock layout effect.
"""

import numpy as np
import pytest

from repro.eval.reporting import Report
from repro.eval.runner import run_workload
from repro.indexes import OptimizedIndex

TIER = "25GB"
DATASET = "deep"
METHODS = ("HNSW", "Vamana")
WIDTH = 80


@pytest.fixture(scope="module")
def variants(store):
    out = {}
    for method in METHODS:
        base = store.index(method, DATASET, TIER)
        out[method] = (base, OptimizedIndex(base))
    return out


@pytest.mark.parametrize("method", METHODS)
def test_fig17_optimized_layout(benchmark, store, variants, method):
    queries = store.queries(DATASET)
    truth = store.truth(DATASET, TIER)
    base, opt = variants[method]

    base_m = run_workload(base, queries, truth, k=10, beam_width=WIDTH)
    opt_m = benchmark.pedantic(
        lambda: run_workload(opt, queries, truth, k=10, beam_width=WIDTH),
        rounds=3,
        iterations=1,
    )
    report = Report(f"fig17_optimized_{method}")
    report.add_table(
        ["variant", "recall", "dist calls", "ms/query", "graph KiB"],
        [
            [base.name, round(base_m.recall, 3),
             int(base_m.mean_distance_calls), 1000 * base_m.mean_time_s,
             base.graph.memory_bytes() // 1024],
            [opt.name, round(opt_m.recall, 3),
             int(opt_m.mean_distance_calls), 1000 * opt_m.mean_time_s,
             (opt.indptr.nbytes + opt.indices.nbytes) // 1024],
        ],
        title=f"Figure 17: {method} original vs optimized layout (Deep {TIER})",
    )
    report.save()
    # identical traversal, smaller flat footprint
    assert abs(opt_m.recall - base_m.recall) < 0.05
    assert opt.indptr.nbytes + opt.indices.nbytes < base.graph.memory_bytes()
