"""Figure 11 — beam width required to reach target recall.

Paper shape: ELPIS needs the smallest beam width for a given accuracy —
its per-leaf graphs localize the search — while single-graph methods need
wider beams as recall targets grow.
"""

import pytest

from conftest import TIER_METHODS

from repro.eval.reporting import Report
from repro.eval.runner import beam_width_for_recall, sweep_beam_widths

DATASET = "deep"
TIER = "25GB"
WIDTHS = (10, 20, 40, 80, 160, 320)
TARGETS = (0.9, 0.95, 0.99)


def test_fig11_beam_width(benchmark, store):
    queries = store.queries(DATASET)
    truth = store.truth(DATASET, TIER)

    def workload():
        widths = {}
        for method in TIER_METHODS[TIER]:
            index = store.index(method, DATASET, TIER)
            curve = sweep_beam_widths(
                index, queries, truth, k=10, beam_widths=WIDTHS
            )
            for target in TARGETS:
                widths[(method, target)] = beam_width_for_recall(curve, target)
        return widths

    widths = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report("fig11_beam_width")
    rows = [
        [method] + [widths[(method, t)] for t in TARGETS]
        for method in TIER_METHODS[TIER]
    ]
    report.add_table(
        ["method"] + [f"beam @ {t}" for t in TARGETS],
        rows,
        title=f"Figure 11: beam width needed per recall target (Deep {TIER})",
    )
    report.save()
    elpis = widths[("ELPIS", 0.95)]
    assert elpis is not None
    others = [
        widths[(m, 0.95)]
        for m in TIER_METHODS[TIER]
        if m != "ELPIS" and widths[(m, 0.95)] is not None
    ]
    # ELPIS is at or near the smallest required beam width (paper shape)
    assert elpis <= min(others) * 2
