"""Figure 4 — dataset complexity: LID (Eq. 5) and LRC (Eq. 6), k=100.

Paper shape: Pow0/Pow5/Pow50, Seismic, and Text2Img have the highest LID /
lowest LRC (hard); Sift, Deep, and ImageNet the lowest LID / highest LRC
(easy).
"""

import pytest

from repro.datasets.complexity import dataset_complexity
from repro.eval.reporting import Report

DATASETS = (
    "sift", "deep", "imagenet", "gist", "sald",
    "text2img", "seismic", "randpow0", "randpow5", "randpow50",
)


def test_fig04_lid_lrc(benchmark, store):
    def workload():
        profiles = {}
        for name in DATASETS:
            data = store.data(name, "1M")
            profiles[name] = dataset_complexity(
                data, name, k=100, n_samples=150
            )
        return profiles

    profiles = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report("fig04_complexity")
    report.add_table(
        ["dataset", "mean LID", "mean LRC"],
        [[n, profiles[n].mean_lid, profiles[n].mean_lrc] for n in DATASETS],
        title="Figure 4: dataset complexity (k=100)",
    )
    report.save()
    easy = ("sift", "deep", "imagenet")
    hard = ("seismic", "text2img", "randpow0", "randpow5", "randpow50")
    for e in easy:
        for h in hard:
            assert profiles[e].mean_lid < profiles[h].mean_lid, (e, h)
            assert profiles[e].mean_lrc > profiles[h].mean_lrc, (e, h)
