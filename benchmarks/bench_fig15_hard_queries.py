"""Figure 15 — hard query workloads (Gaussian-noise 1%..10%).

Paper shape: SPTAG-BKT leads at 1% noise; as noise grows to 10% its seeds
degrade and ELPIS takes the lead, with HNSW/NSG in between.  The shape
under test: every method needs more work (or loses recall) as noise grows,
and a DC-based method is never the worst at 10%.
"""

import numpy as np
import pytest

from repro.datasets.queries import noise_queries
from repro.eval.metrics import ground_truth
from repro.eval.reporting import Report
from repro.eval.runner import calls_at_recall, sweep_beam_widths

TIER = "25GB"
DATASET = "deep"
METHODS = ("HNSW", "NSG", "ELPIS", "SPTAG-BKT")
NOISES = (("1%", 0.01), ("5%", 0.05), ("10%", 0.10))
WIDTHS = (10, 20, 40, 80, 160, 320)
TARGET = 0.9


def test_fig15_hard_workloads(benchmark, store):
    data = store.data(DATASET, TIER)

    def workload():
        results = {}
        for label, sigma in NOISES:
            queries = noise_queries(data, 10, sigma, np.random.default_rng(31))
            truth, _ = ground_truth(data, queries, 10)
            for method in METHODS:
                index = store.index(method, DATASET, TIER)
                curve = sweep_beam_widths(
                    index, queries, truth, k=10, beam_widths=WIDTHS
                )
                results[(label, method)] = calls_at_recall(curve, TARGET)
        return results

    results = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report("fig15_hard_queries")
    rows = [
        [label] + [results[(label, m)] for m in METHODS]
        for label, _ in NOISES
    ]
    report.add_table(
        ["noise"] + list(METHODS),
        rows,
        title=f"Figure 15: distance calls @ recall {TARGET} vs query noise (Deep {TIER})",
    )
    report.save()
    # harder workloads cost at least as much for the methods that survive
    # (generous tolerance: 10-query workloads are noisy at this scale)
    for method in METHODS:
        easy = results[("1%", method)]
        hard = results[("10%", method)]
        if easy is not None and hard is not None:
            assert hard >= easy * 0.6, method
