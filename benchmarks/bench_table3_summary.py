"""Table 3 — comparative analysis grid, derived from measured results.

The paper grades each method (good / medium / bad) on search efficiency
and accuracy and on indexing efficiency and footprint.  This bench derives
the same grid from our 1M-tier measurements: terciles of distance calls at
recall 0.95 (search), of recall reached at the widest beam (accuracy), and
of build time / index size (indexing).
"""

import numpy as np
import pytest

from conftest import TIER_METHODS

from repro.eval.reporting import Report
from repro.eval.runner import calls_at_recall, sweep_beam_widths

TIER = "1M"
DATASET = "deep"
WIDTHS = (10, 20, 40, 80, 160, 320)


def _grade(value, values, reverse=False):
    """Tercile grade: value within the best/middle/worst third."""
    finite = sorted(v for v in values if v is not None)
    if value is None:
        return "x"
    lo = finite[max(0, len(finite) // 3 - 1)]
    hi = finite[min(len(finite) - 1, 2 * len(finite) // 3)]
    if reverse:
        return "+" if value >= hi else ("~" if value >= lo else "x")
    return "+" if value <= lo else ("~" if value <= hi else "x")


def test_table3_comparative_grid(benchmark, store):
    methods = TIER_METHODS[TIER]
    queries = store.queries(DATASET)
    truth = store.truth(DATASET, TIER)

    def workload():
        stats = {}
        for method in methods:
            index = store.index(method, DATASET, TIER)
            curve = sweep_beam_widths(index, queries, truth, k=10, beam_widths=WIDTHS)
            stats[method] = {
                "search_calls": calls_at_recall(curve, 0.95),
                "best_recall": max(p.recall for p in curve),
                "build_time": index.build_report.wall_time_s,
                "index_bytes": index.memory_bytes(),
            }
        return stats

    stats = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report("table3_summary")
    calls = [stats[m]["search_calls"] for m in methods]
    recalls = [stats[m]["best_recall"] for m in methods]
    times = [stats[m]["build_time"] for m in methods]
    sizes = [stats[m]["index_bytes"] for m in methods]
    rows = []
    grades = {}
    for m in methods:
        s = stats[m]
        grades[m] = {
            "q_eff": _grade(s["search_calls"], calls),
            "q_acc": _grade(s["best_recall"], recalls, reverse=True),
            "i_eff": _grade(s["build_time"], times),
            "i_foot": _grade(s["index_bytes"], sizes),
        }
        rows.append(
            [m, grades[m]["q_eff"], grades[m]["q_acc"], grades[m]["i_eff"],
             grades[m]["i_foot"]]
        )
    report.add_table(
        ["method", "query eff", "query acc", "index eff", "index footprint"],
        rows,
        title="Table 3: comparative analysis (+ good / ~ medium / x bad), "
              "derived from Deep 1M-tier measurements",
    )
    report.save()
    # paper shape: HNSW gets good query grades; KGraph gets bad ones
    assert grades["HNSW"]["q_acc"] == "+"
    assert grades["KGraph"]["q_eff"] in ("~", "x") or grades["KGraph"]["q_acc"] in ("~", "x")
