"""Figure 12 — query performance on the 1M tier, five datasets.

Paper shape: on easy datasets (Sift, Deep, ImageNet) the ND-based methods
(NSG/SSG/HNSW) and ELPIS lead; on hard ones (Seismic) the DC-based methods
(HCNNG, ELPIS, SPTAG-BKT) take over; NP-based KGraph/EFANNA and LSHAPG trail
at high recall.
"""

import pytest

from conftest import TIER_METHODS

from repro.eval.reporting import Report
from repro.eval.runner import calls_at_recall, sweep_beam_widths

TIER = "1M"
DATASETS = ("sift", "deep", "imagenet", "sald", "seismic")
WIDTHS = (10, 20, 40, 80, 160, 320)
TARGET = 0.99


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig12_search_1m(benchmark, store, dataset):
    queries = store.queries(dataset)
    truth = store.truth(dataset, TIER)

    def workload():
        curves = {}
        for method in TIER_METHODS[TIER]:
            index = store.index(method, dataset, TIER)
            curves[method] = sweep_beam_widths(
                index, queries, truth, k=10, beam_widths=WIDTHS
            )
        return curves

    curves = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report(f"fig12_search_1m_{dataset}")
    rows = []
    for method, curve in curves.items():
        for p in curve:
            rows.append([method, p.beam_width, round(p.recall, 3), int(p.distance_calls)])
    report.add_table(
        ["method", "beam", "recall", "dist calls"],
        rows,
        title=f"Figure 12: {dataset} ({TIER} tier)",
    )
    at_target = {m: calls_at_recall(c, TARGET) for m, c in curves.items()}
    report.add_table(
        ["method", f"dist calls @ recall {TARGET}"],
        sorted(
            ([m, v] for m, v in at_target.items()),
            key=lambda row: (row[1] is None, row[1]),
        ),
    )
    report.save()
    # paper shape: the paper's 1M leaders populate the top of our ranking
    reached = {m: v for m, v in at_target.items() if v is not None}
    assert reached, f"no method reached recall {TARGET} on {dataset}"
    leaders = {"NSG", "SSG", "HNSW", "ELPIS", "HCNNG", "SPTAG-BKT", "NGT", "Vamana", "DPG"}
    top3 = sorted(reached, key=reached.get)[:3]
    assert leaders & set(top3), f"no paper leader in top-3 {top3} on {dataset}"
