"""Figure 16 — query performance on the 1B tier (the largest scale).

Paper shape: ELPIS is up to an order of magnitude faster to 0.95 accuracy
(multi-threaded leaf search); HNSW and Vamana are the only other methods
standing.  Single-threaded here, so the shape under test is that all three
reach high recall and the II-based methods remain close, with ELPIS's
per-leaf beams the smallest.
"""

import pytest

from conftest import TIER_METHODS

from repro.eval.reporting import Report
from repro.eval.runner import beam_width_for_recall, calls_at_recall, sweep_beam_widths

TIER = "1B"
DATASET = "deep"
WIDTHS = (10, 20, 40, 80, 160, 320, 640)


def test_fig16_search_1b(benchmark, store):
    queries = store.queries(DATASET)
    truth = store.truth(DATASET, TIER)

    def workload():
        return {
            method: sweep_beam_widths(
                store.index(method, DATASET, TIER), queries, truth,
                k=10, beam_widths=WIDTHS,
            )
            for method in TIER_METHODS[TIER]
        }

    curves = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report("fig16_search_1b")
    rows = []
    for method, curve in curves.items():
        for p in curve:
            rows.append([method, p.beam_width, round(p.recall, 3), int(p.distance_calls)])
    report.add_table(
        ["method", "beam", "recall", "dist calls"],
        rows,
        title=f"Figure 16: Deep ({TIER} tier)",
    )
    at95 = {m: calls_at_recall(c, 0.95) for m, c in curves.items()}
    beams = {m: beam_width_for_recall(c, 0.95) for m, c in curves.items()}
    report.add_table(
        ["method", "dist calls @ 0.95", "beam @ 0.95"],
        [[m, at95[m], beams[m]] for m in TIER_METHODS[TIER]],
    )
    report.save()
    reached = {m for m, v in at95.items() if v is not None}
    assert {"HNSW", "ELPIS"} & reached
    # ELPIS's per-leaf beam stays at or below the single-graph methods'
    if beams.get("ELPIS") is not None and beams.get("HNSW") is not None:
        assert beams["ELPIS"] <= beams["HNSW"] * 2
