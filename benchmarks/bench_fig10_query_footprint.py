"""Figure 10 — memory footprint during query answering.

Paper shape: Vamana (flat single-layer graph) and ELPIS hold the smallest
search-time footprints; methods with auxiliary seed structures (EFANNA's
trees, LSHAPG's tables, HNSW's layers) carry more.

Footprint here is the bytes of everything a query touches: graph adjacency
plus seed structures plus the raw vectors.
"""

import pytest

from conftest import TIER_METHODS

from repro.eval.reporting import Report

DATASET = "deep"
TIER = "25GB"


def test_fig10_query_footprint(benchmark, store):
    data = store.data(DATASET, TIER)

    def workload():
        footprints = {}
        for method in TIER_METHODS[TIER]:
            index = store.index(method, DATASET, TIER)
            footprints[method] = index.memory_bytes() + data.nbytes
        return footprints

    footprints = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report("fig10_query_footprint")
    report.add_table(
        ["method", "search footprint KiB"],
        [[m, b // 1024] for m, b in sorted(footprints.items(), key=lambda kv: kv[1])],
        title=f"Figure 10: query-time memory footprint (Deep {TIER} tier)",
    )
    report.save()
    # Vamana's flat graph stays below HNSW's graph + layer stack
    assert footprints["Vamana"] <= footprints["HNSW"]
