"""Figure 5 — ND strategies on the II apparatus: recall vs distance calls.

The paper applies NoND / RND / RRND(alpha=1.3) / MOND(theta=60) to the same
incremental-insertion graph on Deep and Sift at growing sizes.  Shape to
reproduce: RND and MOND consistently best, RRND behind them, NoND worst,
with the gap widening as the dataset grows.
"""

import pytest

from repro.core.beam_search import beam_search
from repro.eval.metrics import recall
from repro.eval.reporting import Report
from repro.eval.runner import SweepPoint, calls_at_recall

STRATEGIES = {
    "NoND": ("nond", {}),
    "RND": ("rnd", {}),
    "RRND": ("rrnd", {"alpha": 1.3}),
    "MOND": ("mond", {"theta_degrees": 60.0}),
}
DATASETS = ("deep", "sift")
TIERS = ("1M", "25GB")
WIDTHS = (10, 20, 40, 80, 160, 320)


def _sweep(store, dataset, tier, diversify, params):
    computer, built = store.ii_graph(dataset, tier, diversify, **params)
    queries = store.queries(dataset)
    truth = store.truth(dataset, tier, k=10)
    entry = 0
    curve = []
    for width in WIDTHS:
        recalls, calls = [], []
        for q, gt in zip(queries, truth):
            result = beam_search(
                built.graph, computer, q, [entry], k=10, beam_width=width
            )
            recalls.append(recall(result.ids, gt))
            calls.append(result.distance_calls)
        curve.append(
            SweepPoint(
                beam_width=width,
                recall=sum(recalls) / len(recalls),
                distance_calls=sum(calls) / len(calls),
                time_s=0.0,
            )
        )
    return curve


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig05_nd_tradeoff(benchmark, store, dataset):
    def workload():
        curves = {}
        for tier in TIERS:
            for label, (diversify, params) in STRATEGIES.items():
                curves[(tier, label)] = _sweep(store, dataset, tier, diversify, params)
        return curves

    curves = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report(f"fig05_nd_search_{dataset}")
    rows = []
    for (tier, label), curve in curves.items():
        for point in curve:
            rows.append(
                [tier, label, point.beam_width, round(point.recall, 3),
                 int(point.distance_calls)]
            )
    report.add_table(
        ["tier", "ND", "beam", "recall", "dist calls"],
        rows,
        title=f"Figure 5: ND strategies on {dataset} (II graph, R=24)",
    )
    # paper shape at the larger size: diversified graphs dominate NoND
    summary = []
    for tier in TIERS:
        at_target = {
            label: calls_at_recall(curves[(tier, label)], 0.9)
            for label in STRATEGIES
        }
        summary.append([tier] + [at_target[l] for l in STRATEGIES])
    report.add_table(
        ["tier"] + list(STRATEGIES), summary,
        title="distance calls to reach recall 0.9 (None = unreached)",
    )
    report.save()
    big = {l: calls_at_recall(curves[("25GB", l)], 0.9) for l in STRATEGIES}
    assert big["RND"] is not None
    if big["NoND"] is not None:
        assert big["RND"] <= big["NoND"]
