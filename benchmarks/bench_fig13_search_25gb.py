"""Figure 13 — query performance on the 25GB tier, incl. power-law data.

Paper shape: SSG/NSG/NGT/HCNNG drop off relative to their 1M performance;
ELPIS takes the overall lead (sharing it with SPTAG-BKT on SALD); on the
power-law distributions ELPIS stays consistently strong across skewness
levels, and search gets easier as skewness grows.
"""

import pytest

from conftest import TIER_METHODS

from repro.eval.reporting import Report
from repro.eval.runner import calls_at_recall, sweep_beam_widths

TIER = "25GB"
DATASETS = ("deep", "seismic", "randpow0", "randpow50")
WIDTHS = (10, 20, 40, 80, 160, 320)


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig13_search_25gb(benchmark, store, dataset):
    queries = store.queries(dataset)
    truth = store.truth(dataset, TIER)

    def workload():
        curves = {}
        for method in TIER_METHODS[TIER]:
            index = store.index(method, dataset, TIER)
            curves[method] = sweep_beam_widths(
                index, queries, truth, k=10, beam_widths=WIDTHS
            )
        return curves

    curves = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report(f"fig13_search_25gb_{dataset}")
    rows = []
    for method, curve in curves.items():
        for p in curve:
            rows.append([method, p.beam_width, round(p.recall, 3), int(p.distance_calls)])
    report.add_table(
        ["method", "beam", "recall", "dist calls"],
        rows,
        title=f"Figure 13: {dataset} ({TIER} tier)",
    )
    # the paper reports lower targets on Seismic (nobody exceeded 0.8)
    target = 0.8 if dataset in ("seismic", "randpow0") else 0.95
    at_target = {m: calls_at_recall(c, target) for m, c in curves.items()}
    report.add_table(
        ["method", f"dist calls @ recall {target}"],
        sorted(
            ([m, v] for m, v in at_target.items()),
            key=lambda row: (row[1] is None, row[1]),
        ),
    )
    report.save()
    reached = {m: v for m, v in at_target.items() if v is not None}
    assert reached, f"no method reached recall {target} on {dataset}"
    if dataset in ("seismic", "randpow0", "randpow50"):
        # paper shape on hard 25GB data: a DC method or a scalable II/ND
        # method tops the ranking, and ELPIS reaches the target at all
        best = min(reached, key=reached.get)
        assert best in {"ELPIS", "SPTAG-BKT", "HNSW", "Vamana", "NSG"}, best
        assert "ELPIS" in reached
