"""Figure 6 — seed-selection strategies: distance calls at recall 0.99.

The paper compares SN, KD, MD, SF, KS on an II+RND graph (the best ND
baseline) for Deep and Sift at growing sizes, with 100-NN queries.  Shape:
SN and KS are the most efficient everywhere; SF and MD the least; KD is
competitive at small scale but degrades with size; KS beats SN on small
sizes while the ranking tightens/reverses at the largest scale.
"""

import numpy as np
import pytest

from repro.core.beam_search import beam_search
from repro.core.seeds import get_seed_strategy
from repro.eval.metrics import ground_truth, recall
from repro.eval.reporting import Report
from repro.eval.runner import SweepPoint, calls_at_recall

STRATEGIES = ("SN", "KD", "MD", "SF", "KS")
DATASETS = ("deep", "sift")
TIERS = ("1M", "25GB")
K = 100
WIDTHS = (100, 150, 250, 400, 700)


def _sweep_strategy(store, dataset, tier, name):
    computer, built = store.ii_graph(dataset, tier, "rnd")
    queries = store.queries(dataset)
    truth, _ = ground_truth(store.data(dataset, tier), queries, K)
    strategy = get_seed_strategy(name)
    strategy.fit(computer, built.graph, np.random.default_rng(4))
    rng = np.random.default_rng(5)
    curve = []
    for width in WIDTHS:
        recalls, calls = [], []
        for q, gt in zip(queries, truth):
            mark = computer.checkpoint()
            seeds = strategy.select(q, rng)
            result = beam_search(
                built.graph, computer, q, seeds, k=K, beam_width=width
            )
            recalls.append(recall(result.ids, gt))
            calls.append(computer.since(mark))
        curve.append(
            SweepPoint(
                beam_width=width,
                recall=float(np.mean(recalls)),
                distance_calls=float(np.mean(calls)),
                time_s=0.0,
            )
        )
    return curve


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig06_ss_strategies(benchmark, store, dataset):
    def workload():
        return {
            (tier, name): _sweep_strategy(store, dataset, tier, name)
            for tier in TIERS
            for name in STRATEGIES
        }

    curves = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report(f"fig06_ss_search_{dataset}")
    rows = []
    at_target = {}
    for tier in TIERS:
        for name in STRATEGIES:
            calls = calls_at_recall(curves[(tier, name)], 0.99)
            at_target[(tier, name)] = calls
            rows.append([tier, name, calls])
    report.add_table(
        ["tier", "SS", "dist calls @ recall 0.99"],
        rows,
        title=f"Figure 6: seed selection on {dataset} (II+RND graph, k=100)",
    )
    report.save()
    # paper shape: the best of {SN, KS} beats the worst of {SF, MD}
    for tier in TIERS:
        good = [at_target[(tier, s)] for s in ("SN", "KS")]
        bad = [at_target[(tier, s)] for s in ("SF", "MD")]
        good = [g for g in good if g is not None]
        assert good, f"neither SN nor KS reached 0.99 on {tier}"
        reached_bad = [b for b in bad if b is not None]
        if reached_bad:
            assert min(good) <= min(reached_bad) * 1.1
