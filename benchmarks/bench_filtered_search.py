"""Filtered search: recall/QPS across specificity, method, and strategy.

Not a paper figure: the paper's workloads are unfiltered, and this
benchmark characterizes the filtered-search scenario (RWalks / ACORN
family) layered over the same graphs.  Per-point attributes and per-query
range predicates of controlled *specificity* (expected fraction of points
passing the filter) are generated deterministically, and each
(method, specificity, strategy) cell sweeps beam widths into a recall/QPS
curve against filtered brute-force ground truth:

* **inline** masks the finished beam of the unmodified traversal — cheap
  and near-exact at permissive filters, with a recall cliff as the
  predicate gets selective and the beam drains;
* **acorn** routes through filtered-out nodes (multi-hop expansion), only
  scoring passing points;
* **rwalks** augments the graph offline with same-label shortcut edges,
  then searches inline over the augmented graph.

Assertions pin the contracts the filtered layer advertises:

* answers, distance counts, and hop counts are bit-identical across the
  vectorized and scalar beam backends and across worker counts 1 and 2,
  at every specificity and strategy;
* at specificity >= 0.5 the inline strategy loses fewer than 2 recall
  points vs filtered brute force at the widest beam.

Environment knobs: ``REPRO_SCALE`` multiplies the 4k point count,
``REPRO_QUERIES`` the per-workload query count.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.filtered import FILTER_STRATEGIES, FilteredIndex
from repro.core.kernels import resolve_backend
from repro.datasets.attributes import point_attributes, query_predicates
from repro.datasets.synthetic import generate
from repro.eval.metrics import filtered_ground_truth, recall
from repro.eval.parallel import run_batch
from repro.eval.reporting import Report
from repro.eval.runner import run_workload
from repro.indexes import create_index

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
N_POINTS = max(int(4_000 * SCALE), 400)
N_QUERIES = int(os.environ.get("REPRO_QUERIES", "10"))
K = 10
DATASET = "deep"
SPECIFICITIES = (0.1, 0.3, 0.6)
METHODS = ("HNSW", "NSG", "Vamana")
BEAM_WIDTHS = (16, 32, 64, 120)

BUILD_PARAMS = {
    "HNSW": {"max_degree": 24, "ef_construction": 64},
    "NSG": {"max_degree": 24, "build_beam_width": 48},
    "Vamana": {
        "max_degree": 24, "build_beam_width": 64,
        "prune_pool_size": 96, "alpha": 1.3,
    },
}


def _outcome_key(outcomes):
    """Everything the determinism contract covers, as a comparable tuple."""
    return tuple(
        (
            o.query_index,
            o.ids.tobytes(),
            o.dists.tobytes(),
            o.distance_calls,
            o.hops,
        )
        for o in outcomes
    )


def test_filtered_search_sweep():
    data = generate(DATASET, N_POINTS, seed=7)
    queries = generate(DATASET, N_QUERIES, seed=7_777_777)
    attrs = point_attributes(DATASET, N_POINTS, seed=7)

    workloads = {}
    for spec in SPECIFICITIES:
        predicates = query_predicates(DATASET, N_QUERIES, spec, seed=7)
        allow = [p.mask(attrs) for p in predicates]
        truth, _ = filtered_ground_truth(data, queries, K, allow)
        workloads[spec] = (predicates, allow, truth)

    report = Report("filtered_search")
    report.add_metadata(
        n_points=N_POINTS,
        n_queries=N_QUERIES,
        k=K,
        dataset=DATASET,
        specificities=list(SPECIFICITIES),
        methods=list(METHODS),
        strategies=list(FILTER_STRATEGIES),
        beam_widths=list(BEAM_WIDTHS),
        kernel=resolve_backend(None),
        cores=os.cpu_count(),
    )

    indexes = {
        method: create_index(method, seed=11, **BUILD_PARAMS[method]).build(data)
        for method in METHODS
    }

    # ------------------------------------------------------------------
    # the sweep: recall/QPS per (method, specificity, strategy, width)
    # ------------------------------------------------------------------
    rows = []
    widest = {}
    for method in METHODS:
        for spec in SPECIFICITIES:
            predicates, allow, truth = workloads[spec]
            realized = float(np.mean([m.mean() for m in allow]))
            for strategy in FILTER_STRATEGIES:
                filtered = FilteredIndex(
                    indexes[method], attrs, predicates, strategy=strategy
                )
                for width in BEAM_WIDTHS:
                    measurement = run_workload(
                        filtered, queries, truth, K, width
                    )
                    rows.append([
                        method,
                        spec,
                        round(realized, 3),
                        strategy,
                        width,
                        round(measurement.recall, 4),
                        round(measurement.mean_distance_calls, 1),
                        round(measurement.qps, 1),
                    ])
                    widest[(method, spec, strategy)] = measurement.recall
    report.add_table(
        [
            "method", "specificity", "realized", "strategy", "beam width",
            f"recall@{K}", "dist calls/query", "QPS",
        ],
        rows,
        title=f"Filtered search on {DATASET} (n={N_POINTS}), "
        "recall vs filtered brute-force ground truth",
    )

    # ISSUE acceptance: at specificity >= 0.5 inline loses < 2 recall
    # points vs filtered brute force at the widest beam
    for method in METHODS:
        for spec in (s for s in SPECIFICITIES if s >= 0.5):
            observed = widest[(method, spec, "inline")]
            assert observed > 0.98, (
                f"{method} inline at specificity {spec}: recall {observed:.4f} "
                f"loses >= 2 points vs filtered brute force at width "
                f"{BEAM_WIDTHS[-1]}"
            )

    # ------------------------------------------------------------------
    # determinism: bit-identical outcomes across backends and workers,
    # at every specificity and strategy
    # ------------------------------------------------------------------
    det_rows = []
    det_method = METHODS[0]
    det_width = BEAM_WIDTHS[2]
    configurations = (
        (1, "python"),
        (1, "scalar"),
        (2, "python"),
        (2, "scalar"),
    )
    for spec in SPECIFICITIES:
        predicates, _, _ = workloads[spec]
        for strategy in FILTER_STRATEGIES:
            filtered = FilteredIndex(
                indexes[det_method], attrs, predicates, strategy=strategy
            )
            keys = {}
            for n_workers, kernel in configurations:
                result = run_batch(
                    filtered, queries, k=K, beam_width=det_width,
                    n_workers=n_workers, kernel=kernel,
                )
                keys[(n_workers, kernel)] = _outcome_key(result.outcomes)
            baseline = keys[configurations[0]]
            for (n_workers, kernel), key in keys.items():
                assert key == baseline, (
                    f"{det_method}/{strategy} at specificity {spec}: "
                    f"workers={n_workers} kernel={kernel} diverged from "
                    f"workers=1 kernel=python"
                )
            calls = sum(o.distance_calls for o in result.outcomes)
            det_rows.append([
                spec, strategy, len(configurations), "identical", calls,
            ])
    report.add_table(
        ["specificity", "strategy", "configs", "outcomes", "dist calls"],
        det_rows,
        title=f"Determinism across kernels {{python, scalar}} x workers "
        f"{{1, 2}} ({det_method}, width {det_width})",
    )
    report.save()
