"""Figure 18 — the method-recommendation decision tree, cross-checked.

The bench prints the tree and then verifies each branch against measured
results: on an easy small dataset the recommended ND methods must be at
least as good as the DC branch's recommendation, and vice versa on a hard
dataset.
"""

import pytest

from repro.datasets.complexity import dataset_complexity
from repro.eval.recommend import HARD_DATASETS, recommend
from repro.eval.reporting import Report
from repro.eval.runner import calls_at_recall, sweep_beam_widths

TIER = "1M"
WIDTHS = (10, 20, 40, 80, 160, 320)
CASES = (
    ("sift", False),
    ("seismic", True),
)


def test_fig18_recommendations(benchmark, store):
    def workload():
        out = {}
        for dataset, hard in CASES:
            queries = store.queries(dataset)
            truth = store.truth(dataset, TIER)
            rec = recommend(store.data(dataset, TIER).shape[0], hard=hard,
                            large_threshold=10**9)
            target = 0.9 if hard else 0.99
            per_method = {}
            for method in set(rec.methods) | {"HNSW", "ELPIS"}:
                index = store.index(method, dataset, TIER)
                curve = sweep_beam_widths(index, queries, truth, k=10,
                                          beam_widths=WIDTHS)
                per_method[method] = calls_at_recall(curve, target)
            out[dataset] = (rec, per_method, target)
        return out

    out = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report("fig18_recommendations")
    for dataset, (rec, per_method, target) in out.items():
        hard = dataset in HARD_DATASETS
        report.add(
            f"{dataset} (hard={hard}): recommend {', '.join(rec.methods)}\n"
            f"  rationale: {rec.rationale}"
        )
        report.add_table(
            ["method", f"dist calls @ recall {target}"],
            sorted(
                ([m, v] for m, v in per_method.items()),
                key=lambda row: (row[1] is None, row[1]),
            ),
        )
    report.save()
    for dataset, (rec, per_method, target) in out.items():
        reached = {m: v for m, v in per_method.items() if v is not None}
        assert reached, dataset
        best = min(reached, key=reached.get)
        # the measured winner appears in (or ties closely with) the
        # recommended set
        if best not in rec.methods:
            rec_best = min(
                (v for m, v in reached.items() if m in rec.methods),
                default=None,
            )
            assert rec_best is not None and rec_best <= reached[best] * 1.5
