"""Figure 8 — peak memory footprint during index construction.

Paper shape: for large datasets ELPIS builds with the smallest footprint
(~40% less than HNSW); EFANNA-based methods (NSG/SSG) and HCNNG consume far
more during construction than their final index size.

Peak memory is the Python-heap high-water mark during build (tracemalloc),
standing in for the paper's /proc VmPeak.
"""

import tracemalloc

import pytest

from conftest import BUILD_PARAMS, TIER_METHODS

from repro.eval.reporting import Report
from repro.indexes import create_index

DATASET = "deep"
TIER = "25GB"


def test_fig08_build_footprint(benchmark, store):
    data = store.data(DATASET, TIER)

    def workload():
        peaks = {}
        for method in TIER_METHODS[TIER]:
            index = create_index(method, seed=11, **BUILD_PARAMS.get(method, {}))
            tracemalloc.start()
            index.build(data)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            peaks[method] = (peak, index.memory_bytes())
        return peaks

    peaks = benchmark.pedantic(workload, rounds=1, iterations=1)
    report = Report("fig08_indexing_footprint")
    report.add_table(
        ["method", "peak build KiB", "final index KiB"],
        [
            [m, peak // 1024, final // 1024]
            for m, (peak, final) in sorted(peaks.items())
        ],
        title=f"Figure 8: peak memory during construction (Deep {TIER} tier)",
    )
    report.save()
    # paper shape: NSG's build peak (EFANNA base + k-NN lists) dwarfs its
    # final index; ELPIS's peak stays close to its final size
    nsg_peak, nsg_final = peaks["NSG"]
    elpis_peak, elpis_final = peaks["ELPIS"]
    assert nsg_peak / max(nsg_final, 1) > elpis_peak / max(elpis_final, 1)
