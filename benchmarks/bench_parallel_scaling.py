"""Scaling of the batch-query engine: vectorized kernel and worker counts.

Not a paper figure: this benchmark characterizes the serving-shaped
extension of the harness along its two throughput axes.  A 100k-vector
dataset is indexed by the vectorized
:class:`~repro.indexes.randomgraph.RandomGraphIndex` (build cost is
irrelevant here — only query traversal work is measured), then one query
batch is answered

* single-worker, comparing the ``scalar`` per-query reference path against
  the vectorized multi-query beam kernel (``python`` backend, plus the
  resolved ``auto`` backend when it differs); and
* at worker counts 1, 2, and 4 through the resolved default kernel.

The engine's guarantees are asserted unconditionally: per-query answer ids,
distances, and distance-call counts — hence recall and the aggregate
distance-calculation total — are bit-identical across kernel backends,
batch/chunk splits, and worker counts.  The throughput expectations —
batched kernel >= 3x scalar QPS single-worker, >1.5x QPS at 4 workers — are
asserted only at full scale on machines with enough cores; on smaller
runners the tables are still recorded.  Timing comparisons interleave
repetitions of both paths and keep each path's best run, which cancels
machine-load noise without favoring either side.

Environment knobs: ``REPRO_SCALE`` multiplies the 100k point count,
``REPRO_KERNEL`` selects the default kernel backend; ``REPRO_QUERIES`` is
ignored here (the batch must be large enough both for stable percentiles
and to amortize the kernel's per-chunk costs).
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.kernels import DEFAULT_CHUNK_SIZE, resolve_backend
from repro.datasets.synthetic import generate
from repro.eval.metrics import ground_truth
from repro.eval.parallel import run_batch
from repro.eval.reporting import Report
from repro.eval.runner import run_workload
from repro.indexes import RandomGraphIndex

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
N_POINTS = int(100_000 * SCALE)
N_QUERIES = 256
WIDTH = 64
WORKER_COUNTS = (1, 2, 4)
KERNEL_REPS = 6  # interleaved best-of-N repetitions per kernel backend
FULL_SCALE = N_POINTS >= 100_000


def _assert_same_answers(reference, other, label: str) -> None:
    """Per-query bit-identity between two :class:`BatchResult` runs."""
    assert len(reference.outcomes) == len(other.outcomes), label
    for ref, got in zip(reference.outcomes, other.outcomes):
        assert ref.query_index == got.query_index, label
        assert np.array_equal(ref.ids, got.ids), (label, ref.query_index)
        assert np.array_equal(ref.dists, got.dists), (label, ref.query_index)
        assert ref.distance_calls == got.distance_calls, (label, ref.query_index)
        assert ref.hops == got.hops, (label, ref.query_index)


def test_parallel_scaling():
    data = generate("deep", N_POINTS, seed=7)
    queries = generate("deep", N_QUERIES, seed=7_777_777)
    truth, _ = ground_truth(data, queries, 10)
    index = RandomGraphIndex(degree=16, seed=11).build(data)

    # ---- determinism contract: same answers on every axis ----------------
    kernels = ["scalar", "python"]
    if resolve_backend(None) not in kernels:
        kernels.append(resolve_backend(None))
    reference = run_batch(index, queries, k=10, beam_width=WIDTH,
                          kernel="scalar")
    for kernel in kernels[1:]:
        got = run_batch(index, queries, k=10, beam_width=WIDTH, kernel=kernel)
        _assert_same_answers(reference, got, f"kernel={kernel}")
    # worker counts shard the batch differently; chunks_per_worker changes
    # the kernel's batch sizes within each worker
    for workers in WORKER_COUNTS[1:]:
        got = run_batch(index, queries, k=10, beam_width=WIDTH,
                        n_workers=workers)
        _assert_same_answers(reference, got, f"workers={workers}")
    got = run_batch(index, queries, k=10, beam_width=WIDTH, n_workers=2,
                    chunks_per_worker=9)
    _assert_same_answers(reference, got, "workers=2, chunks_per_worker=9")

    # ---- axis 1: scalar reference vs vectorized kernel, single worker ----
    def run(kernel, workers=1):
        return run_workload(
            index, queries, truth, k=10, beam_width=WIDTH,
            n_workers=workers, kernel=kernel,
        )

    best = {kernel: None for kernel in kernels}
    for _ in range(KERNEL_REPS):
        for kernel in kernels:
            m = run(kernel)
            if best[kernel] is None or m.qps > best[kernel].qps:
                best[kernel] = m

    report = Report("parallel_scaling")
    report.add_metadata(
        n_points=N_POINTS,
        n_queries=N_QUERIES,
        beam_width=WIDTH,
        chunk_size=DEFAULT_CHUNK_SIZE,
        default_kernel=resolve_backend(None),
        kernels=kernels,
        worker_counts=list(WORKER_COUNTS),
        cores=os.cpu_count(),
    )
    scalar = best["scalar"]
    report.add_table(
        ["kernel", "QPS", "speedup vs scalar", "recall", "total dist calls"],
        [
            [
                kernel,
                m.qps,
                m.qps / scalar.qps,
                round(m.recall, 3),
                m.total_distance_calls,
            ]
            for kernel, m in best.items()
        ],
        title=f"Beam-kernel throughput (1 worker), n={N_POINTS}, "
        f"{N_QUERIES} queries, best of {KERNEL_REPS}",
    )
    for kernel, m in best.items():
        assert m.recall == scalar.recall, kernel
        assert m.total_distance_calls == scalar.total_distance_calls, kernel

    # ---- axis 2: worker-count scaling through the default kernel ----
    measurements = {workers: run(None, workers) for workers in WORKER_COUNTS}
    report.add_table(
        ["workers", "QPS", "speedup", "recall", "total dist calls",
         "p50 ms", "p95 ms", "p99 ms"],
        [
            [
                workers,
                m.qps,
                m.qps / measurements[1].qps,
                round(m.recall, 3),
                m.total_distance_calls,
                1000 * m.p50_time_s,
                1000 * m.p95_time_s,
                1000 * m.p99_time_s,
            ]
            for workers, m in measurements.items()
        ],
        title=f"Batch-query scaling, n={N_POINTS}, {N_QUERIES} queries "
        f"({os.cpu_count()} cores)",
    )
    report.save()

    baseline = measurements[1]
    for m in measurements.values():
        assert m.recall == baseline.recall
        assert m.total_distance_calls == baseline.total_distance_calls

    # throughput claims need the full-size workload (and cores to scale onto);
    # CI smoke runs at REPRO_SCALE << 1 only check the determinism contract
    if FULL_SCALE:
        batched = best["python"]
        assert batched.qps >= 3.0 * scalar.qps, (
            f"batched kernel QPS {batched.qps:.0f} is not >=3x the scalar "
            f"reference {scalar.qps:.0f}"
        )
    if FULL_SCALE and (os.cpu_count() or 1) >= 4:
        assert measurements[4].qps > 1.5 * baseline.qps, (
            f"4-worker QPS {measurements[4].qps:.0f} is not >1.5x the "
            f"sequential {baseline.qps:.0f}"
        )
