"""Worker-count scaling of the parallel batch-query engine.

Not a paper figure: this benchmark characterizes the serving-shaped
extension of the harness.  A 100k-vector dataset is indexed by the
vectorized :class:`~repro.indexes.randomgraph.RandomGraphIndex` (build cost
is irrelevant here — only query traversal work is measured) and one query
batch is answered at worker counts 1, 2, and 4.  The engine's guarantee is
asserted unconditionally: recall and the aggregate distance-calculation
count are bit-identical at every worker count.  The throughput expectation
(>1.5x QPS at 4 workers, ParlayANN's near-linear query scaling) is asserted
only when the machine actually has 4+ cores to scale onto; on smaller
runners the table is still recorded.

Environment knobs: ``REPRO_SCALE`` multiplies the 100k point count,
``REPRO_QUERIES`` is ignored here (the batch must be large enough for
stable percentiles).
"""

from __future__ import annotations

import os

import numpy as np

from repro.datasets.synthetic import generate
from repro.eval.metrics import ground_truth
from repro.eval.reporting import Report
from repro.eval.runner import run_workload
from repro.indexes import RandomGraphIndex

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
N_POINTS = int(100_000 * SCALE)
N_QUERIES = 64
WIDTH = 64
WORKER_COUNTS = (1, 2, 4)


def test_parallel_scaling():
    data = generate("deep", N_POINTS, seed=7)
    queries = generate("deep", N_QUERIES, seed=7_777_777)
    truth, _ = ground_truth(data, queries, 10)
    index = RandomGraphIndex(degree=16, seed=11).build(data)

    measurements = {
        workers: run_workload(
            index, queries, truth, k=10, beam_width=WIDTH, n_workers=workers
        )
        for workers in WORKER_COUNTS
    }

    report = Report("parallel_scaling")
    report.add_table(
        ["workers", "QPS", "speedup", "recall", "total dist calls",
         "p50 ms", "p95 ms", "p99 ms"],
        [
            [
                workers,
                m.qps,
                m.qps / measurements[1].qps,
                round(m.recall, 3),
                m.total_distance_calls,
                1000 * m.p50_time_s,
                1000 * m.p95_time_s,
                1000 * m.p99_time_s,
            ]
            for workers, m in measurements.items()
        ],
        title=f"Batch-query scaling, n={N_POINTS}, {N_QUERIES} queries "
        f"({os.cpu_count()} cores)",
    )
    report.save()

    # the determinism guarantee holds on any machine
    baseline = measurements[1]
    for m in measurements.values():
        assert m.recall == baseline.recall
        assert m.total_distance_calls == baseline.total_distance_calls

    # the throughput claim needs cores to scale onto
    if (os.cpu_count() or 1) >= 4:
        assert measurements[4].qps > 1.5 * baseline.qps, (
            f"4-worker QPS {measurements[4].qps:.0f} is not >1.5x the "
            f"sequential {baseline.qps:.0f}"
        )
