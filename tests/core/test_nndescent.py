"""Unit tests for NNDescent (neighborhood propagation)."""

import numpy as np
import pytest

from repro.core.distances import DistanceComputer
from repro.core.nndescent import (
    knn_graph_to_graph,
    nn_descent,
    random_knn_init,
)


@pytest.fixture()
def computer():
    gen = np.random.default_rng(5)
    centers = gen.normal(size=(4, 6)) * 4
    labels = gen.integers(4, size=120)
    data = centers[labels] + 0.2 * gen.normal(size=(120, 6))
    return DistanceComputer(data.astype(np.float32))


def test_random_init_shapes(computer):
    ids, dists = random_knn_init(computer, 5, np.random.default_rng(0))
    assert ids.shape == (120, 5)
    assert dists.shape == (120, 5)


def test_random_init_no_self_loops(computer):
    ids, _ = random_knn_init(computer, 5, np.random.default_rng(0))
    for node in range(120):
        assert node not in ids[node]


def test_random_init_sorted(computer):
    _, dists = random_knn_init(computer, 5, np.random.default_rng(0))
    assert np.all(np.diff(dists, axis=1) >= 0)


def test_random_init_rejects_k_too_large(computer):
    with pytest.raises(ValueError):
        random_knn_init(computer, 120, np.random.default_rng(0))


def test_nn_descent_improves_over_random(computer):
    rng = np.random.default_rng(1)
    init_ids, init_dists = random_knn_init(computer, 6, rng)
    result = nn_descent(computer, 6, np.random.default_rng(1), max_iterations=6)
    assert result.dists.mean() < init_dists.mean()


def test_nn_descent_high_recall_vs_exact(computer):
    result = nn_descent(computer, 6, np.random.default_rng(2), max_iterations=8)
    hits = total = 0
    for node in range(0, 120, 10):
        exact, _ = computer.exact_knn(computer.data[node], 7)
        exact = [e for e in exact.tolist() if e != node][:6]
        hits += len(set(exact) & set(result.ids[node].tolist()))
        total += 6
    assert hits / total > 0.85


def test_nn_descent_converges_before_max(computer):
    result = nn_descent(
        computer, 6, np.random.default_rng(3), max_iterations=50
    )
    assert result.iterations < 50
    assert len(result.updates) == result.iterations


def test_nn_descent_updates_decrease(computer):
    result = nn_descent(computer, 6, np.random.default_rng(4), max_iterations=6)
    assert result.updates[-1] <= result.updates[0]


def test_nn_descent_accepts_external_init(computer):
    rng = np.random.default_rng(5)
    init_ids, init_dists = random_knn_init(computer, 4, rng)
    result = nn_descent(
        computer,
        6,
        rng,
        init_ids=init_ids,
        init_dists=init_dists,
        max_iterations=4,
    )
    assert result.ids.shape == (120, 6)


def test_nn_descent_rejects_mismatched_init(computer):
    with pytest.raises(ValueError):
        nn_descent(
            computer,
            5,
            np.random.default_rng(0),
            init_ids=np.zeros((10, 3), dtype=np.int64),
            init_dists=np.zeros((120, 3)),
        )


def test_nn_descent_sample_rate(computer):
    result = nn_descent(
        computer, 6, np.random.default_rng(6), max_iterations=3, sample_rate=0.5
    )
    assert result.ids.shape == (120, 6)


def test_no_self_loops_after_descent(computer):
    result = nn_descent(computer, 6, np.random.default_rng(7), max_iterations=4)
    for node in range(120):
        assert node not in result.ids[node]


def test_knn_graph_to_graph(computer):
    result = nn_descent(computer, 6, np.random.default_rng(8), max_iterations=2)
    graph = knn_graph_to_graph(result.ids)
    assert graph.n == 120
    assert graph.degree(0) == 6

# ---------------------------------------------------------------------------
# backend parity: the vectorized Jacobi iteration must replay the scalar
# reference bit-for-bit (ids, dists, iteration count, updates, charges)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("sample_rate", [1.0, 0.5])
def test_nn_descent_backend_parity(computer, sample_rate):
    runs = {}
    for backend in ("scalar", "python", "numba"):
        import warnings

        comp = DistanceComputer(computer.data.copy())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = nn_descent(
                comp, 6, np.random.default_rng(9), max_iterations=5,
                sample_rate=sample_rate, backend=backend,
            )
        runs[backend] = (
            result.ids.tobytes(), result.dists.tobytes(),
            result.iterations, tuple(result.updates), comp.count,
        )
    assert runs["python"] == runs["scalar"]
    assert runs["numba"] == runs["scalar"]


def test_random_init_backend_parity(computer):
    import warnings

    runs = {}
    for backend in ("scalar", "python"):
        comp = DistanceComputer(computer.data.copy())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            ids, dists = random_knn_init(
                comp, 5, np.random.default_rng(2), backend=backend
            )
        runs[backend] = (ids.tobytes(), dists.tobytes(), comp.count)
    assert runs["python"] == runs["scalar"]


def test_pad_init_never_duplicates():
    """Regression: the old ``np.resize`` fallback tiled neighbor ids when a
    node's sampled pool came up short, silently seeding NN-descent with
    duplicate edges."""
    # tiny n relative to k forces the pad path to exhaust + top-up
    gen = np.random.default_rng(0)
    data = gen.normal(size=(9, 3)).astype(np.float32)
    comp = DistanceComputer(data)
    for seed in range(30):
        ids, _ = random_knn_init(comp, 7, np.random.default_rng(seed))
        for node in range(9):
            row = ids[node]
            assert len(set(row.tolist())) == 7, f"dup ids for node {node}"
            assert node not in row


def test_pad_init_rejects_k_ge_n():
    gen = np.random.default_rng(0)
    data = gen.normal(size=(6, 3)).astype(np.float32)
    comp = DistanceComputer(data)
    with pytest.raises(ValueError):
        random_knn_init(comp, 6, np.random.default_rng(0))
