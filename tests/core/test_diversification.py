"""Unit and property tests for the four ND strategies (Section 3.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distances import DistanceComputer
from repro.core.diversification import (
    DIVERSIFIERS,
    PruneCounter,
    get_diversifier,
    mond,
    nond,
    pruning_ratio,
    rnd,
    rrnd,
)


@pytest.fixture()
def planar():
    """The Figure 2 scenario: x_q at origin, candidates at various angles."""
    # index 0 = x_q; 1..4 = X1..X4 laid out similar to the paper's figure
    pts = np.array(
        [
            [0.0, 0.0],    # x_q
            [1.0, 0.0],    # X1: closest
            [1.4, 0.45],   # X2: close to X1's direction
            [1.2, 1.1],    # X3: mid angle
            [-0.6, 1.6],   # X4: opposite direction
        ],
        dtype=np.float32,
    )
    computer = DistanceComputer(pts)
    cand = np.array([1, 2, 3, 4])
    dists = computer.to_query(cand, pts[0])
    computer.reset()
    return computer, cand, dists


def test_nond_keeps_closest(planar):
    computer, cand, dists = planar
    kept = nond(computer, cand, dists, 2)
    assert kept.tolist() == [1, 2]


def test_nond_uses_no_distance_calls(planar):
    computer, cand, dists = planar
    nond(computer, cand, dists, 3)
    assert computer.count == 0


def test_rnd_prunes_shadowed_candidates(planar):
    computer, cand, dists = planar
    kept = rnd(computer, cand, dists, 4)
    # X1 always kept; X2 shadowed by X1; X4 survives (opposite side)
    assert 1 in kept
    assert 2 not in kept
    assert 4 in kept


def test_rrnd_relaxation_keeps_more(planar):
    computer, cand, dists = planar
    strict = rnd(computer, cand, dists, 4)
    relaxed = rrnd(computer, cand, dists, 4, alpha=1.6)
    assert set(strict.tolist()) <= set(relaxed.tolist())
    assert len(relaxed) >= len(strict)


def test_rrnd_alpha_one_equals_rnd(planar):
    computer, cand, dists = planar
    assert rrnd(computer, cand, dists, 4, alpha=1.0).tolist() == rnd(
        computer, cand, dists, 4
    ).tolist()


def test_rrnd_rejects_alpha_below_one(planar):
    computer, cand, dists = planar
    with pytest.raises(ValueError):
        rrnd(computer, cand, dists, 4, alpha=0.5)


def test_mond_prunes_small_angles(planar):
    computer, cand, dists = planar
    kept = mond(computer, cand, dists, 4, theta_degrees=60.0)
    assert 1 in kept
    assert 2 not in kept  # angle(X1, xq, X2) < 60
    assert 4 in kept


def test_mond_theta_zero_keeps_all_distinct_directions(planar):
    computer, cand, dists = planar
    kept = mond(computer, cand, dists, 4, theta_degrees=0.0)
    assert len(kept) >= 3


def test_mond_rejects_bad_theta(planar):
    computer, cand, dists = planar
    with pytest.raises(ValueError):
        mond(computer, cand, dists, 4, theta_degrees=200.0)


def test_mond_drops_duplicate_of_query():
    pts = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 0.0]], dtype=np.float32)
    computer = DistanceComputer(pts)
    cand = np.array([1, 2])
    dists = computer.to_query(cand, pts[0])
    kept = mond(computer, cand, dists, 2)
    assert 1 in kept  # zero-distance candidate admitted first
    # the second candidate is evaluated against it without crashing


def test_all_strategies_respect_max_degree(planar):
    computer, cand, dists = planar
    for name, fn in DIVERSIFIERS.items():
        kept = fn(computer, cand, dists, 1)
        assert len(kept) <= 1, name


def test_all_strategies_first_pick_is_nearest(planar):
    computer, cand, dists = planar
    for name, fn in DIVERSIFIERS.items():
        kept = fn(computer, cand, dists, 4)
        assert kept[0] == 1, name


def test_candidates_deduplicated(planar):
    computer, cand, dists = planar
    doubled = np.concatenate([cand, cand])
    doubled_d = np.concatenate([dists, dists])
    kept = rnd(computer, doubled, doubled_d, 4)
    assert len(set(kept.tolist())) == len(kept)


def test_mismatched_inputs_raise(planar):
    computer, cand, dists = planar
    with pytest.raises(ValueError):
        rnd(computer, cand, dists[:2], 4)


def test_get_diversifier_binds_params(planar):
    computer, cand, dists = planar
    bound = get_diversifier("rrnd", alpha=1.6)
    assert bound(computer, cand, dists, 4).tolist() == rrnd(
        computer, cand, dists, 4, alpha=1.6
    ).tolist()


def test_get_diversifier_unknown():
    with pytest.raises(KeyError):
        get_diversifier("nope")


def test_prune_counter_tracks(planar):
    computer, cand, dists = planar
    stats = PruneCounter()
    rnd(computer, cand, dists, 4, stats=stats)
    assert stats.examined == 4
    assert stats.rejected >= 1
    assert 0 < stats.ratio() < 1


def test_prune_counter_empty_ratio():
    assert PruneCounter().ratio() == 0.0


def test_pruning_ratio_helper():
    assert pruning_ratio(10, 8) == pytest.approx(0.2)
    assert pruning_ratio(0, 0) == 0.0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(5, 40))
def test_property_rrnd_predicate_monotone_in_alpha(seed, n):
    """The RRND acceptance predicate relaxes with alpha (paper, §3.4).

    The paper's claim — anything pruned by RRND is pruned by RND — holds at
    the *predicate* level against a fixed selected set: if a candidate
    passes Eq. 2 (alpha = 1) it passes Eq. 3 for every alpha >= 1.  (The
    sequential algorithms themselves can diverge because earlier decisions
    change the selected set.)
    """
    gen = np.random.default_rng(seed)
    pts = gen.normal(size=(n, 4)).astype(np.float32)
    computer = DistanceComputer(pts)
    selected = gen.choice(np.arange(1, n), size=min(4, n - 2), replace=False)
    cand = int(gen.integers(1, n))
    dist_q = computer.between(0, cand)
    to_selected = computer.one_to_many(cand, selected)
    accepts = [
        bool(np.all(dist_q < alpha * to_selected)) for alpha in (1.0, 1.3, 2.0)
    ]
    # acceptance can only turn on, never off, as alpha grows
    assert accepts == sorted(accepts)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_first_rejection_agrees_rnd_vs_rrnd(seed):
    """On the first pruning decision the selected sets coincide, so RND
    rejecting implies nothing, but RND *accepting* implies RRND accepts."""
    gen = np.random.default_rng(seed)
    pts = gen.normal(size=(25, 3)).astype(np.float32)
    computer = DistanceComputer(pts)
    cand = np.arange(1, 25)
    dists = computer.to_query(cand, pts[0])
    kept_rnd = rnd(computer, cand, dists, 2)
    kept_rrnd = rrnd(computer, cand, dists, 2, alpha=1.4)
    # both keep the same nearest; if RND accepted a second, RRND must too
    assert kept_rnd[0] == kept_rrnd[0]
    if len(kept_rnd) == 2:
        assert len(kept_rrnd) == 2


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_kept_ids_come_from_candidates(seed):
    gen = np.random.default_rng(seed)
    pts = gen.normal(size=(15, 3)).astype(np.float32)
    computer = DistanceComputer(pts)
    cand = np.arange(1, 15)
    dists = computer.to_query(cand, pts[0])
    for fn in DIVERSIFIERS.values():
        kept = fn(computer, cand, dists, 8)
        assert set(kept.tolist()) <= set(cand.tolist())
