"""Tests for the vectorized multi-query beam kernel.

The kernel's contract is bit-identity with the scalar reference path —
same answer ids, distances, hop counts, and per-query distance-call totals
at any batch size, chunk size, and backend — so nearly every test here is a
cross-check against :func:`repro.core.beam_search.beam_search` /
:func:`batch_point_beam_search` on adversarial inputs (duplicate vectors,
duplicate adjacency entries, disconnected nodes).
"""

import os
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.beam_search import batch_point_beam_search, beam_search
from repro.core.distances import DistanceComputer
from repro.core.graph import CSRGraph, Graph
from repro.core.heap import NeighborQueue
from repro.core.kernels import (
    DEFAULT_CHUNK_SIZE,
    KERNEL_BACKENDS,
    _merge_row,
    batch_point_search,
    batch_search,
    have_numba,
    resolve_backend,
)

BACKENDS = ["python"] + (["numba"] if have_numba() else [])


def _random_world(seed, n=400, d=8, duplicates=True):
    """A random graph over clustered data, with ties baked in."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, d)).astype(np.float32)
    if duplicates:
        # duplicate vectors => exactly-equal distances => merge tie paths
        k = n // 8
        data[k : 2 * k] = data[:k]
    graph = Graph(n)
    for i in range(n):
        nbrs = rng.integers(0, n, size=int(rng.integers(0, 9)))
        graph.set_neighbors(i, nbrs)
    return data, graph


def _reference(graph, computer, queries, seeds, k, width):
    scratch = np.zeros(graph.n, dtype=bool)
    return [
        beam_search(graph, computer, q, s, k=k, beam_width=width,
                    visited_mask=scratch)
        for q, s in zip(queries, seeds)
    ]


def _assert_identical(ref, got):
    assert len(ref) == len(got)
    for a, b in zip(ref, got):
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.dists, b.dists)
        assert a.hops == b.hops
        assert a.distance_calls == b.distance_calls


# ----------------------------------------------------------------------
# backend resolution
# ----------------------------------------------------------------------
def test_backend_names_exposed():
    assert set(KERNEL_BACKENDS) == {"auto", "python", "numba", "scalar"}


def test_resolve_rejects_unknown():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend("cuda")


def test_resolve_explicit_passthrough():
    assert resolve_backend("python") == "python"
    assert resolve_backend("scalar") == "scalar"
    assert resolve_backend(" PYTHON ") == "python"


def test_resolve_auto():
    assert resolve_backend("auto") == ("numba" if have_numba() else "python")


def test_resolve_reads_environment(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "scalar")
    assert resolve_backend(None) == "scalar"
    monkeypatch.delenv("REPRO_KERNEL")
    assert resolve_backend(None) in ("python", "numba")


@pytest.mark.skipif(have_numba(), reason="needs an environment without numba")
def test_numba_request_falls_back_with_warning():
    with pytest.warns(RuntimeWarning, match="falling back"):
        assert resolve_backend("numba") == "python"


@pytest.mark.skipif(not have_numba(), reason="numba not installed")
def test_numba_request_resolves_silently():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_backend("numba") == "numba"


# ----------------------------------------------------------------------
# bit-identity against the scalar reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("as_csr", [False, True])
def test_batch_search_matches_scalar(backend, as_csr):
    data, graph = _random_world(0)
    if as_csr:
        graph = CSRGraph.from_graph(graph)
    rng = np.random.default_rng(1)
    queries = rng.standard_normal((37, 8)).astype(np.float32)
    seeds = [rng.integers(0, graph.n, size=int(rng.integers(1, 5)))
             for _ in range(37)]

    ref_computer = DistanceComputer(data)
    ref = _reference(graph, ref_computer, queries, seeds, 5, 16)
    got_computer = DistanceComputer(data)
    got = batch_search(graph, got_computer, queries, seeds, k=5,
                       beam_width=16, backend=backend)
    _assert_identical(ref, got)
    # accounting is exact in aggregate too, not just per query
    assert ref_computer.count == got_computer.count


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("chunk_size", [1, 3, 16, 1000])
def test_chunk_size_invariance(backend, chunk_size):
    data, graph = _random_world(2)
    rng = np.random.default_rng(3)
    queries = rng.standard_normal((23, 8)).astype(np.float32)
    seeds = [rng.integers(0, graph.n, size=2) for _ in range(23)]
    computer = DistanceComputer(data)
    ref = batch_search(graph, computer, queries, seeds, k=4, beam_width=12,
                       backend=backend, chunk_size=DEFAULT_CHUNK_SIZE)
    got = batch_search(graph, DistanceComputer(data), queries, seeds, k=4,
                       beam_width=12, backend=backend, chunk_size=chunk_size)
    _assert_identical(ref, got)


@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_point_search_matches_reference(backend):
    data, graph = _random_world(4)
    rng = np.random.default_rng(5)
    points = rng.integers(0, graph.n, size=29)
    seeds = [rng.integers(0, graph.n, size=3) for _ in range(29)]
    ref_computer = DistanceComputer(data)
    ref = batch_point_beam_search(graph, ref_computer, points, seeds, k=6,
                                  beam_width=14)
    got_computer = DistanceComputer(data)
    got = batch_point_search(graph, got_computer, points, seeds, k=6,
                             beam_width=14, backend=backend, chunk_size=7)
    _assert_identical(ref, got)
    assert ref_computer.count == got_computer.count


def test_scalar_backend_is_reference_path():
    data, graph = _random_world(6)
    rng = np.random.default_rng(7)
    queries = rng.standard_normal((9, 8)).astype(np.float32)
    seeds = [rng.integers(0, graph.n, size=2) for _ in range(9)]
    ref = _reference(graph, DistanceComputer(data), queries, seeds, 3, 10)
    got = batch_search(graph, DistanceComputer(data), queries, seeds, k=3,
                       beam_width=10, backend="scalar")
    _assert_identical(ref, got)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_batch_search_matches_scalar_property(seed):
    """Random worlds with ties: the whole contract, hypothesis-driven."""
    data, graph = _random_world(seed, n=120, d=4)
    rng = np.random.default_rng(seed ^ 0xBEEF)
    n_q = int(rng.integers(1, 12))
    queries = rng.standard_normal((n_q, 4)).astype(np.float32)
    # bake query-side ties too: some queries equal dataset vectors
    for j in range(0, n_q, 3):
        queries[j] = data[int(rng.integers(0, graph.n))]
    seeds = [rng.integers(0, graph.n, size=int(rng.integers(1, 4)))
             for _ in range(n_q)]
    k = int(rng.integers(1, 6))
    width = k + int(rng.integers(0, 10))
    ref = _reference(graph, DistanceComputer(data), queries, seeds, k, width)
    for backend in BACKENDS:
        got = batch_search(graph, DistanceComputer(data), queries, seeds,
                           k=k, beam_width=width, backend=backend,
                           chunk_size=int(rng.integers(1, 14)))
        _assert_identical(ref, got)


# ----------------------------------------------------------------------
# the per-row merge against the NeighborQueue reference
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_merge_row_replays_neighbor_queue(seed):
    rng = np.random.default_rng(seed)
    capacity = int(rng.integers(1, 9))
    size = int(rng.integers(0, capacity + 1))
    # sorted unique starting beam (queue semantics forbid duplicate ids)
    dists = np.full(capacity, np.inf)
    ids = np.full(capacity, -1, dtype=np.int64)
    expanded = np.ones(capacity, dtype=bool)
    start_d = np.sort(rng.choice(np.arange(20), size=size, replace=False)
                      .astype(np.float64))
    start_i = rng.choice(np.arange(100), size=size, replace=False).astype(np.int64)
    dists[:size] = start_d
    ids[:size] = start_i
    expanded[:size] = rng.integers(0, 2, size=size).astype(bool)

    n_cand = int(rng.integers(0, 12))
    # small integer distances force frequent exact ties
    cand_d = rng.integers(0, 12, size=n_cand).astype(np.float64)
    cand_i = rng.integers(100, 130, size=n_cand).astype(np.int64)

    queue = NeighborQueue.from_sorted_state(
        dists[:size], ids[:size], expanded[:size], capacity
    )
    for dist, node in zip(cand_d, cand_i):
        queue.insert(float(dist), int(node))

    new_size = _merge_row(dists, ids, expanded, size, cand_d, cand_i, capacity)
    assert new_size == queue.size
    assert np.array_equal(dists[:new_size], queue.dists[:new_size])
    assert np.array_equal(ids[:new_size], queue.ids[:new_size])
    assert np.array_equal(expanded[:new_size], queue.expanded[:new_size])


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def test_batch_search_validates_beam_width():
    data, graph = _random_world(8)
    with pytest.raises(ValueError, match="beam_width"):
        batch_search(graph, DistanceComputer(data),
                     np.zeros((1, 8), dtype=np.float32), [[0]], k=5,
                     beam_width=2, backend="python")


def test_batch_search_validates_chunk_size():
    data, graph = _random_world(9)
    with pytest.raises(ValueError, match="chunk_size"):
        batch_search(graph, DistanceComputer(data),
                     np.zeros((1, 8), dtype=np.float32), [[0]], k=1,
                     beam_width=4, backend="python", chunk_size=0)


def test_batch_search_validates_seed_range():
    data, graph = _random_world(10)
    with pytest.raises(ValueError, match="outside the graph's node range"):
        batch_search(graph, DistanceComputer(data),
                     np.zeros((1, 8), dtype=np.float32), [[graph.n]], k=1,
                     beam_width=4, backend="python")


def test_batch_search_requires_matching_lengths():
    data, graph = _random_world(11)
    with pytest.raises(ValueError, match="disagree"):
        batch_search(graph, DistanceComputer(data),
                     np.zeros((2, 8), dtype=np.float32), [[0]], k=1,
                     beam_width=4, backend="python")


def test_batch_point_search_validates_seed_range():
    data, graph = _random_world(12)
    with pytest.raises(ValueError, match="outside the graph's node range"):
        batch_point_search(graph, DistanceComputer(data), [0], [[-1]], k=1,
                           beam_width=4, backend="python")


# ----------------------------------------------------------------------
# tombstone exclusion: kernel path bit-identical to scalar masked filter
# ----------------------------------------------------------------------
def test_batch_search_exclude_mask_matches_scalar(small_graph):
    computer, graph = small_graph
    gen = np.random.default_rng(17)
    queries = gen.normal(size=(8, computer.dim)).astype(np.float32)
    exclude = np.zeros(graph.n, dtype=bool)
    exclude[gen.choice(graph.n, size=40, replace=False)] = True
    seeds = [
        np.sort(gen.choice(np.flatnonzero(~exclude), size=4, replace=False))
        for _ in range(queries.shape[0])
    ]
    kernel_results = batch_search(
        graph, computer, queries, seeds, k=10, beam_width=32,
        backend="python", exclude_mask=exclude,
    )
    for j in range(queries.shape[0]):
        mark = computer.checkpoint()
        ref = beam_search(
            graph, computer, queries[j], seeds[j], k=10, beam_width=32,
            exclude_mask=exclude,
        )
        assert np.array_equal(kernel_results[j].ids, ref.ids)
        assert np.array_equal(kernel_results[j].dists, ref.dists)
        assert kernel_results[j].distance_calls == computer.since(mark)
        assert not exclude[kernel_results[j].ids].any()


def test_batch_point_search_exclude_mask_matches_scalar(small_graph):
    computer, graph = small_graph
    gen = np.random.default_rng(19)
    exclude = np.zeros(graph.n, dtype=bool)
    exclude[gen.choice(graph.n, size=30, replace=False)] = True
    points = gen.choice(graph.n, size=6, replace=False).tolist()
    seeds = [
        np.sort(gen.choice(np.flatnonzero(~exclude), size=3, replace=False))
        for _ in points
    ]
    kernel_results = batch_point_search(
        graph, computer, points, seeds, k=8, beam_width=24,
        backend="python", exclude_mask=exclude,
    )
    scalar_results = batch_point_beam_search(
        graph, computer, points, seeds, k=8, beam_width=24,
        exclude_mask=exclude,
    )
    for got, ref in zip(kernel_results, scalar_results):
        assert np.array_equal(got.ids, ref.ids)
        assert np.array_equal(got.dists, ref.dists)
        assert not exclude[got.ids].any()
