"""Bit-identity property tests for the batched construction kernels.

The contract under test: for every backend, :func:`diversify_many` /
:func:`prune_merged_many` return exactly the edges the scalar strategies
would select, with identical ``PruneCounter`` totals and identical
``DistanceComputer.count`` charges.  The generators deliberately produce
the geometry that exposes last-ulp sensitivity — duplicate vectors
(distance ties and ``dist_q == 0``), duplicate candidate ids, and
``max_degree`` larger than the candidate pool.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.build_kernels import diversify_many, prune_merged_many
from repro.core.distances import DistanceComputer
from repro.core.diversification import DIVERSIFIERS, PruneCounter

BACKENDS = ["python", "numba"]  # both must reproduce the scalar reference

STRATEGIES = [
    ("nond", None),
    ("rnd", None),
    ("rrnd", {"alpha": 1.2}),
    ("rrnd", {"alpha": 1.0}),
    ("mond", {"theta_degrees": 60.0}),
    ("mond", {"theta_degrees": 0.0}),
]


def _dataset(rng, n, dim, n_dups):
    data = rng.standard_normal((n, dim)).astype(np.float32)
    for _ in range(n_dups):
        a, b = rng.integers(0, n, size=2)
        data[a] = data[b]  # exact ties and zero distances
    return data


def _scalar_reference(computer, requests, max_degree, strategy, params):
    stats = PruneCounter()
    mark = computer.checkpoint()
    base = DIVERSIFIERS[strategy]
    kept = [
        base(computer, ids, dists, max_degree, stats=stats, **(params or {}))
        for ids, dists in requests
    ]
    return kept, stats, computer.since(mark)


@pytest.mark.parametrize("strategy,params", STRATEGIES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_diversify_many_matches_scalar(strategy, params, backend):
    rng = np.random.default_rng(17)
    data = _dataset(rng, 80, 6, n_dups=6)
    computer = DistanceComputer(data)
    requests = []
    for _ in range(12):
        m = int(rng.integers(0, 30))
        ids = rng.integers(0, 80, size=m)  # duplicates likely
        dists = computer.one_to_many(int(rng.integers(0, 80)), ids)
        requests.append((ids.astype(np.int64), dists))
    for max_degree in (1, 4, 64):  # 64 > every candidate-list length
        ref_kept, ref_stats, ref_calls = _scalar_reference(
            computer, requests, max_degree, strategy, params
        )
        stats = PruneCounter()
        mark = computer.checkpoint()
        with np.errstate(all="ignore"):
            kept = diversify_many(
                computer, requests, max_degree, strategy,
                params=params, stats=stats, backend=backend,
            )
        assert computer.since(mark) == ref_calls
        assert (stats.examined, stats.rejected) == (
            ref_stats.examined, ref_stats.rejected,
        )
        assert len(kept) == len(ref_kept)
        for got, want in zip(kept, ref_kept):
            np.testing.assert_array_equal(got, np.asarray(want, dtype=np.int64))


@given(
    seed=st.integers(0, 2**32 - 1),
    max_degree=st.integers(1, 12),
    strat=st.sampled_from(["rnd", "rrnd", "mond", "nond"]),
)
@settings(max_examples=40, deadline=None)
def test_diversify_many_property(seed, max_degree, strat):
    """Randomized adversarial geometry: every backend replays the scalar run."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(8, 40))
    data = _dataset(rng, n, 4, n_dups=int(rng.integers(0, 4)))
    computer = DistanceComputer(data)
    params = (
        {"alpha": float(rng.choice([1.0, 1.1, 1.5]))}
        if strat == "rrnd"
        else {"theta_degrees": float(rng.choice([30.0, 60.0, 90.0]))}
        if strat == "mond"
        else None
    )
    requests = []
    for _ in range(int(rng.integers(1, 6))):
        m = int(rng.integers(0, 2 * n))
        ids = rng.integers(0, n, size=m).astype(np.int64)
        dists = computer.one_to_many(int(rng.integers(0, n)), ids)
        requests.append((ids, dists))
    ref_kept, ref_stats, ref_calls = _scalar_reference(
        computer, requests, max_degree, strat, params
    )
    for backend in BACKENDS:
        stats = PruneCounter()
        mark = computer.checkpoint()
        kept = diversify_many(
            computer, requests, max_degree, strat,
            params=params, stats=stats, backend=backend,
        )
        assert computer.since(mark) == ref_calls
        assert (stats.examined, stats.rejected) == (
            ref_stats.examined, ref_stats.rejected,
        )
        for got, want in zip(kept, ref_kept):
            np.testing.assert_array_equal(got, np.asarray(want, dtype=np.int64))


@pytest.mark.parametrize("backend", BACKENDS)
def test_prune_merged_many_matches_scalar(backend):
    rng = np.random.default_rng(23)
    data = _dataset(rng, 60, 5, n_dups=4)
    computer = DistanceComputer(data)
    owners = [int(o) for o in rng.integers(0, 60, size=8)]
    merged = [
        rng.integers(0, 60, size=int(rng.integers(0, 20))).astype(np.int64)
        for _ in owners
    ]
    ref_stats = PruneCounter()
    mark = computer.checkpoint()
    ref = []
    for owner, m in zip(owners, merged):
        dists = computer.one_to_many(owner, m)
        ref.append(DIVERSIFIERS["rrnd"](
            computer, m, dists, 6, alpha=1.2, stats=ref_stats
        ))
    ref_calls = computer.since(mark)
    stats = PruneCounter()
    mark = computer.checkpoint()
    kept = prune_merged_many(
        computer, owners, merged, 6, "rrnd",
        params={"alpha": 1.2}, stats=stats, backend=backend,
    )
    assert computer.since(mark) == ref_calls
    assert (stats.examined, stats.rejected) == (
        ref_stats.examined, ref_stats.rejected,
    )
    for got, want in zip(kept, ref):
        np.testing.assert_array_equal(got, np.asarray(want, dtype=np.int64))


def test_strategy_validation():
    rng = np.random.default_rng(0)
    computer = DistanceComputer(rng.standard_normal((10, 3)).astype(np.float32))
    with pytest.raises(KeyError):
        diversify_many(computer, [], 4, "nope")
    with pytest.raises(TypeError):
        diversify_many(computer, [], 4, "rnd", params={"alpha": 1.2})
    with pytest.raises(ValueError):
        diversify_many(computer, [], 4, "rrnd", params={"alpha": 0.5})
    with pytest.raises(ValueError):
        diversify_many(computer, [], 4, "mond", params={"theta_degrees": 200.0})
    with pytest.raises(ValueError):
        prune_merged_many(computer, [1, 2], [np.arange(2)], 4, "rnd")


def test_bound_diversifier_forwards_stats():
    """get_diversifier(name, **params) must thread ``stats`` through.

    Regression: the bound wrapper used to swallow the ``stats`` argument, so
    every rrnd(alpha)/mond(theta) build reported a zero pruning ratio in the
    Table 1 reproduction.
    """
    from repro.core.diversification import get_diversifier

    rng = np.random.default_rng(3)
    data = rng.standard_normal((40, 4)).astype(np.float32)
    computer = DistanceComputer(data)
    ids = np.arange(1, 30, dtype=np.int64)
    dists = computer.one_to_many(0, ids)
    for name, params in [
        ("rrnd", {"alpha": 1.05}),
        ("mond", {"theta_degrees": 85.0}),
    ]:
        bound = get_diversifier(name, **params)
        stats = PruneCounter()
        bound(computer, ids, dists, 4, stats=stats)
        assert stats.examined > 0
        # identical totals to calling the base strategy directly
        direct = PruneCounter()
        DIVERSIFIERS[name](computer, ids, dists, 4, stats=direct, **params)
        assert (stats.examined, stats.rejected) == (
            direct.examined, direct.rejected,
        )


@pytest.mark.parametrize("div,params", [
    ("rnd", None),
    ("rrnd", {"alpha": 1.2}),
    ("mond", {"theta_degrees": 60.0}),
    ("nond", None),
])
def test_builders_bit_identical_across_kernels(div, params):
    """End-to-end: both II builders produce identical graphs/stats/charges
    under every kernel backend (the strongest bit-identity test: insertion
    amplifies any single flipped accept decision into a different graph)."""
    import warnings

    from repro.core.batch_build import build_ii_graph_batched
    from repro.core.incremental import build_ii_graph

    rng = np.random.default_rng(7)
    data = rng.standard_normal((180, 8)).astype(np.float32)
    data[5] = data[120]  # duplicate vector: ties + dist_q == 0 mid-build

    def fingerprint(result):
        indptr, indices = result.graph.to_csr()
        return (
            indptr.tobytes(), indices.tobytes(), result.distance_calls,
            result.prune_stats.examined, result.prune_stats.rejected,
        )

    runs = {}
    for kern in ("scalar", "python", "numba"):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            seq = build_ii_graph(
                DistanceComputer(data), max_degree=6, beam_width=12,
                diversify=div, diversify_params=params,
                rng=np.random.default_rng(1), kernel=kern,
            )
            bat = build_ii_graph_batched(
                DistanceComputer(data), max_degree=6, beam_width=12,
                diversify=div, diversify_params=params,
                rng=np.random.default_rng(1), kernel=kern,
            )
        runs[("seq", kern)] = fingerprint(seq)
        runs[("batch", kern)] = fingerprint(bat)
    for kern in ("python", "numba"):
        assert runs[("seq", kern)] == runs[("seq", "scalar")]
        assert runs[("batch", kern)] == runs[("batch", "scalar")]
