"""Unit tests for the linear-buffer queue and bounded heap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heap import BoundedMaxHeap, NeighborQueue


def test_queue_rejects_bad_capacity():
    with pytest.raises(ValueError):
        NeighborQueue(0)


def test_insert_keeps_sorted():
    q = NeighborQueue(5)
    for d, i in [(3.0, 1), (1.0, 2), (2.0, 3)]:
        # the returned acceptance bound stays inf until the buffer fills
        assert q.insert(d, i) == float("inf")
    ids, dists = q.entries()
    assert list(dists) == [1.0, 2.0, 3.0]
    assert list(ids) == [2, 3, 1]


def test_insert_rejects_duplicates():
    q = NeighborQueue(5)
    q.insert(1.0, 7)
    q.insert(0.5, 7)
    ids, dists = q.entries()
    assert len(q) == 1
    assert list(ids) == [7] and list(dists) == [1.0]


def test_insert_evicts_worst_at_capacity():
    q = NeighborQueue(3)
    for d, i in [(1.0, 1), (2.0, 2), (3.0, 3)]:
        q.insert(d, i)
    assert q.insert(1.5, 4) == 2.0  # new bound after 3 is evicted
    ids, dists = q.entries()
    assert 3 not in ids
    assert list(dists) == [1.0, 1.5, 2.0]


def test_insert_rejects_worse_than_worst_when_full():
    q = NeighborQueue(2)
    q.insert(1.0, 1)
    q.insert(2.0, 2)
    assert q.insert(5.0, 3) == 2.0  # rejected: bound unchanged
    assert 3 not in q
    assert len(q) == 2


def test_insert_returns_bound_matching_worst_dist():
    q = NeighborQueue(2)
    assert q.insert(1.0, 1) == q.worst_dist() == float("inf")
    assert q.insert(2.0, 2) == q.worst_dist() == 2.0
    assert q.insert(1.5, 3) == q.worst_dist() == 1.5
    assert q.insert(9.0, 4) == q.worst_dist() == 1.5


def test_evicted_id_can_be_reinserted():
    q = NeighborQueue(2)
    q.insert(1.0, 1)
    q.insert(2.0, 2)
    q.insert(1.5, 3)  # evicts 2
    assert 2 not in q
    q.insert(0.5, 2)
    assert 2 in q


def test_pop_nearest_unexpanded_order():
    q = NeighborQueue(4)
    for d, i in [(4.0, 4), (1.0, 1), (3.0, 3), (2.0, 2)]:
        q.insert(d, i)
    assert [q.pop_nearest_unexpanded() for _ in range(5)] == [1, 2, 3, 4, None]


def test_pop_sees_newly_inserted_closer_entries():
    q = NeighborQueue(4)
    q.insert(2.0, 1)
    assert q.pop_nearest_unexpanded() == 1
    q.insert(1.0, 2)  # closer than anything expanded
    assert q.pop_nearest_unexpanded() == 2


def test_worst_dist_inf_until_full():
    q = NeighborQueue(2)
    q.insert(1.0, 1)
    assert q.worst_dist() == float("inf")
    q.insert(2.0, 2)
    assert q.worst_dist() == 2.0


def test_top_k():
    q = NeighborQueue(5)
    for d, i in [(5.0, 5), (1.0, 1), (3.0, 3)]:
        q.insert(d, i)
    ids, dists = q.top_k(2)
    assert list(ids) == [1, 3]


def test_contains():
    q = NeighborQueue(2)
    q.insert(1.0, 9)
    assert 9 in q
    assert 8 not in q


@settings(max_examples=50, deadline=None)
@given(
    entries=st.lists(
        st.tuples(st.floats(0, 1000, allow_nan=False), st.integers(0, 50)),
        min_size=1,
        max_size=60,
    ),
    capacity=st.integers(1, 20),
)
def test_property_queue_invariants(entries, capacity):
    """Structural invariants: sorted, unique ids, bounded, offered pairs only.

    (Exact top-k semantics are deliberately not asserted: a rejected insert
    does not register its id, so a later closer duplicate may re-enter —
    matching the single-buffer behaviour of the C++ code bases.)
    """
    q = NeighborQueue(capacity)
    offered = set()
    for d, i in entries:
        q.insert(d, i)
        offered.add((d, i))
    ids, dists = q.entries()
    assert len(ids) <= capacity
    assert len(set(ids.tolist())) == len(ids)
    assert np.all(np.diff(dists) >= 0)
    for d, i in zip(dists.tolist(), ids.tolist()):
        assert (d, i) in offered


class ReferenceQueue:
    """Executable specification of NeighborQueue: a sorted list of
    ``[dist, id, expanded]`` rows plus a membership set, mirroring the
    documented semantics operation for operation (ties insert before equal
    distances, eviction drops the tail, a rejected insert does not register
    its id, pops return the first unexpanded row)."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.rows = []
        self.members = set()

    def worst_dist(self):
        if len(self.rows) < self.capacity:
            return float("inf")
        return self.rows[-1][0]

    def insert(self, dist, node_id):
        import bisect

        if node_id in self.members:
            return self.worst_dist()
        if len(self.rows) == self.capacity and dist >= self.rows[-1][0]:
            return self.worst_dist()
        if len(self.rows) == self.capacity:
            self.members.discard(self.rows.pop()[1])
        pos = bisect.bisect_left([r[0] for r in self.rows], dist)
        self.rows.insert(pos, [dist, node_id, False])
        self.members.add(node_id)
        return self.worst_dist()

    def pop_nearest_unexpanded(self):
        for row in self.rows:
            if not row[2]:
                row[2] = True
                return row[1]
        return None

    def entries(self):
        return [r[1] for r in self.rows], [r[0] for r in self.rows]


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(
                st.just("insert"),
                st.floats(0, 100, allow_nan=False),
                st.integers(0, 15),  # small id range forces duplicates
            ),
            st.tuples(st.just("pop")),
        ),
        min_size=1,
        max_size=80,
    ),
    capacity=st.integers(1, 8),  # small capacity forces eviction
)
def test_property_queue_matches_reference_model(ops, capacity):
    """Pit NeighborQueue against the sorted-list model on random interleaved
    insert/pop sequences: returned bounds, pop order, membership, and the
    final entries must all agree."""
    q = NeighborQueue(capacity)
    model = ReferenceQueue(capacity)
    for op in ops:
        if op[0] == "insert":
            _, dist, node_id = op
            assert q.insert(dist, node_id) == model.insert(dist, node_id)
        else:
            assert q.pop_nearest_unexpanded() == model.pop_nearest_unexpanded()
        assert len(q) == len(model.rows)
        assert q.worst_dist() == model.worst_dist()
    ids, dists = q.entries()
    model_ids, model_dists = model.entries()
    assert ids.tolist() == model_ids
    assert dists.tolist() == model_dists
    for node_id in range(16):
        assert (node_id in q) == (node_id in model.members)


def test_heap_rejects_bad_k():
    with pytest.raises(ValueError):
        BoundedMaxHeap(0)


def test_heap_keeps_k_smallest():
    h = BoundedMaxHeap(3)
    for d, i in [(5.0, 5), (1.0, 1), (4.0, 4), (2.0, 2), (3.0, 3)]:
        h.push(d, i)
    ids, dists = h.sorted_items()
    assert list(ids) == [1, 2, 3]
    assert list(dists) == [1.0, 2.0, 3.0]


def test_heap_worst_dist():
    h = BoundedMaxHeap(2)
    assert h.worst_dist() == float("inf")
    h.push(1.0, 1)
    assert h.worst_dist() == float("inf")
    h.push(3.0, 3)
    assert h.worst_dist() == 3.0
    h.push(2.0, 2)
    assert h.worst_dist() == 2.0


def test_heap_empty_sorted_items():
    ids, dists = BoundedMaxHeap(2).sorted_items()
    assert ids.size == 0 and dists.size == 0


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=40),
    k=st.integers(1, 10),
)
def test_property_heap_matches_sorted_prefix(values, k):
    h = BoundedMaxHeap(k)
    for idx, v in enumerate(values):
        h.push(v, idx)
    _, dists = h.sorted_items()
    assert dists.tolist() == pytest.approx(sorted(values)[:k])
