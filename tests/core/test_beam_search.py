"""Unit tests for Algorithm 1 and the greedy descent."""

import numpy as np
import pytest

from repro.core.beam_search import beam_search, greedy_search
from repro.core.distances import DistanceComputer
from repro.core.graph import Graph


@pytest.fixture()
def line_world():
    """Points on a line 0..19; graph is a bidirectional chain."""
    data = np.arange(20, dtype=np.float32)[:, None]
    computer = DistanceComputer(data)
    graph = Graph(20)
    for i in range(20):
        nbrs = [j for j in (i - 1, i + 1) if 0 <= j < 20]
        graph.set_neighbors(i, nbrs)
    return computer, graph


def test_finds_exact_on_chain(line_world):
    computer, graph = line_world
    result = beam_search(graph, computer, np.array([13.2]), [0], k=3, beam_width=20)
    assert result.ids[0] == 13
    assert set(result.ids.tolist()) == {12, 13, 14}


def test_beam_width_must_cover_k(line_world):
    computer, graph = line_world
    with pytest.raises(ValueError):
        beam_search(graph, computer, np.array([1.0]), [0], k=5, beam_width=3)


def test_requires_seeds(line_world):
    computer, graph = line_world
    with pytest.raises(ValueError):
        beam_search(graph, computer, np.array([1.0]), [], k=1, beam_width=4)


def test_narrow_beam_can_miss(line_world):
    """A beam of 1 starting far away terminates early on a chain."""
    computer, graph = line_world
    result = beam_search(graph, computer, np.array([19.0]), [0], k=1, beam_width=1)
    # greedy from 0 toward 19 walks the chain; with beam 1 it still
    # improves monotonically on a line, so it reaches 19
    assert result.ids[0] == 19


def test_distance_calls_counted(line_world):
    computer, graph = line_world
    result = beam_search(graph, computer, np.array([5.0]), [0], k=1, beam_width=8)
    assert result.distance_calls > 0
    assert result.distance_calls == len(result.visited)


def test_visited_dists_align(line_world):
    computer, graph = line_world
    result = beam_search(graph, computer, np.array([5.0]), [10], k=2, beam_width=8)
    assert result.visited.shape == result.visited_dists.shape
    recomputed = computer.to_query(result.visited, np.array([5.0]))
    assert np.allclose(recomputed, result.visited_dists)


def test_results_sorted(line_world):
    computer, graph = line_world
    result = beam_search(graph, computer, np.array([7.7]), [0, 19], k=5, beam_width=12)
    assert np.all(np.diff(result.dists) >= 0)


def test_duplicate_seeds_deduped(line_world):
    computer, graph = line_world
    result = beam_search(graph, computer, np.array([3.0]), [5, 5, 5], k=1, beam_width=4)
    assert result.ids[0] == 3
    assert len(set(result.visited.tolist())) == len(result.visited)


def test_visited_mask_scratch_reuse(line_world):
    computer, graph = line_world
    scratch = np.ones(20, dtype=bool)  # dirty scratch must be cleared
    result = beam_search(
        graph, computer, np.array([4.0]), [0], k=1, beam_width=8, visited_mask=scratch
    )
    assert result.ids[0] == 4


def test_isolated_node_graph():
    data = np.arange(4, dtype=np.float32)[:, None]
    computer = DistanceComputer(data)
    graph = Graph(4)  # no edges at all
    result = beam_search(graph, computer, np.array([2.2]), [0, 2], k=1, beam_width=4)
    assert result.ids[0] == 2
    assert result.hops == 2  # both seeds expanded, no neighbors found


def test_greedy_search_descends(line_world):
    computer, graph = line_world
    node, dist, calls = greedy_search(graph, computer, np.array([15.0]), entry=2)
    assert node == 15
    assert dist == pytest.approx(0.0)
    assert calls > 0


def test_greedy_search_stuck_at_local_optimum():
    """Greedy halts at a local minimum when the graph misdirects it."""
    data = np.array([[0.0], [1.0], [10.0], [10.5]], dtype=np.float32)
    computer = DistanceComputer(data)
    graph = Graph(4)
    graph.set_neighbors(0, [1])
    graph.set_neighbors(1, [0])
    graph.set_neighbors(2, [3])
    graph.set_neighbors(3, [2])
    node, _, _ = greedy_search(graph, computer, np.array([10.4]), entry=0)
    assert node == 1  # cannot cross the disconnected gap


def test_recall_improves_with_beam_width(small_graph, tiny_queries):
    computer, graph = small_graph
    totals = {}
    for width in (5, 60):
        hits = 0
        for q in tiny_queries:
            gt, _ = computer.exact_knn(q, 5)
            res = beam_search(graph, computer, q, [0], k=5, beam_width=width)
            # don't let accounting from exact_knn interfere: just count hits
            hits += len(set(gt.tolist()) & set(res.ids.tolist()))
        totals[width] = hits
    assert totals[60] >= totals[5]


def test_out_of_range_seed_raises_clear_error(small_graph):
    """Regression: an out-of-range seed used to surface as an IndexError
    deep inside the distance kernel."""
    computer, graph = small_graph
    query = np.zeros(computer.dim, dtype=np.float32)
    with pytest.raises(ValueError, match=r"\[0, 300\)"):
        beam_search(graph, computer, query, [graph.n], k=5, beam_width=10)
    with pytest.raises(ValueError, match="seed ids"):
        beam_search(graph, computer, query, [-1], k=5, beam_width=10)


def test_beam_search_runs_on_csr_graph(small_graph):
    """The CSR view must be a drop-in traversal target with identical
    answers and identical distance accounting."""
    from repro.core.graph import CSRGraph

    computer, graph = small_graph
    csr = CSRGraph.from_graph(graph)
    query = computer.data[7] + 0.01
    a = beam_search(graph, computer, query, [0, 5], k=5, beam_width=20)
    b = beam_search(csr, computer, query, [0, 5], k=5, beam_width=20)
    assert a.ids.tolist() == b.ids.tolist()
    assert a.distance_calls == b.distance_calls
    assert a.hops == b.hops


def test_batch_point_beam_search_validates_seed_range(small_graph):
    """Regression: out-of-range seeds used to flow into fancy indexing and
    corrupt batch point searches silently instead of raising."""
    from repro.core.beam_search import batch_point_beam_search

    computer, graph = small_graph
    with pytest.raises(ValueError, match="outside the graph's node range"):
        batch_point_beam_search(
            graph, computer, [0, 1], [[0], [graph.n]], k=2, beam_width=8
        )
    with pytest.raises(ValueError, match="seed ids"):
        batch_point_beam_search(
            graph, computer, [0], [[-3]], k=2, beam_width=8
        )


# ----------------------------------------------------------------------
# tombstone exclusion (streaming tier)
# ----------------------------------------------------------------------
def test_exclude_mask_filters_answers_not_traversal(line_world):
    computer, graph = line_world
    query = np.array([13.2])
    plain = beam_search(graph, computer, query, [0], k=3, beam_width=20)
    mark = computer.checkpoint()
    exclude = np.zeros(20, dtype=bool)
    exclude[[13, 14]] = True
    masked = beam_search(
        graph, computer, query, [0], k=3, beam_width=20, exclude_mask=exclude
    )
    # excluded nodes still route: identical traversal cost...
    assert computer.since(mark) == plain.distance_calls
    assert masked.hops == plain.hops
    # ...but never appear in the answer, which backfills from the beam
    assert not set(masked.ids.tolist()) & {13, 14}
    assert len(masked.ids) == 3


def test_exclude_mask_none_is_identity(line_world):
    computer, graph = line_world
    query = np.array([7.7])
    plain = beam_search(graph, computer, query, [0], k=4, beam_width=12)
    masked = beam_search(
        graph, computer, query, [0], k=4, beam_width=12,
        exclude_mask=np.zeros(20, dtype=bool),
    )
    assert np.array_equal(plain.ids, masked.ids)
    assert np.array_equal(plain.dists, masked.dists)


def test_exclude_mask_shortfall_pads_to_k(line_world):
    """When a mask empties the beam below ``k``, the shortfall is surfaced
    by sentinel padding, never by silently shrinking the answer."""
    from repro.core.beam_search import PAD_ID

    computer, graph = line_world
    # nearly everything excluded -> fewer than k live answers remain
    exclude = np.ones(20, dtype=bool)
    exclude[[0, 1]] = False
    result = beam_search(
        graph, computer, np.array([19.0]), [0], k=5, beam_width=20,
        exclude_mask=exclude,
    )
    assert result.ids.size == 5  # always exactly k slots
    assert result.dists.size == 5
    assert result.n_valid == 2
    valid = result.ids[result.ids != PAD_ID]
    assert valid.size == 2
    assert not exclude[valid].any()
    assert np.all(result.ids[2:] == PAD_ID)
    assert np.all(np.isinf(result.dists[2:]))
    # valid prefix is sorted and finite
    assert np.all(np.isfinite(result.dists[:2]))
    assert np.all(np.diff(result.dists[:2]) >= 0)


def test_exclude_mask_everything_excluded_all_pad(line_world):
    from repro.core.beam_search import PAD_ID

    computer, graph = line_world
    exclude = np.ones(20, dtype=bool)
    result = beam_search(
        graph, computer, np.array([5.0]), [0], k=3, beam_width=10,
        exclude_mask=exclude,
    )
    assert result.ids.size == 3
    assert result.n_valid == 0
    assert np.all(result.ids == PAD_ID)
    assert np.all(np.isinf(result.dists))


def test_batch_point_search_accepts_per_point_masks(line_world):
    """batch_point_beam_search takes one shared mask or a per-point list,
    matching the scalar beam_search answer for each point's own mask."""
    from repro.core.beam_search import batch_point_beam_search

    computer, graph = line_world
    mask_a = np.zeros(20, dtype=bool)
    mask_a[[4, 5]] = True
    mask_b = np.zeros(20, dtype=bool)
    mask_b[[10, 11, 12]] = True
    batch = batch_point_beam_search(
        graph, computer, [5, 11], [[0], [0]], k=3, beam_width=20,
        exclude_mask=[mask_a, mask_b],
    )
    for point, mask, res in zip([5, 11], [mask_a, mask_b], batch):
        ref = beam_search(
            graph, computer, computer.data[point], [0], k=3, beam_width=20,
            exclude_mask=mask,
        )
        assert np.array_equal(res.ids, ref.ids)
        assert np.allclose(res.dists, ref.dists)
        valid = res.ids[res.ids >= 0]
        assert not mask[valid].any()
