"""Unit tests for the adjacency-list graph."""

import numpy as np
import pytest

from repro.core.graph import CSRGraph, Graph


def test_rejects_negative_n():
    with pytest.raises(ValueError):
        Graph(-1)


def test_empty_graph():
    g = Graph(3)
    assert g.num_edges() == 0
    assert g.degree(0) == 0


def test_set_neighbors_dedupes_and_drops_self():
    g = Graph(5)
    g.set_neighbors(0, [1, 2, 2, 0, 3])
    assert sorted(g.neighbors(0).tolist()) == [1, 2, 3]


def test_set_neighbors_preserves_order():
    g = Graph(5)
    g.set_neighbors(0, [3, 1, 2])
    assert g.neighbors(0).tolist() == [3, 1, 2]


def test_add_edge_idempotent():
    g = Graph(3)
    g.add_edge(0, 1)
    g.add_edge(0, 1)
    assert g.degree(0) == 1


def test_add_edge_ignores_self_loop():
    g = Graph(3)
    g.add_edge(1, 1)
    assert g.degree(1) == 0


def test_degrees_and_num_edges():
    g = Graph(4)
    g.set_neighbors(0, [1, 2])
    g.set_neighbors(1, [2])
    assert g.degrees().tolist() == [2, 1, 0, 0]
    assert g.num_edges() == 3


def test_reverse_edges():
    g = Graph(3)
    g.set_neighbors(0, [1])
    g.set_neighbors(1, [2])
    rev = g.reverse_edges()
    assert rev[1] == [0]
    assert rev[2] == [1]
    assert rev[0] == []


def test_make_undirected():
    g = Graph(3)
    g.set_neighbors(0, [1])
    g.make_undirected()
    assert 0 in g.neighbors(1)


def test_reachable_from_chain():
    g = Graph(4)
    g.set_neighbors(0, [1])
    g.set_neighbors(1, [2])
    mask = g.reachable_from(0)
    assert mask.tolist() == [True, True, True, False]


def test_is_connected_from():
    g = Graph(3)
    g.set_neighbors(0, [1, 2])
    assert g.is_connected_from(0)
    assert not g.is_connected_from(2)


def test_to_csr_roundtrip():
    g = Graph(3)
    g.set_neighbors(0, [2, 1])
    g.set_neighbors(2, [0])
    indptr, indices = g.to_csr()
    assert indptr.tolist() == [0, 2, 2, 3]
    assert indices[indptr[0]:indptr[1]].tolist() == [2, 1]
    assert indices[indptr[2]:indptr[3]].tolist() == [0]


def test_from_neighbor_lists():
    g = Graph.from_neighbor_lists([[1], [0, 2], []])
    assert g.n == 3
    assert g.neighbors(1).tolist() == [0, 2]


def test_copy_is_independent():
    g = Graph(2)
    g.set_neighbors(0, [1])
    h = g.copy()
    h.set_neighbors(0, [])
    assert g.degree(0) == 1


def test_memory_bytes_grows_with_edges():
    g = Graph(10)
    before = g.memory_bytes()
    g.set_neighbors(0, list(range(1, 10)))
    assert g.memory_bytes() > before


# ----------------------------------------------------------------------
# CSR round trips and guards
# ----------------------------------------------------------------------


def test_from_csr_roundtrip():
    g = Graph.from_neighbor_lists([[1, 2], [2], [], [0]])
    indptr, indices = g.to_csr()
    rebuilt = Graph.from_csr(indptr, indices)
    assert rebuilt.n == g.n
    for node in range(g.n):
        assert rebuilt.neighbors(node).tolist() == g.neighbors(node).tolist()


def test_from_csr_validates():
    with pytest.raises(ValueError):
        Graph.from_csr(np.asarray([0, 2, 1]), np.asarray([0, 1], dtype=np.int32))
    with pytest.raises(ValueError):
        Graph.from_csr(np.asarray([0, 1, 2]), np.asarray([0, 9], dtype=np.int32))


def test_to_csr_rejects_int32_node_overflow():
    """Regression: node ids beyond int32 silently wrapped in the CSR arrays."""
    g = Graph(3)
    g.n = 2**31 + 1  # simulate a graph with more ids than int32 can address
    with pytest.raises(ValueError, match="int32"):
        g.to_csr()


def test_to_csr_rejects_int32_edge_overflow(monkeypatch):
    g = Graph(3)
    monkeypatch.setattr(
        Graph, "degrees", lambda self: np.asarray([2**30, 2**30, 2**30])
    )
    with pytest.raises(ValueError, match="int32"):
        g.to_csr()


def test_csr_graph_matches_adjacency_graph():
    g = Graph.from_neighbor_lists([[1, 3], [2], [0, 1], []])
    csr = CSRGraph.from_graph(g)
    assert csr.n == g.n
    assert csr.num_edges() == g.num_edges()
    assert csr.degrees().tolist() == g.degrees().tolist()
    for node in range(g.n):
        assert csr.neighbors(node).tolist() == g.neighbors(node).tolist()
        assert csr.degree(node) == g.degree(node)
    back = csr.to_graph()
    for node in range(g.n):
        assert back.neighbors(node).tolist() == g.neighbors(node).tolist()


def test_csr_graph_validates_on_construction():
    with pytest.raises(ValueError):
        CSRGraph(np.asarray([0, 5]), np.asarray([0], dtype=np.int32))


def test_csr_graph_memory_bytes():
    g = Graph.from_neighbor_lists([[1], [0]])
    csr = CSRGraph.from_graph(g)
    assert csr.memory_bytes() == csr.indptr.nbytes + csr.indices.nbytes


def test_graph_neighbors_view_is_read_only():
    """Regression: builders hold neighbors() views; mutating one through a
    caller used to silently corrupt the graph."""
    g = Graph.from_neighbor_lists([[1, 2], [0], [0]])
    view = g.neighbors(0)
    with pytest.raises(ValueError, match="read-only"):
        view[0] = 99
    # the graph still answers from uncorrupted storage
    assert g.neighbors(0).tolist() == [1, 2]


def test_csr_graph_neighbors_view_is_read_only():
    csr = CSRGraph.from_graph(Graph.from_neighbor_lists([[1], [0]]))
    with pytest.raises(ValueError, match="read-only"):
        csr.neighbors(0)[0] = 1
    with pytest.raises(ValueError, match="read-only"):
        csr.indices[0] = 1


def test_graph_set_neighbors_keeps_caller_array_writable():
    g = Graph(3)
    mine = np.asarray([1, 2], dtype=np.int64)
    g.set_neighbors(0, mine)
    mine[0] = 2  # caller's own array is untouched by the freeze
    assert g.neighbors(0).tolist() == [1, 2]


def test_from_neighbor_matrix_matches_set_neighbors():
    rng = np.random.default_rng(0)
    n, k = 50, 7
    ids = rng.integers(0, n, size=(n, k))  # duplicates + self-loops likely
    bulk = Graph.from_neighbor_matrix(ids)
    ref = Graph(n)
    for node in range(n):
        ref.set_neighbors(node, ids[node])
    for node in range(n):
        np.testing.assert_array_equal(bulk.neighbors(node), ref.neighbors(node))


def test_from_neighbor_matrix_validates():
    with pytest.raises(ValueError):
        Graph.from_neighbor_matrix(np.zeros(5, dtype=np.int64))
    with pytest.raises(ValueError):
        Graph.from_neighbor_matrix(np.array([[0, 3], [1, 0]]))  # 3 >= n
    with pytest.raises(ValueError):
        Graph.from_neighbor_matrix(np.array([[-1, 0], [1, 0]]))


def test_from_neighbor_matrix_empty():
    g = Graph.from_neighbor_matrix(np.empty((0, 0), dtype=np.int64))
    assert g.n == 0
