"""Tests for the streaming tier: tombstones, inserts, consolidation.

The load-bearing contracts:

* a tombstoned id is never returned, at any beam width, worker count, or
  kernel backend — while traversal (hops, distance calls) is unchanged;
* ``insert`` makes new vectors findable against the live graph;
* ``consolidate`` keeps recall near a from-scratch build over the live set;
* graph bytes and the distance-call total after any schedule are
  bit-identical across worker counts and kernel backends.
"""

import pickle

import numpy as np
import pytest

from repro.core.streaming import StreamingIndex
from repro.eval.metrics import recall
from repro.eval.parallel import run_batch


@pytest.fixture(scope="module")
def churned():
    """A small index with a fixed delete/insert schedule applied."""
    gen = np.random.default_rng(3)
    data = gen.standard_normal((240, 10)).astype(np.float32)
    index = StreamingIndex(
        max_degree=10, build_beam_width=32, seed=5, default_beam_width=32
    ).build(data)
    doomed = np.random.default_rng(9).choice(240, size=24, replace=False)
    index.delete(doomed)
    inserted = index.insert(gen.standard_normal((24, 10)).astype(np.float32))
    queries = gen.standard_normal((12, 10)).astype(np.float32)
    return index, doomed, inserted, queries


def _schedule(index, data, doomed, replacements):
    index.build(data)
    index.delete(doomed[: len(doomed) // 2])
    index.insert(replacements[: len(replacements) // 2])
    index.delete(doomed[len(doomed) // 2:])
    index.insert(replacements[len(replacements) // 2:])
    index.consolidate()
    return index


def test_tombstones_never_returned(churned):
    index, doomed, _, queries = churned
    for width in (8, 16, 48):
        for j, query in enumerate(queries):
            index.seed_query_rng(j)
            result = index.search(query, k=10, beam_width=width)
            assert not np.intersect1d(result.ids, doomed).size
            assert not index._tombstone[result.ids].any()


def test_tombstones_never_returned_batched(churned):
    index, doomed, _, queries = churned
    for kernel in ("python", "scalar"):
        results = index.search_batch(
            queries, k=10, beam_width=32,
            query_indices=np.arange(len(queries)), kernel=kernel,
        )
        for result in results:
            assert not np.intersect1d(result.ids, doomed).size


def test_tombstones_never_returned_across_workers(churned):
    index, doomed, _, queries = churned
    base = run_batch(index, queries, k=10, beam_width=32, n_workers=1)
    sharded = run_batch(index, queries, k=10, beam_width=32, n_workers=2)
    for a, b in zip(base.outcomes, sharded.outcomes):
        assert np.array_equal(a.ids, b.ids)
        assert a.distance_calls == b.distance_calls
        assert not np.intersect1d(a.ids, doomed).size


def test_delete_does_not_change_traversal_cost():
    gen = np.random.default_rng(4)
    data = gen.standard_normal((150, 8)).astype(np.float32)
    query = gen.standard_normal(8).astype(np.float32)
    index = StreamingIndex(
        max_degree=8, build_beam_width=24, seed=1, default_beam_width=24
    ).build(data)
    index.seed_query_rng(0)
    before = index.search(query, k=5, beam_width=24)
    index.delete(before.ids[:2])
    index.seed_query_rng(0)
    after = index.search(query, k=5, beam_width=24)
    # tombstoned nodes still route: same hops and distance calls, the
    # answer just backfills from the beam
    assert after.hops == before.hops
    assert after.distance_calls == before.distance_calls
    assert not np.intersect1d(after.ids, before.ids[:2]).size


def test_insert_makes_vectors_findable(churned):
    index, _, inserted, _ = churned
    for node in inserted[:5]:
        index.seed_query_rng(int(node))
        result = index.search(index.computer.data[node], k=3, beam_width=48)
        assert node in result.ids, f"inserted node {node} not findable"


def test_delete_validation():
    data = np.random.default_rng(0).standard_normal((50, 6)).astype(np.float32)
    index = StreamingIndex(max_degree=6, build_beam_width=16, seed=0).build(data)
    with pytest.raises(ValueError, match="outside"):
        index.delete([50])
    with pytest.raises(ValueError, match="outside"):
        index.delete([-1])
    with pytest.raises(ValueError, match="every live node"):
        index.delete(np.arange(50))
    assert index.delete([3, 3, 7]) == 2
    assert index.delete([3]) == 0  # idempotent
    assert index.n_alive == 48


def test_insert_validation_and_growth():
    data = np.random.default_rng(1).standard_normal((40, 5)).astype(np.float32)
    index = StreamingIndex(
        max_degree=6, build_beam_width=16, seed=0, growth_factor=1.1
    ).build(data)
    with pytest.raises(ValueError, match="vectors must be"):
        index.insert(np.zeros((2, 4), dtype=np.float32))
    assert index.insert(np.zeros((0, 5), dtype=np.float32)).size == 0
    gen = np.random.default_rng(2)
    total = 40
    for _ in range(4):  # force several capacity doublings
        batch = gen.standard_normal((25, 5)).astype(np.float32)
        new_ids = index.insert(batch)
        assert np.array_equal(
            new_ids, np.arange(total, total + 25, dtype=np.int64)
        )
        total += 25
        assert index.n_total == total
        assert np.allclose(index.computer.data[new_ids], batch)
    assert index.graph.n == total


def test_consolidate_clears_dead_adjacency():
    gen = np.random.default_rng(6)
    data = gen.standard_normal((120, 6)).astype(np.float32)
    index = StreamingIndex(max_degree=8, build_beam_width=24, seed=2).build(data)
    doomed = np.arange(0, 120, 10)
    index.delete(doomed)
    report = index.consolidate()
    assert report.n_dead == doomed.size
    assert report.distance_calls > 0
    for d in doomed:
        assert index.graph.neighbors(int(d)).size == 0
    # no live node points at a dead one anymore
    for node in index.alive_ids.tolist():
        nbrs = index.graph.neighbors(node)
        assert not index._tombstone[nbrs].any()
    # a second pass finds nothing to repair
    assert index.consolidate().n_repaired == 0


def test_consolidation_recall_near_from_scratch():
    gen = np.random.default_rng(8)
    data = gen.standard_normal((500, 12)).astype(np.float32)
    queries = gen.standard_normal((15, 12)).astype(np.float32)
    doomed = np.random.default_rng(10).choice(500, size=50, replace=False)
    replacements = gen.standard_normal((50, 12)).astype(np.float32)

    index = StreamingIndex(max_degree=12, build_beam_width=48, seed=4)
    _schedule(index, data, doomed, replacements)
    truth, _ = index.alive_ground_truth(queries, 10)
    recalls = []
    for j, query in enumerate(queries):
        index.seed_query_rng(j)
        result = index.search(query, k=10, beam_width=48)
        recalls.append(recall(result.ids, truth[j]))
    consolidated = float(np.mean(recalls))

    live_rows = np.concatenate(
        [data[np.setdiff1d(np.arange(500), doomed)], replacements]
    )
    fresh = StreamingIndex(max_degree=12, build_beam_width=48, seed=4).build(
        live_rows
    )
    fresh_truth, _ = fresh.alive_ground_truth(queries, 10)
    fresh_recalls = []
    for j, query in enumerate(queries):
        fresh.seed_query_rng(j)
        result = fresh.search(query, k=10, beam_width=48)
        fresh_recalls.append(recall(result.ids, fresh_truth[j]))
    assert consolidated > float(np.mean(fresh_recalls)) - 0.05


def test_schedule_bit_identical_across_workers_and_kernels():
    gen = np.random.default_rng(12)
    data = gen.standard_normal((200, 8)).astype(np.float32)
    doomed = np.random.default_rng(13).choice(200, size=30, replace=False)
    replacements = gen.standard_normal((30, 8)).astype(np.float32)

    states = []
    for n_workers, kernel in [(1, None), (2, None), (4, None), (1, "scalar")]:
        index = StreamingIndex(
            max_degree=8, build_beam_width=24, seed=6,
            n_workers=n_workers, min_parallel_batch=4, kernel=kernel,
        )
        _schedule(index, data, doomed, replacements)
        states.append((index.graph_fingerprint(), index.computer.count))
    assert len(set(states)) == 1, f"divergent replay states: {states}"


def test_version_bumps_on_every_mutation():
    gen = np.random.default_rng(14)
    data = gen.standard_normal((60, 5)).astype(np.float32)
    index = StreamingIndex(max_degree=6, build_beam_width=16, seed=0).build(data)
    v = index.version
    index.delete([1])
    assert index.version == v + 1
    index.insert(gen.standard_normal((2, 5)).astype(np.float32))
    assert index.version == v + 2
    index.consolidate()
    assert index.version == v + 3


def test_pickle_roundtrip_with_bound_diversifier(churned):
    index, _, _, queries = churned
    skeleton = pickle.loads(pickle.dumps(index))
    arrays = index.shared_query_state()
    assert "tombstone" in arrays
    skeleton.attach_shared_query_state(arrays)
    skeleton.seed_query_rng(0)
    index.seed_query_rng(0)
    a = skeleton.search(queries[0], k=5, beam_width=32)
    b = index.search(queries[0], k=5, beam_width=32)
    assert np.array_equal(a.ids, b.ids)


def test_build_validation():
    with pytest.raises(ValueError):
        StreamingIndex(max_degree=1)
    with pytest.raises(ValueError):
        StreamingIndex(growth_factor=0.5)
    with pytest.raises(TypeError, match="by name"):
        StreamingIndex(diversify=lambda *a: a)
    index = StreamingIndex(max_degree=4, build_beam_width=8, seed=0)
    with pytest.raises(RuntimeError):
        index.search(np.zeros(4, dtype=np.float32), k=1)


def test_memory_accounting(churned):
    index, _, _, _ = churned
    assert index.memory_bytes() >= index._tombstone.nbytes
