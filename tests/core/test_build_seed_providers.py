"""Focused tests for the build-time seed providers (Table 2's mechanism)."""

import numpy as np
import pytest

from repro.core.distances import DistanceComputer
from repro.core.incremental import RandomBuildSeeds, StackedNSWBuildSeeds


@pytest.fixture()
def computer(small_data):
    return DistanceComputer(small_data)


def test_random_seeds_sample_from_inserted(computer):
    provider = RandomBuildSeeds(n_seeds=3)
    inserted = [5, 9, 14]
    rng = np.random.default_rng(0)
    seeds = provider.seeds_for(2, inserted, computer, rng)
    assert set(seeds) <= set(inserted)
    assert 1 <= len(seeds) <= 3


def test_sn_first_insert_becomes_entry(computer):
    provider = StackedNSWBuildSeeds(max_degree=8)
    provider.on_insert(42, computer, np.random.default_rng(0))
    assert provider.entry == 42


def test_sn_seeds_before_any_entry_fall_back(computer):
    provider = StackedNSWBuildSeeds(max_degree=8)
    seeds = provider.seeds_for(0, [7], computer, np.random.default_rng(0))
    assert seeds == [7]


def test_sn_layers_grow_with_insertions(computer):
    provider = StackedNSWBuildSeeds(max_degree=4)  # low M -> many layers
    rng = np.random.default_rng(1)
    for node in range(computer.n):
        provider.on_insert(node, computer, rng)
    assert len(provider.layers) >= 1
    # layer populations shrink going up (geometric sampling, Eq. 1)
    sizes = [len(layer) for layer in provider.layers]
    assert sizes == sorted(sizes, reverse=True)


def test_sn_descent_returns_inserted_node(computer):
    provider = StackedNSWBuildSeeds(max_degree=8)
    rng = np.random.default_rng(2)
    inserted = []
    for node in range(50):
        if inserted:
            seeds = provider.seeds_for(node, inserted, computer, rng)
            assert all(s in inserted for s in seeds)
        provider.on_insert(node, computer, rng)
        inserted.append(node)


def test_sn_seed_descent_charges_distance_calls(computer):
    provider = StackedNSWBuildSeeds(max_degree=4)
    rng = np.random.default_rng(3)
    for node in range(60):
        provider.on_insert(node, computer, rng)
    mark = computer.checkpoint()
    provider.seeds_for(61, list(range(60)), computer, rng)
    assert computer.since(mark) >= 1
