"""Round-trip tests for graph persistence."""

import numpy as np
import pytest

from repro.core.graph import Graph
from repro.core.serialization import load_graph, save_graph


def test_roundtrip(tmp_path, small_graph):
    _, graph = small_graph
    path = save_graph(graph, tmp_path / "g")
    loaded = load_graph(path)
    assert loaded.n == graph.n
    for node in range(graph.n):
        assert loaded.neighbors(node).tolist() == graph.neighbors(node).tolist()


def test_suffix_added(tmp_path):
    path = save_graph(Graph(3), tmp_path / "plain")
    assert path.suffix == ".npz"


def test_empty_graph_roundtrip(tmp_path):
    path = save_graph(Graph(5), tmp_path / "empty")
    loaded = load_graph(path)
    assert loaded.n == 5
    assert loaded.num_edges() == 0


def test_version_check(tmp_path):
    graph = Graph(2)
    graph.add_edge(0, 1)
    path = save_graph(graph, tmp_path / "g")
    data = dict(np.load(path))
    data["version"] = np.asarray([99])
    np.savez(path, **data)
    with pytest.raises(ValueError):
        load_graph(path)


def test_corrupt_indptr(tmp_path):
    graph = Graph(2)
    path = save_graph(graph, tmp_path / "g")
    data = dict(np.load(path))
    data["n"] = np.asarray([7])
    np.savez(path, **data)
    with pytest.raises(ValueError):
        load_graph(path)


def _tamper(path, **overrides):
    """Rewrite the saved payload with some arrays replaced."""
    data = dict(np.load(path))
    data.update(overrides)
    np.savez(path, **data)


def test_non_monotone_indptr_rejected(tmp_path):
    """Regression: a bit-flipped indptr used to be accepted silently."""
    graph = Graph(3)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    path = save_graph(graph, tmp_path / "g")
    _tamper(path, indptr=np.asarray([0, 2, 1, 2], dtype=np.int64))
    with pytest.raises(ValueError, match="monotonically"):
        load_graph(path)


def test_out_of_range_indices_rejected(tmp_path):
    """Regression: neighbor ids >= n used to crash later, at search time."""
    graph = Graph(3)
    graph.add_edge(0, 1)
    path = save_graph(graph, tmp_path / "g")
    _tamper(path, indices=np.asarray([7], dtype=np.int32))
    with pytest.raises(ValueError, match=r"\[0, 3\)"):
        load_graph(path)


def test_negative_indices_rejected(tmp_path):
    graph = Graph(3)
    graph.add_edge(0, 1)
    path = save_graph(graph, tmp_path / "g")
    _tamper(path, indices=np.asarray([-1], dtype=np.int32))
    with pytest.raises(ValueError):
        load_graph(path)


def test_indptr_indices_length_mismatch_rejected(tmp_path):
    graph = Graph(3)
    graph.add_edge(0, 1)
    path = save_graph(graph, tmp_path / "g")
    _tamper(path, indices=np.asarray([1, 2, 0], dtype=np.int32))
    with pytest.raises(ValueError, match="indices"):
        load_graph(path)


def test_vectorized_load_matches_original_adjacency(tmp_path):
    """The np.split-based rebuild must reproduce every neighbor list."""
    rng = np.random.default_rng(5)
    graph = Graph(40)
    for node in range(40):
        graph.set_neighbors(node, rng.choice(40, size=6, replace=False))
    loaded = load_graph(save_graph(graph, tmp_path / "g"))
    for node in range(40):
        assert loaded.neighbors(node).tolist() == graph.neighbors(node).tolist()
