"""Round-trip tests for graph persistence and the disk-tier format."""

import numpy as np
import pytest

from repro.core.graph import CSRGraph, Graph
from repro.core.serialization import (
    load_csr_graph,
    load_graph,
    open_disk_tier,
    save_disk_tier,
    save_graph,
)
from repro.summarization.quantization import ProductQuantizer


def test_roundtrip(tmp_path, small_graph):
    _, graph = small_graph
    path = save_graph(graph, tmp_path / "g")
    loaded = load_graph(path)
    assert loaded.n == graph.n
    for node in range(graph.n):
        assert loaded.neighbors(node).tolist() == graph.neighbors(node).tolist()


def test_suffix_added(tmp_path):
    path = save_graph(Graph(3), tmp_path / "plain")
    assert path.suffix == ".npz"


def test_empty_graph_roundtrip(tmp_path):
    path = save_graph(Graph(5), tmp_path / "empty")
    loaded = load_graph(path)
    assert loaded.n == 5
    assert loaded.num_edges() == 0


def test_version_check(tmp_path):
    graph = Graph(2)
    graph.add_edge(0, 1)
    path = save_graph(graph, tmp_path / "g")
    data = dict(np.load(path))
    data["version"] = np.asarray([99])
    np.savez(path, **data)
    with pytest.raises(ValueError):
        load_graph(path)


def test_corrupt_indptr(tmp_path):
    graph = Graph(2)
    path = save_graph(graph, tmp_path / "g")
    data = dict(np.load(path))
    data["n"] = np.asarray([7])
    np.savez(path, **data)
    with pytest.raises(ValueError):
        load_graph(path)


def _tamper(path, **overrides):
    """Rewrite the saved payload with some arrays replaced."""
    data = dict(np.load(path))
    data.update(overrides)
    np.savez(path, **data)


def test_non_monotone_indptr_rejected(tmp_path):
    """Regression: a bit-flipped indptr used to be accepted silently."""
    graph = Graph(3)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    path = save_graph(graph, tmp_path / "g")
    _tamper(path, indptr=np.asarray([0, 2, 1, 2], dtype=np.int64))
    with pytest.raises(ValueError, match="monotonically"):
        load_graph(path)


def test_out_of_range_indices_rejected(tmp_path):
    """Regression: neighbor ids >= n used to crash later, at search time."""
    graph = Graph(3)
    graph.add_edge(0, 1)
    path = save_graph(graph, tmp_path / "g")
    _tamper(path, indices=np.asarray([7], dtype=np.int32))
    with pytest.raises(ValueError, match=r"\[0, 3\)"):
        load_graph(path)


def test_negative_indices_rejected(tmp_path):
    graph = Graph(3)
    graph.add_edge(0, 1)
    path = save_graph(graph, tmp_path / "g")
    _tamper(path, indices=np.asarray([-1], dtype=np.int32))
    with pytest.raises(ValueError):
        load_graph(path)


def test_indptr_indices_length_mismatch_rejected(tmp_path):
    graph = Graph(3)
    graph.add_edge(0, 1)
    path = save_graph(graph, tmp_path / "g")
    _tamper(path, indices=np.asarray([1, 2, 0], dtype=np.int32))
    with pytest.raises(ValueError, match="indices"):
        load_graph(path)


def test_vectorized_load_matches_original_adjacency(tmp_path):
    """The np.split-based rebuild must reproduce every neighbor list."""
    rng = np.random.default_rng(5)
    graph = Graph(40)
    for node in range(40):
        graph.set_neighbors(node, rng.choice(40, size=6, replace=False))
    loaded = load_graph(save_graph(graph, tmp_path / "g"))
    for node in range(40):
        assert loaded.neighbors(node).tolist() == graph.neighbors(node).tolist()


# ----------------------------------------------------------------------
# format version 2: CSRGraph inputs, int64 neighbor ids, legacy errors
# ----------------------------------------------------------------------
def _random_graph(rng, n=30, degree=5):
    graph = Graph(n)
    for node in range(n):
        graph.set_neighbors(node, rng.choice(n, size=degree, replace=False))
    return graph


def test_int64_csr_roundtrip(tmp_path):
    """int64-offset CSR graphs survive save/load with dtype preserved."""
    rng = np.random.default_rng(11)
    graph = _random_graph(rng)
    csr32 = CSRGraph.from_graph(graph)
    csr64 = CSRGraph(csr32.indptr, csr32.indices.astype(np.int64), validate=False)
    path = save_graph(csr64, tmp_path / "g64")
    loaded = load_csr_graph(path)
    assert loaded.indices.dtype == np.int64
    assert np.array_equal(loaded.indptr, csr64.indptr)
    assert np.array_equal(loaded.indices, csr64.indices)
    # the adjacency-list loader agrees too
    materialized = load_graph(path)
    for node in range(graph.n):
        assert materialized.neighbors(node).tolist() == graph.neighbors(node).tolist()


def test_csr_graph_input_roundtrip(tmp_path):
    rng = np.random.default_rng(12)
    graph = _random_graph(rng)
    path = save_graph(CSRGraph.from_graph(graph), tmp_path / "csr")
    loaded = load_csr_graph(path)
    for node in range(graph.n):
        assert loaded.neighbors(node).tolist() == graph.neighbors(node).tolist()


def test_unversioned_file_clear_error(tmp_path):
    """A pre-header npz fails with a message naming the problem, not a
    silent misparse or a KeyError."""
    path = tmp_path / "legacy.npz"
    np.savez(path, n=np.asarray([2]), indptr=np.zeros(3, dtype=np.int64),
             indices=np.empty(0, dtype=np.int32))
    with pytest.raises(ValueError, match="unversioned"):
        load_graph(path)
    with pytest.raises(ValueError, match="unversioned"):
        load_csr_graph(path)


def test_non_npz_file_clear_error(tmp_path):
    path = tmp_path / "garbage.npz"
    path.write_bytes(b"this is not an npz archive")
    with pytest.raises(ValueError, match="not an .npz archive"):
        load_graph(path)


# ----------------------------------------------------------------------
# disk-tier directory format
# ----------------------------------------------------------------------
@pytest.fixture()
def tier_pieces():
    rng = np.random.default_rng(21)
    n, dim = 60, 8
    data = rng.normal(size=(n, dim)).astype(np.float32)
    graph = _random_graph(rng, n=n, degree=4)
    pq = ProductQuantizer.fit(data, n_subspaces=4, n_centroids=16, rng=rng)
    codes = pq.encode(data)
    return graph, data, pq, codes


def test_disk_tier_roundtrip(tmp_path, tier_pieces):
    graph, data, pq, codes = tier_pieces
    directory = save_disk_tier(tmp_path / "tier", graph, data, pq, codes)
    tier = open_disk_tier(directory)
    assert tier.graph.n == graph.n
    for node in range(graph.n):
        assert tier.graph.neighbors(node).tolist() == graph.neighbors(node).tolist()
    assert np.array_equal(np.asarray(tier.vectors), data)
    assert np.array_equal(tier.computer.codes, codes)
    assert tier.resident_bytes() > 0
    # graph + raw vectors live on disk, not in the resident footprint
    assert tier.file_bytes() > data.nbytes


def test_disk_tier_mmap_matches_ram_mode(tmp_path, tier_pieces):
    graph, data, pq, codes = tier_pieces
    directory = save_disk_tier(tmp_path / "tier", graph, data, pq, codes)
    mm = open_disk_tier(directory, mmap=True)
    ram = open_disk_tier(directory, mmap=False)
    assert isinstance(mm.vectors, np.memmap)
    assert not isinstance(ram.vectors, np.memmap)
    query = np.asarray(data[5], dtype=np.float64)
    ids = np.arange(graph.n)
    a = mm.computer.lut_to_ids(mm.computer.build_lut(query), ids)
    b = ram.computer.lut_to_ids(ram.computer.build_lut(query), ids)
    assert np.array_equal(a, b)
    assert np.array_equal(mm.computer.rerank(ids, query), ram.computer.rerank(ids, query))


def test_disk_tier_not_a_tier_error(tmp_path):
    with pytest.raises(ValueError, match="not a disk-tier directory"):
        open_disk_tier(tmp_path)


def test_disk_tier_version_check(tmp_path, tier_pieces):
    import json

    graph, data, pq, codes = tier_pieces
    directory = save_disk_tier(tmp_path / "tier", graph, data, pq, codes)
    meta_path = directory / "meta.json"
    meta = json.loads(meta_path.read_text())
    meta["version"] = 99
    meta_path.write_text(json.dumps(meta))
    with pytest.raises(ValueError, match="version 99"):
        open_disk_tier(directory)


def test_disk_tier_shape_mismatch_rejected(tmp_path, tier_pieces):
    graph, data, pq, codes = tier_pieces
    with pytest.raises(ValueError, match="codes"):
        save_disk_tier(tmp_path / "bad", graph, data, pq, codes[:-1])
    with pytest.raises(ValueError, match="data has shape"):
        save_disk_tier(tmp_path / "bad2", graph, data[:-1], pq, codes)


def test_disk_tier_index_payload(tmp_path, tier_pieces):
    graph, data, pq, codes = tier_pieces
    directory = save_disk_tier(
        tmp_path / "tier", graph, data, pq, codes, index={"tag": 42}
    )
    tier = open_disk_tier(directory)
    assert tier.meta["has_index"] is True
    assert tier.load_index() == {"tag": 42}
    bare = save_disk_tier(tmp_path / "bare", graph, data, pq, codes)
    with pytest.raises(FileNotFoundError):
        open_disk_tier(bare).load_index()
