"""Round-trip tests for graph persistence."""

import numpy as np
import pytest

from repro.core.graph import Graph
from repro.core.serialization import load_graph, save_graph


def test_roundtrip(tmp_path, small_graph):
    _, graph = small_graph
    path = save_graph(graph, tmp_path / "g")
    loaded = load_graph(path)
    assert loaded.n == graph.n
    for node in range(graph.n):
        assert loaded.neighbors(node).tolist() == graph.neighbors(node).tolist()


def test_suffix_added(tmp_path):
    path = save_graph(Graph(3), tmp_path / "plain")
    assert path.suffix == ".npz"


def test_empty_graph_roundtrip(tmp_path):
    path = save_graph(Graph(5), tmp_path / "empty")
    loaded = load_graph(path)
    assert loaded.n == 5
    assert loaded.num_edges() == 0


def test_version_check(tmp_path):
    graph = Graph(2)
    graph.add_edge(0, 1)
    path = save_graph(graph, tmp_path / "g")
    data = dict(np.load(path))
    data["version"] = np.asarray([99])
    np.savez(path, **data)
    with pytest.raises(ValueError):
        load_graph(path)


def test_corrupt_indptr(tmp_path):
    graph = Graph(2)
    path = save_graph(graph, tmp_path / "g")
    data = dict(np.load(path))
    data["n"] = np.asarray([7])
    np.savez(path, **data)
    with pytest.raises(ValueError):
        load_graph(path)
