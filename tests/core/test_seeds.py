"""Unit tests for the seven seed-selection strategies (Section 3.3)."""

import numpy as np
import pytest

from repro.core.seeds import (
    SEED_STRATEGIES,
    StackedNSWSeeds,
    find_medoid,
    get_seed_strategy,
)


@pytest.fixture()
def fitted(small_graph):
    computer, graph = small_graph
    rng = np.random.default_rng(42)
    strategies = {}
    for name in SEED_STRATEGIES:
        strategy = get_seed_strategy(name)
        strategy.fit(computer, graph, np.random.default_rng(42))
        strategies[name] = strategy
    return computer, graph, strategies


def test_get_seed_strategy_unknown():
    with pytest.raises(KeyError):
        get_seed_strategy("XX")


def test_get_seed_strategy_case_insensitive():
    assert get_seed_strategy("sn").name == "SN"


def test_find_medoid_is_central(small_computer):
    medoid = find_medoid(small_computer)
    centroid = small_computer.data.mean(axis=0)
    medoid_dist = np.linalg.norm(small_computer.data[medoid] - centroid)
    sample_dists = np.linalg.norm(small_computer.data - centroid, axis=1)
    assert medoid_dist == pytest.approx(sample_dists.min())


def test_all_strategies_return_valid_ids(fitted, tiny_queries):
    computer, graph, strategies = fitted
    rng = np.random.default_rng(0)
    for name, strategy in strategies.items():
        seeds = strategy.select(tiny_queries[0], rng)
        assert seeds.size >= 1, name
        assert seeds.min() >= 0 and seeds.max() < computer.n, name


def test_unfitted_strategies_raise(tiny_queries):
    for name in SEED_STRATEGIES:
        with pytest.raises(RuntimeError):
            get_seed_strategy(name).select(tiny_queries[0], np.random.default_rng(0))


def test_sf_fixed_across_queries(fitted, tiny_queries):
    _, _, strategies = fitted
    rng = np.random.default_rng(0)
    a = strategies["SF"].select(tiny_queries[0], rng)
    b = strategies["SF"].select(tiny_queries[1], rng)
    assert a.tolist() == b.tolist()


def test_md_includes_medoid(fitted, tiny_queries):
    computer, _, strategies = fitted
    seeds = strategies["MD"].select(tiny_queries[0], np.random.default_rng(0))
    assert find_medoid(computer) in seeds


def test_ks_varies_per_query(fitted, tiny_queries):
    _, _, strategies = fitted
    rng = np.random.default_rng(0)
    a = strategies["KS"].select(tiny_queries[0], rng)
    b = strategies["KS"].select(tiny_queries[0], rng)
    assert a.tolist() != b.tolist()


def test_ks_includes_medoid(fitted, tiny_queries):
    computer, _, strategies = fitted
    seeds = strategies["KS"].select(tiny_queries[0], np.random.default_rng(1))
    assert find_medoid(computer) in seeds


def test_kd_seeds_are_nearby(fitted):
    computer, _, strategies = fitted
    query = computer.data[17]
    seeds = strategies["KD"].select(query, np.random.default_rng(0))
    # the query is a dataset point: its own leaf should contain it
    assert 17 in seeds


def test_km_seeds_are_nearby(fitted):
    computer, _, strategies = fitted
    query = computer.data[23]
    seeds = strategies["KM"].select(query, np.random.default_rng(0))
    dists = computer.one_to_many(23, seeds)
    # at least one seed lies in the query's cluster neighborhood
    assert dists.min() < np.median(
        computer.one_to_many(23, np.arange(computer.n))
    )


def test_lsh_fallback_on_no_collision(fitted):
    computer, _, strategies = fitted
    far_query = np.full(computer.dim, 1e6, dtype=np.float32)
    seeds = strategies["LSH"].select(far_query, np.random.default_rng(0))
    assert seeds.size >= 1


def test_sn_builds_layers(fitted):
    _, _, strategies = fitted
    sn = strategies["SN"]
    assert isinstance(sn, StackedNSWSeeds)
    # 300 points with M=16: expect at least one hierarchical layer
    assert len(sn._layers) >= 1


def test_sn_seeds_include_graph_neighbors(fitted, tiny_queries):
    _, graph, strategies = fitted
    seeds = strategies["SN"].select(tiny_queries[0], np.random.default_rng(0))
    assert seeds.size >= 1


def test_memory_bytes_nonnegative(fitted):
    _, _, strategies = fitted
    for name, strategy in strategies.items():
        assert strategy.memory_bytes() >= 0, name
    # structure-based strategies actually hold memory
    for name in ("KD", "KM", "LSH", "SN"):
        assert strategies[name].memory_bytes() > 0, name


def test_strategy_params_validation():
    with pytest.raises(ValueError):
        get_seed_strategy("KS", n_seeds=0)
    with pytest.raises(ValueError):
        get_seed_strategy("SN", max_degree=1)
