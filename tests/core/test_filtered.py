"""Tests for the filtered-search layer: strategies, padding, determinism.

The load-bearing contracts:

* every strategy returns exactly ``k`` answer slots, none of which violate
  the query's predicate (real answers pass, shortfall slots are sentinel
  padding);
* the inline strategy's traversal is predicate-invariant (identical hops
  and distance calls to the unfiltered search);
* answers, distance counts, and hop counts are bit-identical across
  kernel backends and worker counts;
* filtered ground truth is deterministic across processes (PR 5
  CRC-seeding discipline).
"""

import numpy as np
import pytest

from repro.core.filtered import (
    FILTER_STRATEGIES,
    FilteredIndex,
    acorn_beam_search,
    rwalks_augment,
)
from repro.datasets.attributes import point_attributes, query_predicates
from repro.datasets.synthetic import generate
from repro.eval.metrics import filtered_ground_truth, recall
from repro.eval.parallel import run_batch
from repro.indexes import create_index


N, N_QUERIES, K, WIDTH = 600, 10, 10, 48


@pytest.fixture(scope="module")
def world():
    data = generate("sift", N + N_QUERIES, seed=2)
    queries = data[N:]
    data = data[:N]
    attrs = point_attributes("sift", N, seed=2)
    inner = create_index("HNSW", seed=7).build(data)
    return data, queries, attrs, inner


def _filtered(world, spec, strategy):
    data, queries, attrs, inner = world
    preds = query_predicates("sift", N_QUERIES, spec, seed=2)
    fi = FilteredIndex(inner, attrs, preds, strategy=strategy)
    allow = [p.mask(attrs) for p in preds]
    return fi, preds, allow


@pytest.mark.parametrize("strategy", FILTER_STRATEGIES)
@pytest.mark.parametrize("spec", [0.15, 0.6])
def test_answers_satisfy_predicate_and_pad_to_k(world, strategy, spec):
    data, queries, attrs, inner = world
    fi, preds, allow = _filtered(world, spec, strategy)
    for j, query in enumerate(queries):
        fi.seed_query_rng(j)
        result = fi.search(query, k=K, beam_width=WIDTH)
        assert result.ids.shape == (K,)
        assert result.dists.shape == (K,)
        valid = result.ids[result.ids >= 0]
        assert valid.size == result.n_valid
        assert allow[j][valid].all(), (
            f"{strategy}: answer violates predicate at query {j}"
        )
        # padding, if any, sits at the tail with inf distances
        assert np.all(np.isinf(result.dists[result.n_valid:]))
        assert np.all(np.diff(result.dists[: result.n_valid]) >= 0)


def test_inline_traversal_is_predicate_invariant(world):
    """The inline strategy's mask touches only beam finalization: hops and
    distance calls equal the unfiltered search's exactly."""
    data, queries, attrs, inner = world
    fi, _, _ = _filtered(world, 0.3, "inline")
    for j, query in enumerate(queries):
        inner.seed_query_rng(j)
        plain = inner.search(query, k=K, beam_width=WIDTH)
        fi.seed_query_rng(j)
        masked = fi.search(query, k=K, beam_width=WIDTH)
        assert masked.hops == plain.hops
        assert masked.distance_calls == plain.distance_calls


@pytest.mark.parametrize("strategy", FILTER_STRATEGIES)
def test_bit_identical_across_kernels_and_workers(world, strategy):
    data, queries, attrs, inner = world
    fi, _, _ = _filtered(world, 0.25, strategy)
    runs = [
        run_batch(fi, queries, k=K, beam_width=WIDTH, n_workers=1, kernel="python"),
        run_batch(fi, queries, k=K, beam_width=WIDTH, n_workers=1, kernel="scalar"),
        run_batch(fi, queries, k=K, beam_width=WIDTH, n_workers=2, kernel="python"),
        run_batch(fi, queries, k=K, beam_width=WIDTH, n_workers=2, kernel="scalar"),
    ]
    base = runs[0]
    for other in runs[1:]:
        for a, b in zip(base.outcomes, other.outcomes):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.dists, b.dists)
            assert a.distance_calls == b.distance_calls
            assert a.hops == b.hops


def test_inline_recall_near_exact_at_permissive_specificity(world):
    """ISSUE acceptance: at specificity >= 0.5 the inline strategy loses
    < 2 recall points vs filtered brute force at a wide beam."""
    data, queries, attrs, inner = world
    fi, preds, allow = _filtered(world, 0.6, "inline")
    truth, _ = filtered_ground_truth(data, queries, K, allow)
    result = run_batch(fi, queries, k=K, beam_width=120, n_workers=1)
    recalls = [recall(o.ids, truth[j]) for j, o in enumerate(result.outcomes)]
    assert float(np.mean(recalls)) > 0.98


def test_acorn_beats_inline_at_selective_specificity(world):
    """The point of multi-hop expansion: when the predicate filters out
    most of the graph, routing through failing nodes reaches passing
    points the drained inline beam misses."""
    data, queries, attrs, inner = world
    spec = 0.05
    fi_inline, preds, allow = _filtered(world, spec, "inline")
    fi_acorn, _, _ = _filtered(world, spec, "acorn")
    truth, _ = filtered_ground_truth(data, queries, K, allow)
    r_inline = run_batch(fi_inline, queries, k=K, beam_width=WIDTH, n_workers=1)
    r_acorn = run_batch(fi_acorn, queries, k=K, beam_width=WIDTH, n_workers=1)
    inline_rec = np.mean(
        [recall(o.ids, truth[j]) for j, o in enumerate(r_inline.outcomes)]
    )
    acorn_rec = np.mean(
        [recall(o.ids, truth[j]) for j, o in enumerate(r_acorn.outcomes)]
    )
    assert acorn_rec >= inline_rec


def test_filtered_index_validation(world):
    data, queries, attrs, inner = world
    preds = query_predicates("sift", N_QUERIES, 0.5, seed=2)
    with pytest.raises(ValueError, match="strategy"):
        FilteredIndex(inner, attrs, preds, strategy="nope")
    short_attrs = point_attributes("sift", N - 1, seed=2)
    with pytest.raises(ValueError, match="cover"):
        FilteredIndex(inner, short_attrs, preds)
    unbuilt = create_index("HNSW", seed=7)
    with pytest.raises(RuntimeError, match="built"):
        FilteredIndex(unbuilt, attrs, preds)


def test_acorn_pads_when_nothing_passes(world):
    data, queries, attrs, inner = world
    allow = np.zeros(N, dtype=bool)
    inner.seed_query_rng(0)
    seeds = inner._query_seeds(queries[0])
    result = acorn_beam_search(
        inner.graph, inner.computer, queries[0], seeds, K, WIDTH, allow
    )
    assert result.ids.shape == (K,)
    assert result.n_valid == 0
    assert np.all(result.ids == -1)


def test_acorn_validation(world):
    data, queries, attrs, inner = world
    allow = np.ones(N, dtype=bool)
    with pytest.raises(ValueError, match="beam_width"):
        acorn_beam_search(
            inner.graph, inner.computer, queries[0], [0], 5, 3, allow
        )
    with pytest.raises(ValueError, match="expansion"):
        acorn_beam_search(
            inner.graph, inner.computer, queries[0], [0], 2, 8, allow,
            expansion=0,
        )


def test_rwalks_augment_properties(world):
    data, queries, attrs, inner = world
    augmented = rwalks_augment(
        inner.graph, attrs.labels, n_walks=4, walk_len=3, extra_degree=3,
        seed=7,
    )
    base_degrees = inner.graph.degrees()
    aug_degrees = augmented.degrees()
    # edges are only added, never removed, and growth is bounded
    assert np.all(aug_degrees >= base_degrees)
    assert np.all(aug_degrees <= base_degrees + 3)
    # every added edge links same-label nodes
    for node in range(0, N, 17):
        base = set(inner.graph.neighbors(node).tolist())
        added = [
            v for v in augmented.neighbors(node).tolist() if v not in base
        ]
        for v in added:
            assert attrs.labels[v] == attrs.labels[node]
    # deterministic: same inputs, same graph bytes
    again = rwalks_augment(
        inner.graph, attrs.labels, n_walks=4, walk_len=3, extra_degree=3,
        seed=7,
    )
    for node in range(N):
        assert np.array_equal(augmented.neighbors(node), again.neighbors(node))
    # the base graph is untouched
    assert np.array_equal(inner.graph.degrees(), base_degrees)


def test_rwalks_augment_validation(world):
    data, queries, attrs, inner = world
    with pytest.raises(ValueError, match="n_walks"):
        rwalks_augment(inner.graph, attrs.labels, n_walks=0)
    with pytest.raises(ValueError, match="extra_degree"):
        rwalks_augment(inner.graph, attrs.labels, extra_degree=-1)
    with pytest.raises(ValueError, match="labels"):
        rwalks_augment(inner.graph, attrs.labels[:-1])


def test_filtered_ground_truth_contract(world):
    data, queries, attrs, inner = world
    preds = query_predicates("sift", N_QUERIES, 0.2, seed=2)
    allow = [p.mask(attrs) for p in preds]
    ids, dists = filtered_ground_truth(data, queries, K, allow)
    assert ids.shape == (N_QUERIES, K)
    assert dists.shape == (N_QUERIES, K)
    for j in range(N_QUERIES):
        valid = ids[j][ids[j] >= 0]
        assert allow[j][valid].all()
        n_valid = valid.size
        assert np.all(np.isinf(dists[j, n_valid:]))
        assert np.all(np.diff(dists[j, :n_valid]) >= 0)
    # a query with no allowed points is all padding
    empty_ids, empty_dists = filtered_ground_truth(
        data, queries[:1], K, [np.zeros(N, dtype=bool)]
    )
    assert np.all(empty_ids == -1)
    assert np.all(np.isinf(empty_dists))
    assert recall(np.array([-1] * K), empty_ids[0]) == 1.0


def test_filtered_ground_truth_validation(world):
    data, queries, attrs, inner = world
    with pytest.raises(ValueError, match="disagree"):
        filtered_ground_truth(data, queries, K, [np.ones(N, dtype=bool)])
    with pytest.raises(ValueError, match="shape"):
        filtered_ground_truth(
            data, queries[:1], K, [np.ones(N - 1, dtype=bool)]
        )


def test_filtered_ground_truth_matches_bruteforce_subset(world):
    data, queries, attrs, inner = world
    from repro.eval.metrics import ground_truth

    mask = attrs.values < 0.5
    sub = np.flatnonzero(mask)
    sub_ids, sub_dists = ground_truth(data[sub], queries, K)
    ids, dists = filtered_ground_truth(
        data, queries, K, [mask] * N_QUERIES
    )
    for j in range(N_QUERIES):
        assert np.array_equal(ids[j], sub[sub_ids[j]])
        assert np.allclose(dists[j], sub_dists[j])


def test_filtered_ground_truth_stable_across_processes():
    """PR 5 discipline, extended to the filtered workload: attribute masks
    and ground truth must be bit-identical at any PYTHONHASHSEED."""
    import os
    import pathlib
    import subprocess
    import sys

    src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
    script = (
        "import numpy as np;"
        "from repro.datasets.synthetic import generate;"
        "from repro.datasets.attributes import point_attributes, query_predicates;"
        "from repro.eval.metrics import filtered_ground_truth;"
        "data = generate('sift', 120, seed=3);"
        "attrs = point_attributes('sift', 100, seed=3);"
        "preds = query_predicates('sift', 5, 0.3, seed=3);"
        "ids, dists = filtered_ground_truth("
        "data[:100], data[100:105], 8, [p.mask(attrs) for p in preds]);"
        "print(int(ids.sum()), float(np.where(np.isinf(dists), -1, dists).sum()))"
    )
    outputs = set()
    for hash_seed in ("0", "1", "42"):
        env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED=hash_seed)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.add(proc.stdout.strip())
    assert len(outputs) == 1, f"filtered GT varies with PYTHONHASHSEED: {outputs}"
