"""Beyond-RAM tier: two-phase PQ search, mmap graphs, deterministic counters.

The disk tier's contract has three legs, each pinned here:

* **equivalence** — the vectorized kernel path (``batch_search_pq``) is
  bit-identical to the scalar reference (``pq_beam_search``) in answers and
  in all three counters, at any chunk size and backend; mmap-backed and
  in-memory tiers agree bitwise;
* **recall parity** — PQ-guided traversal plus exact re-rank stays within a
  fixed tolerance of the exact in-memory beam search;
* **determinism** — ``approx_calls``/``page_reads`` are identical at any
  worker count, because they are logical counters, not OS page faults.
"""

import numpy as np
import pytest

from repro.core.beam_search import beam_search, pq_beam_search
from repro.core.distances import DistanceComputer, PQDistanceComputer
from repro.core.graph import CSRGraph, Graph
from repro.core.kernels import batch_search_pq
from repro.core.serialization import open_disk_tier, save_disk_tier
from repro.eval.metrics import recall
from repro.eval.parallel import run_batch
from repro.indexes.base import load_disk_index
from repro.indexes.hnsw import HNSWIndex
from repro.indexes.vamana import VamanaIndex
from repro.summarization.quantization import ProductQuantizer

N, DIM = 400, 16
K, WIDTH = 10, 40


@pytest.fixture(scope="module")
def pieces(tmp_path_factory):
    rng = np.random.default_rng(9)
    data = rng.normal(size=(N, DIM)).astype(np.float32)
    graph = Graph(N)
    for node in range(N):
        graph.set_neighbors(node, rng.choice(N, size=10, replace=False))
    pq = ProductQuantizer.fit(data, n_subspaces=8, n_centroids=32, rng=rng)
    codes = pq.encode(data)
    directory = save_disk_tier(
        tmp_path_factory.mktemp("tier") / "t", graph, data, pq, codes
    )
    queries = rng.normal(size=(16, DIM))
    seeds = [
        np.random.default_rng((41, j)).choice(N, size=4, replace=False)
        for j in range(queries.shape[0])
    ]
    return directory, data, graph, queries, seeds


def _fresh(directory, mmap=True):
    return open_disk_tier(directory, mmap=mmap)


# ----------------------------------------------------------------------
# equivalence: scalar vs kernel, mmap vs RAM
# ----------------------------------------------------------------------
def test_kernel_bit_identical_to_scalar_including_counters(pieces):
    directory, _, _, queries, seeds = pieces
    tier = _fresh(directory)
    scalar = [
        pq_beam_search(tier.graph, tier.computer, q, s, K, WIDTH)
        for q, s in zip(queries, seeds)
    ]
    for backend in ("python", "scalar"):
        for chunk_size in (3, 256):
            other = _fresh(directory)
            batched = batch_search_pq(
                other.graph, other.computer, queries, seeds, K, WIDTH,
                backend=backend, chunk_size=chunk_size,
            )
            for a, b in zip(scalar, batched):
                assert np.array_equal(a.ids, b.ids)
                assert np.array_equal(a.dists, b.dists)
                assert a.distance_calls == b.distance_calls
                assert a.hops == b.hops
                assert a.approx_calls == b.approx_calls
                assert a.page_reads == b.page_reads
            # global counters reconcile exactly with the per-query sums
            assert other.computer.checkpoint() == (
                sum(r.distance_calls for r in batched),
                sum(r.approx_calls for r in batched),
                sum(r.page_reads for r in batched),
            )


def test_mmap_tier_bit_identical_to_ram_tier(pieces):
    directory, _, _, queries, seeds = pieces
    mm, ram = _fresh(directory, mmap=True), _fresh(directory, mmap=False)
    for q, s in zip(queries, seeds):
        a = pq_beam_search(mm.graph, mm.computer, q, s, K, WIDTH)
        b = pq_beam_search(ram.graph, ram.computer, q, s, K, WIDTH)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.dists, b.dists)
        assert (a.distance_calls, a.approx_calls, a.page_reads) == (
            b.distance_calls, b.approx_calls, b.page_reads
        )


def test_csr_mmap_matches_in_memory_graph(pieces):
    directory, _, graph, _, _ = pieces
    tier = _fresh(directory)
    csr = CSRGraph.from_graph(graph)
    assert tier.graph.n == csr.n
    assert np.array_equal(np.asarray(tier.graph.indptr), csr.indptr)
    for node in (0, 7, N - 1):
        assert tier.graph.neighbors(node).tolist() == csr.neighbors(node).tolist()


def test_csr_mmap_rejects_wrong_indptr_dtype(tmp_path):
    np.save(tmp_path / "indptr.npy", np.asarray([0, 1], dtype=np.int32))
    np.save(tmp_path / "indices.npy", np.asarray([0], dtype=np.int64))
    with pytest.raises(ValueError, match="int64"):
        CSRGraph.mmap(tmp_path / "indptr.npy", tmp_path / "indices.npy")


def test_csr_mmap_rejects_inconsistent_offsets(tmp_path):
    np.save(tmp_path / "indptr.npy", np.asarray([0, 5], dtype=np.int64))
    np.save(tmp_path / "indices.npy", np.asarray([0], dtype=np.int64))
    with pytest.raises(ValueError, match="corrupt"):
        CSRGraph.mmap(tmp_path / "indptr.npy", tmp_path / "indices.npy")


# ----------------------------------------------------------------------
# accounting semantics
# ----------------------------------------------------------------------
def test_counter_semantics(pieces):
    directory, _, _, queries, seeds = pieces
    tier = _fresh(directory)
    result = pq_beam_search(tier.graph, tier.computer, queries[0], seeds[0], K, WIDTH)
    # exact calls = vector rows re-ranked = final beam size (here, full beam)
    assert result.distance_calls == WIDTH
    # logical page reads = adjacency rows expanded + vector rows re-ranked
    assert result.page_reads == result.hops + result.distance_calls
    # every scored code costs one approx call; seeds are scored too
    assert result.approx_calls >= len(seeds[0])
    assert result.ids.size == K
    assert np.all(np.diff(result.dists) >= 0)


def test_rerank_distances_are_exact(pieces):
    directory, data, _, queries, seeds = pieces
    tier = _fresh(directory)
    result = pq_beam_search(tier.graph, tier.computer, queries[0], seeds[0], K, WIDTH)
    expected = np.linalg.norm(
        data[result.ids].astype(np.float64) - queries[0], axis=1
    )
    assert np.allclose(result.dists, expected, rtol=0, atol=1e-10)


def test_pq_computer_validation(pieces):
    directory, data, _, _, _ = pieces
    tier = _fresh(directory)
    pq = tier.computer.pq
    with pytest.raises(ValueError, match="codes"):
        PQDistanceComputer(pq, tier.computer.codes[:, :-1], data)
    with pytest.raises(ValueError, match="vectors"):
        PQDistanceComputer(pq, tier.computer.codes, data[:-1])


# ----------------------------------------------------------------------
# recall parity: PQ + exact re-rank vs the exact in-memory path
# ----------------------------------------------------------------------
RECALL_TOLERANCE = 0.15


def test_recall_parity_with_exact_beam_search(pieces):
    directory, data, graph, queries, seeds = pieces
    tier = _fresh(directory)
    computer = DistanceComputer(data)
    csr = CSRGraph.from_graph(graph)
    disk_recalls, exact_recalls = [], []
    for q, s in zip(queries, seeds):
        truth = computer.exact_knn(q, K)[0]
        disk = pq_beam_search(tier.graph, tier.computer, q, s, K, WIDTH)
        exact = beam_search(csr, computer, q, s, K, WIDTH)
        disk_recalls.append(recall(disk.ids, truth))
        exact_recalls.append(recall(exact.ids, truth))
    assert np.mean(disk_recalls) >= np.mean(exact_recalls) - RECALL_TOLERANCE


# ----------------------------------------------------------------------
# index integration: save/load, worker determinism, capability gating
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def vamana_tier(tmp_path_factory):
    rng = np.random.default_rng(31)
    data = rng.normal(size=(300, DIM)).astype(np.float32)
    index = VamanaIndex(seed=5).build(data)
    directory = index.to_disk_tier(
        tmp_path_factory.mktemp("vamana") / "tier",
        pq_subspaces=8, pq_centroids=32,
    )
    queries = rng.normal(size=(12, DIM))
    return directory, data, index, queries


def test_load_disk_index_roundtrip(vamana_tier):
    directory, _, ram_index, queries = vamana_tier
    disk = load_disk_index(directory)
    assert disk.name == ram_index.name
    assert disk.seed == ram_index.seed
    result = disk.search(queries[0], k=K, beam_width=WIDTH)
    assert result.ids.size == K
    assert result.page_reads > 0 and result.approx_calls > 0


def test_disk_index_recall_close_to_ram_index(vamana_tier):
    directory, data, ram_index, queries = vamana_tier
    computer = DistanceComputer(data)
    disk = load_disk_index(directory)
    disk_recalls, ram_recalls = [], []
    for j, q in enumerate(queries):
        truth = computer.exact_knn(q, K)[0]
        disk.seed_query_rng(j)
        disk_recalls.append(recall(disk.search(q, K, WIDTH).ids, truth))
        ram_index.seed_query_rng(j)
        ram_recalls.append(recall(ram_index.search(q, K, WIDTH).ids, truth))
    assert np.mean(disk_recalls) >= np.mean(ram_recalls) - RECALL_TOLERANCE


def test_worker_count_and_backend_determinism(vamana_tier):
    directory, _, _, queries = vamana_tier
    base = run_batch(
        load_disk_index(directory), queries, k=K, beam_width=WIDTH,
        n_workers=1, kernel="python",
    )
    for n_workers, kernel in ((1, "scalar"), (2, "python"), (3, "scalar")):
        other = run_batch(
            load_disk_index(directory), queries, k=K, beam_width=WIDTH,
            n_workers=n_workers, kernel=kernel,
        )
        for a, b in zip(base.outcomes, other.outcomes):
            assert a.query_index == b.query_index
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.dists, b.dists)
            assert a.distance_calls == b.distance_calls
            assert a.hops == b.hops
            assert a.approx_calls == b.approx_calls
            assert a.page_reads == b.page_reads
        assert other.total_approx_calls == base.total_approx_calls
        assert other.total_page_reads == base.total_page_reads


def test_non_capable_index_refuses_disk_tier(vamana_tier):
    directory, _, _, _ = vamana_tier
    rng = np.random.default_rng(1)
    hnsw = HNSWIndex(seed=1).build(rng.normal(size=(50, DIM)).astype(np.float32))
    with pytest.raises(NotImplementedError, match="disk tier"):
        hnsw.to_disk_tier("/nonexistent-never-written")
    tier = open_disk_tier(directory)
    with pytest.raises(NotImplementedError, match="disk tier"):
        hnsw.attach_disk_tier(tier)
