"""Tests for the ParlayANN-style batched II builder and its kernel.

The load-bearing guarantee: for a fixed rng, the batched build produces a
bit-identical graph and an identical aggregate distance-call count at every
worker count (1 = in-process round loop, >1 = shared-memory process pool).
"""

import numpy as np
import pytest

from repro.core.batch_build import build_ii_graph_batched, plan_rounds
from repro.core.beam_search import batch_point_beam_search, beam_search
from repro.core.distances import DistanceComputer
from repro.core.graph import CSRGraph
from repro.core.incremental import (
    RandomBuildSeeds,
    StackedNSWBuildSeeds,
    build_ii_graph,
)


@pytest.fixture()
def computer(small_data):
    return DistanceComputer(small_data)


def _adjacency(graph):
    return [graph.neighbors(node).tolist() for node in range(graph.n)]


# ----------------------------------------------------------------------
# round planning
# ----------------------------------------------------------------------
def test_plan_rounds_prefix_doubling():
    assert plan_rounds(9) == [(1, 2), (2, 4), (4, 8), (8, 9)]


def test_plan_rounds_covers_all_ranks_once():
    rounds = plan_rounds(1000)
    ranks = [r for start, stop in rounds for r in range(start, stop)]
    assert ranks == list(range(1, 1000))


def test_plan_rounds_cap():
    rounds = plan_rounds(20, max_round_size=4)
    assert rounds == [(1, 2), (2, 4), (4, 8), (8, 12), (12, 16), (16, 20)]
    assert max(stop - start for start, stop in rounds) <= 4


def test_plan_rounds_trivial():
    assert plan_rounds(0) == []
    assert plan_rounds(1) == []
    assert plan_rounds(2) == [(1, 2)]


def test_plan_rounds_rejects_bad_cap():
    with pytest.raises(ValueError):
        plan_rounds(10, max_round_size=0)


# ----------------------------------------------------------------------
# the determinism guarantee (acceptance criterion)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "provider",
    [
        lambda: RandomBuildSeeds(n_seeds=4),
        lambda: StackedNSWBuildSeeds(max_degree=8),
    ],
    ids=["KS", "SN"],
)
def test_batched_build_bit_identical_across_worker_counts(small_data, provider):
    """Identical edges AND identical distance-call totals for 1/2/4 workers."""
    builds = {}
    for workers in (1, 2, 4):
        computer = DistanceComputer(small_data)
        result = build_ii_graph_batched(
            computer,
            max_degree=8,
            beam_width=24,
            rng=np.random.default_rng(3),
            build_seeds=provider(),
            n_workers=workers,
            min_parallel_round=2,  # force pool use on this small dataset
        )
        builds[workers] = (_adjacency(result.graph), result.distance_calls)
    adjacency_1, calls_1 = builds[1]
    for workers in (2, 4):
        adjacency_w, calls_w = builds[workers]
        assert adjacency_w == adjacency_1, f"edges differ at {workers} workers"
        assert calls_w == calls_1, f"distance calls differ at {workers} workers"


def test_batched_build_deterministic_with_round_cap(small_data):
    reference = None
    for workers in (1, 2):
        computer = DistanceComputer(small_data)
        result = build_ii_graph_batched(
            computer,
            max_degree=6,
            beam_width=16,
            rng=np.random.default_rng(5),
            n_workers=workers,
            max_round_size=32,
            min_parallel_round=2,
        )
        state = (_adjacency(result.graph), result.distance_calls)
        if reference is None:
            reference = state
        assert state == reference


def test_build_ii_graph_n_workers_delegates(small_data):
    """build_ii_graph(n_workers=1) runs the batched round loop."""
    computer_a = DistanceComputer(small_data)
    via_wrapper = build_ii_graph(
        computer_a, max_degree=8, beam_width=24,
        rng=np.random.default_rng(3), n_workers=1,
    )
    computer_b = DistanceComputer(small_data)
    direct = build_ii_graph_batched(
        computer_b, max_degree=8, beam_width=24,
        rng=np.random.default_rng(3), n_workers=1,
    )
    assert _adjacency(via_wrapper.graph) == _adjacency(direct.graph)
    assert via_wrapper.distance_calls == direct.distance_calls


def test_sequential_protocol_unchanged_by_default(small_data):
    """n_workers=None must keep the paper's one-at-a-time protocol."""
    computer_a = DistanceComputer(small_data)
    sequential = build_ii_graph(
        computer_a, max_degree=8, beam_width=24, rng=np.random.default_rng(3)
    )
    computer_b = DistanceComputer(small_data)
    batched = build_ii_graph(
        computer_b, max_degree=8, beam_width=24,
        rng=np.random.default_rng(3), n_workers=1,
    )
    # the two protocols are intentionally different graphs (a round's
    # searches cannot see same-round edges) — guard against silently
    # replacing one with the other
    assert _adjacency(sequential.graph) != _adjacency(batched.graph)


# ----------------------------------------------------------------------
# build semantics and quality
# ----------------------------------------------------------------------
def test_batched_degree_cap_respected(computer):
    result = build_ii_graph_batched(
        computer, max_degree=6, beam_width=24, rng=np.random.default_rng(0)
    )
    assert result.graph.degrees().max() <= 6


def test_batched_nond_overflow_disabled_grows_degrees(computer):
    uncapped = build_ii_graph_batched(
        computer, max_degree=6, beam_width=24, diversify="nond",
        rng=np.random.default_rng(0), prune_overflow=False,
    )
    assert uncapped.graph.degrees().max() > 6


def test_batched_prune_stats_populated(computer):
    result = build_ii_graph_batched(
        computer, max_degree=6, beam_width=24, diversify="rnd",
        rng=np.random.default_rng(0),
    )
    assert result.prune_stats.examined > 0


def test_batched_graph_is_searchable(computer, tiny_queries):
    result = build_ii_graph_batched(
        computer, max_degree=8, beam_width=24, rng=np.random.default_rng(0)
    )
    hits = 0
    for q in tiny_queries:
        gt, _ = computer.exact_knn(q, 5)
        res = beam_search(result.graph, computer, q, [0], k=5, beam_width=40)
        hits += len(set(gt.tolist()) & set(res.ids.tolist()))
    assert hits / (5 * len(tiny_queries)) > 0.8


def test_batched_sn_provider_maintains_layers(computer):
    provider = StackedNSWBuildSeeds(max_degree=8)
    build_ii_graph_batched(
        computer, max_degree=8, beam_width=16,
        rng=np.random.default_rng(2), build_seeds=provider,
    )
    assert provider.entry is not None


def test_batched_single_point_dataset():
    computer = DistanceComputer(np.zeros((1, 4), dtype=np.float32))
    result = build_ii_graph_batched(computer, max_degree=4, beam_width=8)
    assert result.graph.n == 1
    assert result.graph.degree(0) == 0


def test_batched_empty_dataset():
    computer = DistanceComputer(np.empty((0, 4), dtype=np.float32))
    result = build_ii_graph_batched(computer, max_degree=4, beam_width=8)
    assert result.graph.n == 0
    assert result.distance_calls == 0


def test_batched_two_point_dataset():
    computer = DistanceComputer(
        np.array([[0.0, 0.0], [1.0, 1.0]], dtype=np.float32)
    )
    result = build_ii_graph_batched(computer, max_degree=4, beam_width=8)
    assert result.graph.degree(0) + result.graph.degree(1) >= 2


def test_batched_rejects_bad_worker_count(computer):
    with pytest.raises(ValueError):
        build_ii_graph_batched(computer, n_workers=0)


# ----------------------------------------------------------------------
# the batched one-to-many kernel
# ----------------------------------------------------------------------
def test_batch_kernel_matches_per_node_beam_search(small_graph):
    """Same ids and distance accounting as beam_search on the same graph."""
    computer, graph = small_graph
    points = [5, 17, 101]
    seeds = [[0, 3], [0, 3], [0, 3]]
    batch = batch_point_beam_search(graph, computer, points, seeds, k=8, beam_width=16)
    for point, per_seed, res in zip(points, seeds, batch):
        solo = beam_search(
            graph, computer, computer.data[point], per_seed, k=8, beam_width=16
        )
        assert res.ids.tolist() == solo.ids.tolist()
        assert res.distance_calls == solo.distance_calls
        assert res.hops == solo.hops


def test_batch_kernel_identical_on_graph_and_csr_view(small_graph):
    computer, graph = small_graph
    csr = CSRGraph.from_graph(graph)
    points = [9, 42]
    seeds = [[1], [1]]
    a = batch_point_beam_search(graph, computer, points, seeds, k=5, beam_width=12)
    b = batch_point_beam_search(csr, computer, points, seeds, k=5, beam_width=12)
    for res_a, res_b in zip(a, b):
        assert res_a.ids.tolist() == res_b.ids.tolist()
        assert res_a.dists.tolist() == res_b.dists.tolist()
        assert res_a.distance_calls == res_b.distance_calls


def test_batch_kernel_validates_beam_width(small_graph):
    computer, graph = small_graph
    with pytest.raises(ValueError):
        batch_point_beam_search(graph, computer, [1], [[0]], k=8, beam_width=4)


def test_batch_kernel_requires_seeds(small_graph):
    computer, graph = small_graph
    with pytest.raises(ValueError):
        batch_point_beam_search(graph, computer, [1], [[]], k=2, beam_width=4)


# ----------------------------------------------------------------------
# index wiring
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", ["NSW", "HNSW", "LSHAPG"])
def test_index_n_workers_builds_identical_graphs(small_data, method):
    from repro.indexes import create_index

    graphs = {}
    for workers in (1, 2):
        index = create_index(method, seed=0, n_workers=workers)
        index.build(small_data)
        graphs[workers] = (
            _adjacency(index.graph),
            index.build_report.distance_calls,
        )
    assert graphs[1] == graphs[2]
