"""Unit tests for the II builder apparatus and its build seed providers."""

import numpy as np
import pytest

from repro.core.beam_search import beam_search
from repro.core.distances import DistanceComputer
from repro.core.incremental import (
    RandomBuildSeeds,
    StackedNSWBuildSeeds,
    build_ii_graph,
)


@pytest.fixture()
def computer(small_data):
    return DistanceComputer(small_data)


def test_build_produces_connected_enough_graph(computer):
    result = build_ii_graph(
        computer, max_degree=8, beam_width=24, rng=np.random.default_rng(0)
    )
    graph = result.graph
    assert graph.n == computer.n
    # II graphs with bidirectional edges should reach nearly all nodes
    reachable = graph.reachable_from(0).sum()
    assert reachable > 0.95 * computer.n


def test_degree_cap_respected(computer):
    result = build_ii_graph(
        computer, max_degree=6, beam_width=24, rng=np.random.default_rng(0)
    )
    assert result.graph.degrees().max() <= 6


def test_nond_overflow_disabled_grows_degrees(computer):
    capped = build_ii_graph(
        computer, max_degree=6, beam_width=24, diversify="nond",
        rng=np.random.default_rng(0),
    )
    uncapped = build_ii_graph(
        computer, max_degree=6, beam_width=24, diversify="nond",
        rng=np.random.default_rng(0), prune_overflow=False,
    )
    assert uncapped.graph.degrees().max() > capped.graph.degrees().max()


def test_distance_calls_recorded(computer):
    result = build_ii_graph(
        computer, max_degree=6, beam_width=16, rng=np.random.default_rng(0)
    )
    assert result.distance_calls > computer.n  # at least one search per node


def test_prune_stats_populated_for_rnd(computer):
    result = build_ii_graph(
        computer, max_degree=6, beam_width=24, diversify="rnd",
        rng=np.random.default_rng(0),
    )
    assert result.prune_stats.examined > 0
    assert 0 <= result.prune_stats.ratio() < 1


def test_rrnd_prunes_less_than_rnd(computer):
    """Table 1's ordering: RND > MOND > RRND pruning ratios."""
    ratios = {}
    for name, params in [
        ("rnd", {}),
        ("mond", {"theta_degrees": 60.0}),
        ("rrnd", {"alpha": 1.3}),
    ]:
        result = build_ii_graph(
            computer, max_degree=6, beam_width=24, diversify=name,
            rng=np.random.default_rng(0), diversify_params=params,
        )
        ratios[name] = result.prune_stats.ratio()
    assert ratios["rnd"] > ratios["mond"] > ratios["rrnd"]


def test_searchable_after_build(computer, tiny_queries):
    result = build_ii_graph(
        computer, max_degree=8, beam_width=24, rng=np.random.default_rng(0)
    )
    hits = 0
    for q in tiny_queries:
        gt, _ = computer.exact_knn(q, 5)
        res = beam_search(result.graph, computer, q, [0], k=5, beam_width=40)
        hits += len(set(gt.tolist()) & set(res.ids.tolist()))
    assert hits / (5 * len(tiny_queries)) > 0.8


def test_insertion_order_respected(computer):
    order = np.arange(computer.n)[::-1].copy()
    result = build_ii_graph(
        computer, max_degree=6, beam_width=16,
        rng=np.random.default_rng(0), insertion_order=order,
    )
    assert result.graph.n == computer.n


def test_random_build_seeds_validation():
    with pytest.raises(ValueError):
        RandomBuildSeeds(0)


def test_sn_build_seeds_costs_more_than_ks(computer):
    """Table 2: the SN-based build performs more distance calculations."""
    comp_a = DistanceComputer(computer.data)
    ks = build_ii_graph(
        comp_a, max_degree=8, beam_width=24,
        rng=np.random.default_rng(1), build_seeds=RandomBuildSeeds(n_seeds=4),
    )
    comp_b = DistanceComputer(computer.data)
    sn = build_ii_graph(
        comp_b, max_degree=8, beam_width=24,
        rng=np.random.default_rng(1),
        build_seeds=StackedNSWBuildSeeds(max_degree=8),
    )
    assert sn.distance_calls > ks.distance_calls


def test_sn_provider_maintains_layers(computer):
    provider = StackedNSWBuildSeeds(max_degree=8)
    build_ii_graph(
        computer, max_degree=8, beam_width=16,
        rng=np.random.default_rng(2), build_seeds=provider,
    )
    assert provider.entry is not None
    assert provider.memory_bytes() >= 0


def test_sn_provider_validation():
    with pytest.raises(ValueError):
        StackedNSWBuildSeeds(max_degree=1)


def test_single_point_dataset():
    computer = DistanceComputer(np.zeros((1, 4), dtype=np.float32))
    result = build_ii_graph(computer, max_degree=4, beam_width=8)
    assert result.graph.n == 1
    assert result.graph.degree(0) == 0


def test_two_point_dataset():
    computer = DistanceComputer(
        np.array([[0.0, 0.0], [1.0, 1.0]], dtype=np.float32)
    )
    result = build_ii_graph(computer, max_degree=4, beam_width=8)
    assert result.graph.degree(0) + result.graph.degree(1) >= 2


# ----------------------------------------------------------------------
# stats-signature detection for custom diversifiers
# ----------------------------------------------------------------------
def test_custom_diversifier_internal_typeerror_propagates(computer):
    """A stats-accepting diversifier whose own body raises TypeError.

    Signature detection must use introspection, not try/except around the
    call: probing with ``stats=`` and falling back on TypeError would
    silently swallow this bug (and double-call the diversifier).
    """

    def broken(comp, cand_ids, cand_dists, max_degree, stats=None):
        raise TypeError("bug inside the diversifier body")

    with pytest.raises(TypeError, match="bug inside"):
        build_ii_graph(
            computer, max_degree=8, beam_width=16, diversify=broken,
            rng=np.random.default_rng(0),
        )


def test_custom_diversifier_without_stats_still_counted(computer):
    calls = []

    def plain(comp, cand_ids, cand_dists, max_degree):
        calls.append(len(cand_ids))
        order = np.argsort(cand_dists, kind="stable")
        return cand_ids[order][:max_degree]

    result = build_ii_graph(
        computer, max_degree=8, beam_width=16, diversify=plain,
        rng=np.random.default_rng(0),
    )
    assert calls, "custom diversifier was never invoked"
    # the estimated pruning accounting still accumulates
    assert result.prune_stats.examined > 0


def test_custom_diversifier_with_kwargs_receives_stats(computer):
    seen = []

    def kwargs_style(comp, cand_ids, cand_dists, max_degree, **extra):
        seen.append("stats" in extra)
        order = np.argsort(cand_dists, kind="stable")
        return cand_ids[order][:max_degree]

    build_ii_graph(
        computer, max_degree=8, beam_width=16, diversify=kwargs_style,
        rng=np.random.default_rng(0),
    )
    # primary prunes use the bare 4-arg call; overflow re-prunes go through
    # the stats path and must land in **extra for a VAR_KEYWORD diversifier
    assert seen and any(seen), "VAR_KEYWORD diversifier never received stats"
