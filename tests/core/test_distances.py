"""Unit tests for the distance engine and its accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distances import DistanceComputer, euclidean, pairwise_euclidean


@pytest.fixture()
def computer():
    gen = np.random.default_rng(0)
    return DistanceComputer(gen.normal(size=(50, 8)).astype(np.float32))


def test_euclidean_matches_numpy():
    a = np.array([1.0, 2.0, 3.0])
    b = np.array([4.0, 6.0, 3.0])
    assert euclidean(a, b) == pytest.approx(5.0)


def test_euclidean_zero_for_identical():
    v = np.arange(5, dtype=float)
    assert euclidean(v, v) == 0.0


def test_pairwise_shape_and_symmetry():
    gen = np.random.default_rng(1)
    a = gen.normal(size=(7, 4))
    d = pairwise_euclidean(a, a)
    assert d.shape == (7, 7)
    assert np.allclose(d, d.T)
    assert np.allclose(np.diag(d), 0.0, atol=1e-6)


def test_pairwise_matches_direct():
    gen = np.random.default_rng(2)
    a, b = gen.normal(size=(5, 6)), gen.normal(size=(4, 6))
    d = pairwise_euclidean(a, b)
    for i in range(5):
        for j in range(4):
            assert d[i, j] == pytest.approx(euclidean(a[i], b[j]), rel=1e-9)


def test_rejects_non_2d():
    with pytest.raises(ValueError):
        DistanceComputer(np.zeros(10))


def test_to_query_counts(computer):
    computer.reset()
    computer.to_query(np.arange(10), np.zeros(8))
    assert computer.count == 10


def test_to_query_values(computer):
    q = np.full(8, 0.5)
    dists = computer.to_query(np.arange(5), q)
    for i in range(5):
        assert dists[i] == pytest.approx(euclidean(computer.data[i], q), rel=1e-6)


def test_one_to_query_counts_one(computer):
    computer.reset()
    d = computer.one_to_query(3, np.zeros(8))
    assert computer.count == 1
    assert d == pytest.approx(euclidean(computer.data[3], np.zeros(8)), rel=1e-6)


def test_between_symmetric(computer):
    assert computer.between(1, 2) == pytest.approx(computer.between(2, 1))


def test_one_to_many_matches_between(computer):
    dists = computer.one_to_many(0, np.array([1, 2, 3]))
    for offset, j in enumerate([1, 2, 3]):
        assert dists[offset] == pytest.approx(computer.between(0, j), rel=1e-9)


def test_many_to_many_counts_product(computer):
    computer.reset()
    d = computer.many_to_many(np.arange(4), np.arange(6))
    assert computer.count == 24
    assert d.shape == (4, 6)


def test_checkpoint_since(computer):
    mark = computer.checkpoint()
    computer.to_query(np.arange(7), np.zeros(8))
    assert computer.since(mark) == 7


def test_exact_knn_returns_sorted(computer):
    ids, dists = computer.exact_knn(computer.data[5], 10)
    assert ids[0] == 5
    assert dists[0] == pytest.approx(0.0, abs=1e-5)
    assert np.all(np.diff(dists) >= 0)


def test_exact_knn_counts_full_scan(computer):
    computer.reset()
    computer.exact_knn(np.zeros(8), 3)
    assert computer.count == computer.n


def test_exact_knn_k_larger_than_n(computer):
    ids, dists = computer.exact_knn(np.zeros(8), 500)
    assert ids.size == computer.n


def test_exact_knn_chunk_size_invariant(computer):
    """The chunked scan returns the same neighbors for any chunk size.

    (Distances may differ in the last ulp across chunk sizes — BLAS GEMV
    results depend on the block shape — so values get a tight tolerance.)
    """
    q = np.linspace(-1, 1, 8)
    ref_ids, ref_dists = computer.exact_knn(q, 7)
    for chunk_size in (1, 3, 7, 49, 50, 51, 10_000):
        ids, dists = computer.exact_knn(q, 7, chunk_size=chunk_size)
        assert ids.tolist() == ref_ids.tolist()
        assert dists == pytest.approx(ref_dists, rel=1e-12)


def test_exact_knn_counts_full_scan_with_small_chunks(computer):
    computer.reset()
    computer.exact_knn(np.zeros(8), 3, chunk_size=7)
    assert computer.count == computer.n


def test_exact_knn_breaks_ties_by_id():
    data = np.zeros((9, 4), dtype=np.float32)  # all points identical
    computer = DistanceComputer(data)
    for chunk_size in (2, 100):
        ids, _ = computer.exact_knn(np.zeros(4), 4, chunk_size=chunk_size)
        assert ids.tolist() == [0, 1, 2, 3]


def test_exact_knn_rejects_bad_chunk_size(computer):
    with pytest.raises(ValueError):
        computer.exact_knn(np.zeros(8), 3, chunk_size=0)


def test_exact_knn_zero_k():
    computer = DistanceComputer(np.empty((0, 4), dtype=np.float32))
    ids, dists = computer.exact_knn(np.zeros(4), 5)
    assert ids.size == 0 and dists.size == 0


def test_memory_bytes_positive(computer):
    assert computer.memory_bytes() >= computer.data.nbytes


def test_prepared_query_matches_to_query(computer):
    q = np.linspace(-1, 1, 8)
    q64, q_sq = computer.prepare_query(q)
    ids = np.arange(10)
    assert np.allclose(
        computer.to_query_prepared(ids, q64, q_sq), computer.to_query(ids, q)
    )


@settings(max_examples=40, deadline=None)
@given(
    data=hnp.arrays(
        np.float32,
        hnp.array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=20),
        elements=st.floats(-100, 100, width=32),
    )
)
def test_property_distances_nonnegative_and_consistent(data):
    computer = DistanceComputer(data)
    q = data[0]
    dists = computer.to_query(np.arange(computer.n), q)
    assert np.all(dists >= 0)
    assert dists[0] == pytest.approx(0.0, abs=1e-3)
    brute = np.sqrt(((data.astype(np.float64) - q.astype(np.float64)) ** 2).sum(axis=1))
    assert np.allclose(dists, brute, atol=1e-3)


@settings(max_examples=30, deadline=None)
@given(
    data=hnp.arrays(
        np.float32,
        (6, 5),
        elements=st.floats(-50, 50, width=32),
    )
)
def test_property_triangle_inequality(data):
    computer = DistanceComputer(data)
    d01 = computer.between(0, 1)
    d12 = computer.between(1, 2)
    d02 = computer.between(0, 2)
    assert d02 <= d01 + d12 + 1e-6


def test_to_query_prepared_coerces_id_dtype(computer):
    """Regression: float/object id arrays used to reach fancy indexing raw;
    now they are coerced to np.intp up front."""
    q, q_sq = computer.prepare_query(computer.data[0])
    ref = computer.to_query_prepared(np.asarray([0, 1, 2], dtype=np.intp), q, q_sq)
    for ids in ([0, 1, 2], np.asarray([0, 1, 2], dtype=np.uint32),
                np.asarray([0.0, 1.0, 2.0])):
        got = computer.to_query_prepared(ids, q, q_sq)
        assert np.array_equal(ref, got)


def test_to_queries_segmented_matches_prepared_per_query(computer):
    """The kernel's one batched distance call must be bitwise equal, segment
    by segment, to per-query to_query_prepared calls."""
    rng = np.random.default_rng(0)
    queries = rng.standard_normal((4, computer.dim))
    prepared = [computer.prepare_query(q) for q in queries]
    ids = rng.integers(0, computer.n, size=17)
    stops = np.asarray([5, 5, 11, 17])  # includes an empty segment
    starts = np.asarray([0, 5, 5, 11])
    mark = computer.checkpoint()
    got = computer.to_queries_segmented(
        ids, starts, stops,
        np.ascontiguousarray([q for q, _ in prepared]),
        np.asarray([s for _, s in prepared]),
    )
    assert computer.since(mark) == ids.size
    for j, (q, q_sq) in enumerate(prepared):
        ref = computer.to_query_prepared(ids[starts[j]:stops[j]], q, q_sq)
        assert np.array_equal(got[starts[j]:stops[j]], ref)


def test_points_to_many_segmented_matches_one_to_many(computer):
    rng = np.random.default_rng(1)
    points = rng.integers(0, computer.n, size=3)
    ids = rng.integers(0, computer.n, size=9)
    stops = np.asarray([4, 6, 9])
    starts = np.asarray([0, 4, 6])
    got = computer.points_to_many_segmented(points, ids, starts, stops)
    for j in range(3):
        ref = computer.one_to_many(int(points[j]), ids[starts[j]:stops[j]])
        assert np.array_equal(got[starts[j]:stops[j]], ref)


# ----------------------------------------------------------------------
# batched exact k-NN (the vectorized ground-truth path)
# ----------------------------------------------------------------------
def test_exact_knn_batch_matches_per_query(computer):
    gen = np.random.default_rng(5)
    queries = gen.normal(size=(6, 8)).astype(np.float32)
    ids, dists = computer.exact_knn_batch(queries, 7)
    assert ids.shape == (6, 7) and dists.shape == (6, 7)
    for j in range(queries.shape[0]):
        ref_ids, ref_dists = computer.exact_knn(queries[j], 7)
        assert np.array_equal(ids[j], ref_ids)
        assert np.array_equal(dists[j], ref_dists)


def test_exact_knn_batch_chunked_matches_unchunked(computer):
    gen = np.random.default_rng(6)
    queries = gen.normal(size=(4, 8)).astype(np.float32)
    whole_ids, whole_dists = computer.exact_knn_batch(queries, 10)
    # chunk boundary falls mid-dataset, exercising the running-top-k merge
    chunk_ids, chunk_dists = computer.exact_knn_batch(queries, 10, chunk_size=7)
    assert np.array_equal(whole_ids, chunk_ids)
    assert np.array_equal(whole_dists, chunk_dists)


def test_exact_knn_batch_counts_all_comparisons(computer):
    queries = np.random.default_rng(7).normal(size=(3, 8)).astype(np.float32)
    before = computer.checkpoint()
    computer.exact_knn_batch(queries, 5)
    assert computer.since(before) == 3 * computer.n


def test_exact_knn_batch_validation(computer):
    with pytest.raises(ValueError):
        computer.exact_knn_batch(np.zeros((2, 3)), 5)  # wrong dim
    with pytest.raises(ValueError):
        computer.exact_knn_batch(np.zeros((2, 8)), 5, chunk_size=0)
    ids, dists = computer.exact_knn_batch(np.zeros((0, 8)), 5)
    assert ids.shape == (0, 5) and dists.shape == (0, 5)
