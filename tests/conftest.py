"""Shared fixtures: small deterministic datasets and prebuilt structures."""

import numpy as np
import pytest

from repro.core.distances import DistanceComputer
from repro.core.incremental import build_ii_graph


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20250706)


@pytest.fixture(scope="session")
def small_data():
    """300 clustered points in 12 dimensions (easy search)."""
    gen = np.random.default_rng(7)
    centers = gen.normal(size=(6, 12)) * 3.0
    labels = gen.integers(6, size=300)
    return (centers[labels] + 0.3 * gen.normal(size=(300, 12))).astype(np.float32)


@pytest.fixture(scope="session")
def small_computer(small_data):
    return DistanceComputer(small_data)


@pytest.fixture(scope="session")
def small_graph(small_data):
    """An II+RND graph over small_data, shared across read-only tests."""
    computer = DistanceComputer(small_data)
    result = build_ii_graph(
        computer,
        max_degree=8,
        beam_width=24,
        diversify="rnd",
        rng=np.random.default_rng(3),
    )
    return computer, result.graph


@pytest.fixture()
def tiny_queries():
    gen = np.random.default_rng(11)
    return gen.normal(size=(5, 12)).astype(np.float32)
