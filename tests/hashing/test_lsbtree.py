"""Unit tests for LSB-style Z-order tables."""

import numpy as np
import pytest

from repro.hashing.lsbtree import LSBForest, LSBTable


@pytest.fixture()
def data():
    gen = np.random.default_rng(0)
    centers = gen.normal(size=(4, 8)) * 5
    return (centers[gen.integers(4, size=150)] + 0.2 * gen.normal(size=(150, 8))).astype(
        np.float32
    )


def test_seeds_before_build():
    with pytest.raises(RuntimeError):
        LSBTable(4, 0).seeds_for(np.zeros(4), 5)


def test_seeds_shape(data):
    table = LSBTable(4, seed=0).build(data)
    seeds = table.seeds_for(data[0], 8)
    assert 1 <= seeds.size <= 16
    assert seeds.min() >= 0 and seeds.max() < 150


def test_seeds_biased_near(data):
    table = LSBTable(6, seed=0).build(data)
    query = data[20]
    seeds = table.seeds_for(query, 10)
    seed_dists = np.linalg.norm(data[seeds] - query, axis=1)
    all_dists = np.linalg.norm(data - query, axis=1)
    assert seed_dists.mean() < all_dists.mean()


def test_projected_distance_correlates(data):
    table = LSBTable(8, seed=0).build(data)
    query = data[5]
    ids = np.arange(150)
    estimates = table.projected_distance(query, ids)
    true = np.linalg.norm(data - query, axis=1)
    corr = np.corrcoef(estimates, true)[0, 1]
    assert corr > 0.5


def test_forest_rejects_bad_tables():
    with pytest.raises(ValueError):
        LSBForest(n_tables=0)


def test_forest_union(data):
    forest = LSBForest(n_tables=3, n_projections=6, seed=0).build(data)
    seeds = forest.seeds_for(data[0], 12)
    assert seeds.size >= 1


def test_forest_projected_distance(data):
    forest = LSBForest(n_tables=3, n_projections=6, seed=0).build(data)
    est = forest.projected_distance(data[0], np.arange(10))
    assert est.shape == (10,)
    assert est[0] == pytest.approx(0.0, abs=1e-9)


def test_memory_bytes(data):
    forest = LSBForest(n_tables=2, n_projections=4, seed=0).build(data)
    assert forest.memory_bytes() > 0
