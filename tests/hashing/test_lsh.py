"""Unit tests for the LSH family."""

import numpy as np
import pytest

from repro.hashing.lsh import LSHIndex, QueryAwareLSH


@pytest.fixture()
def data():
    gen = np.random.default_rng(0)
    centers = gen.normal(size=(5, 8)) * 5
    return (centers[gen.integers(5, size=200)] + 0.2 * gen.normal(size=(200, 8))).astype(
        np.float32
    )


def test_rejects_bad_params():
    with pytest.raises(ValueError):
        LSHIndex(n_tables=0)
    with pytest.raises(ValueError):
        LSHIndex(n_projections=0)


def test_candidates_before_build():
    with pytest.raises(RuntimeError):
        LSHIndex().candidates(np.zeros(4))


def test_own_point_collides(data):
    index = LSHIndex(n_tables=4, n_projections=6).build(data)
    hits = sum(1 for i in (0, 50, 100) if i in index.candidates(data[i]))
    assert hits == 3


def test_candidates_are_biased_near(data):
    index = LSHIndex(n_tables=4, n_projections=6).build(data)
    query = data[10]
    cands = index.candidates(query, min_candidates=5)
    if cands.size >= 5:
        cand_dists = np.linalg.norm(data[cands] - query, axis=1)
        all_dists = np.linalg.norm(data - query, axis=1)
        assert cand_dists.mean() < all_dists.mean()


def test_multiprobe_expands(data):
    index = LSHIndex(n_tables=2, n_projections=10).build(data)
    few = index.candidates(data[0], min_candidates=1)
    many = index.candidates(data[0], min_candidates=200)
    assert many.size >= few.size


def test_custom_ids(data):
    ids = np.arange(1000, 1200)
    index = LSHIndex(n_tables=2, n_projections=4).build(data, ids=ids)
    cands = index.candidates(data[0])
    assert cands.size == 0 or cands.min() >= 1000


def test_memory_bytes(data):
    index = LSHIndex().build(data)
    assert index.memory_bytes() > 0


def test_query_aware_rejects_bad_params():
    with pytest.raises(ValueError):
        QueryAwareLSH(n_projections=0)


def test_query_aware_before_build():
    with pytest.raises(RuntimeError):
        QueryAwareLSH().examination_order(np.zeros(4))


def test_query_aware_orders_near_first(data):
    qalsh = QueryAwareLSH(n_projections=16).build(data)
    query = data[33]
    order = qalsh.examination_order(query)
    assert order.size == 200
    # the true nearest neighbor should appear early in the examination order
    true_nn_rank = int(np.where(order == 33)[0][0])
    assert true_nn_rank < 20


def test_query_aware_prefix_quality(data):
    qalsh = QueryAwareLSH(n_projections=16).build(data)
    gen = np.random.default_rng(5)
    query = data[77] + 0.05 * gen.normal(size=8).astype(np.float32)
    order = qalsh.examination_order(query)
    prefix = order[:40]
    prefix_dists = np.linalg.norm(data[prefix] - query, axis=1)
    all_dists = np.linalg.norm(data - query, axis=1)
    assert prefix_dists.mean() < all_dists.mean()


def test_query_aware_memory(data):
    assert QueryAwareLSH().build(data).memory_bytes() > 0
