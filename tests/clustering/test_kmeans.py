"""Unit tests for k-means and balanced k-means."""

import numpy as np
import pytest

from repro.clustering.kmeans import balanced_kmeans, kmeans


@pytest.fixture()
def blobs():
    gen = np.random.default_rng(0)
    centers = np.array([[0, 0], [10, 0], [0, 10]], dtype=float)
    labels = gen.integers(3, size=90)
    return centers[labels] + 0.2 * gen.normal(size=(90, 2)), labels


def test_kmeans_rejects_bad_k(blobs):
    data, _ = blobs
    with pytest.raises(ValueError):
        kmeans(data, 0, np.random.default_rng(0))
    with pytest.raises(ValueError):
        kmeans(data, 91, np.random.default_rng(0))


def test_kmeans_recovers_blobs(blobs):
    data, truth = blobs
    result = kmeans(data, 3, np.random.default_rng(0))
    # clusters must be pure: every true blob maps to one predicted label
    for blob in range(3):
        predicted = result.labels[truth == blob]
        assert len(set(predicted.tolist())) == 1


def test_kmeans_inertia_decreases_with_k(blobs):
    data, _ = blobs
    inertias = [
        kmeans(data, k, np.random.default_rng(0)).inertia for k in (1, 3, 9)
    ]
    assert inertias[0] > inertias[1] > inertias[2]


def test_kmeans_labels_in_range(blobs):
    data, _ = blobs
    result = kmeans(data, 5, np.random.default_rng(1))
    assert result.labels.min() >= 0
    assert result.labels.max() < 5


def test_kmeans_k_equals_n():
    data = np.arange(6, dtype=float).reshape(6, 1)
    result = kmeans(data, 6, np.random.default_rng(0))
    assert result.inertia == pytest.approx(0.0, abs=1e-9)


def test_balanced_kmeans_respects_cap(blobs):
    data, _ = blobs
    result = balanced_kmeans(data, 4, np.random.default_rng(0))
    counts = np.bincount(result.labels, minlength=4)
    assert counts.max() <= -(-90 // 4)


def test_balanced_kmeans_assigns_everyone(blobs):
    data, _ = blobs
    result = balanced_kmeans(data, 4, np.random.default_rng(0))
    assert (result.labels >= 0).all()


def test_balanced_kmeans_rejects_bad_k(blobs):
    data, _ = blobs
    with pytest.raises(ValueError):
        balanced_kmeans(data, 0, np.random.default_rng(0))


def test_balanced_vs_plain_inertia(blobs):
    """Balancing can only cost inertia, never gain it (on balanced blobs
    of equal size they should be close)."""
    data, _ = blobs
    plain = kmeans(data, 3, np.random.default_rng(0)).inertia
    balanced = balanced_kmeans(data, 3, np.random.default_rng(0)).inertia
    assert balanced >= plain * 0.99


def test_balanced_kmeans_exact_split():
    data = np.arange(8, dtype=float).reshape(8, 1)
    result = balanced_kmeans(data, 2, np.random.default_rng(0))
    counts = np.bincount(result.labels, minlength=2)
    assert counts.tolist() == [4, 4]
