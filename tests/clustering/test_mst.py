"""Unit tests for MST construction."""

import numpy as np
import pytest

from repro.clustering.mst import degree_bounded_mst, mst_edges
from repro.core.distances import DistanceComputer


@pytest.fixture()
def computer():
    gen = np.random.default_rng(0)
    return DistanceComputer(gen.normal(size=(40, 4)).astype(np.float32))


def test_mst_edge_count(computer):
    edges = mst_edges(computer, np.arange(20))
    assert len(edges) == 19


def test_mst_spans_all(computer):
    edges = mst_edges(computer, np.arange(20))
    nodes = set()
    for a, b, _ in edges:
        nodes.add(a)
        nodes.add(b)
    assert nodes == set(range(20))


def test_mst_total_weight_optimal_on_line():
    data = np.arange(10, dtype=np.float32)[:, None]
    computer = DistanceComputer(data)
    edges = mst_edges(computer, np.arange(10))
    assert sum(w for _, _, w in edges) == pytest.approx(9.0)


def test_mst_trivial_sizes(computer):
    assert mst_edges(computer, np.array([3])) == []
    assert mst_edges(computer, np.array([], dtype=np.int64)) == []


def test_mst_matches_networkx(computer):
    networkx = pytest.importorskip("networkx")
    ids = np.arange(15)
    ours = sum(w for _, _, w in mst_edges(computer, ids))
    g = networkx.Graph()
    dists = computer.many_to_many(ids, ids)
    for i in range(15):
        for j in range(i + 1, 15):
            g.add_edge(i, j, weight=dists[i, j])
    theirs = sum(
        d["weight"] for _, _, d in networkx.minimum_spanning_edges(g, data=True)
    )
    assert ours == pytest.approx(theirs, rel=1e-9)


def test_degree_bounded_respects_cap(computer):
    edges = degree_bounded_mst(computer, np.arange(30), max_degree=3)
    degree = {}
    for a, b in edges:
        degree[a] = degree.get(a, 0) + 1
        degree[b] = degree.get(b, 0) + 1
    assert max(degree.values()) <= 3


def test_degree_bounded_rejects_bad_cap(computer):
    with pytest.raises(ValueError):
        degree_bounded_mst(computer, np.arange(10), max_degree=0)


def test_degree_bounded_nearly_spanning(computer):
    """With cap 3 the forest is usually one tree on random data."""
    edges = degree_bounded_mst(computer, np.arange(30), max_degree=3)
    assert len(edges) >= 27


def test_degree_bounded_uses_subset_ids(computer):
    ids = np.array([5, 9, 14, 20, 33])
    edges = degree_bounded_mst(computer, ids, max_degree=3)
    for a, b in edges:
        assert a in ids and b in ids


def test_distance_accounting(computer):
    computer.reset()
    mst_edges(computer, np.arange(10))
    assert computer.count == 100  # dense 10x10 block
