"""Unit tests for random hierarchical bisection."""

import numpy as np
import pytest

from repro.clustering.hierarchical import random_bisection_clusters
from repro.core.distances import DistanceComputer


@pytest.fixture()
def computer():
    gen = np.random.default_rng(0)
    return DistanceComputer(gen.normal(size=(200, 5)).astype(np.float32))


def test_clusters_partition(computer):
    clusters = random_bisection_clusters(computer, 20, np.random.default_rng(0))
    all_ids = np.concatenate(clusters)
    assert sorted(all_ids.tolist()) == list(range(200))


def test_cluster_size_bound(computer):
    clusters = random_bisection_clusters(computer, 20, np.random.default_rng(0))
    for cluster in clusters:
        assert cluster.size <= 20


def test_rejects_bad_min_size(computer):
    with pytest.raises(ValueError):
        random_bisection_clusters(computer, 1, np.random.default_rng(0))


def test_different_seeds_differ(computer):
    a = random_bisection_clusters(computer, 20, np.random.default_rng(0))
    b = random_bisection_clusters(computer, 20, np.random.default_rng(1))
    sa = sorted(tuple(sorted(c.tolist())) for c in a)
    sb = sorted(tuple(sorted(c.tolist())) for c in b)
    assert sa != sb


def test_subset(computer):
    ids = np.arange(50, 100)
    clusters = random_bisection_clusters(
        computer, 10, np.random.default_rng(0), ids=ids
    )
    assert set(np.concatenate(clusters).tolist()) == set(ids.tolist())


def test_duplicate_points_halved():
    computer = DistanceComputer(np.ones((16, 3), dtype=np.float32))
    clusters = random_bisection_clusters(computer, 4, np.random.default_rng(0))
    assert sum(c.size for c in clusters) == 16


def test_clusters_are_spatially_coherent(computer):
    """Points in a cluster should be closer to each other than random pairs."""
    clusters = random_bisection_clusters(computer, 25, np.random.default_rng(2))
    biggest = max(clusters, key=lambda c: c.size)
    within = computer.many_to_many(biggest, biggest)
    within_mean = within[np.triu_indices(biggest.size, 1)].mean()
    sample = np.random.default_rng(0).choice(200, size=biggest.size, replace=False)
    across = computer.many_to_many(biggest, sample).mean()
    assert within_mean < across * 1.05
