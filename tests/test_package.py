"""Package surface tests: the public API stays importable and coherent."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_registry_and_generators_consistent():
    """Every dataset the recommender knows is generatable."""
    from repro.datasets.synthetic import DATASET_GENERATORS
    from repro.eval.recommend import HARD_DATASETS

    assert HARD_DATASETS <= set(DATASET_GENERATORS)


def test_paradigm_tags_cover_registry():
    from repro.cli import _PARADIGMS
    from repro.indexes import METHOD_REGISTRY

    assert set(METHOD_REGISTRY) == set(_PARADIGMS)


def test_quickstart_docstring_example():
    """The module docstring's example must actually work."""
    from repro import create_index, generate

    data = generate("deep", 300)
    index = create_index("HCNNG").build(data)
    result = index.search(data[0], k=5, beam_width=40)
    assert int(result.ids[0]) == 0
