"""Cross-module property-based tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.beam_search import beam_search
from repro.core.distances import DistanceComputer
from repro.core.incremental import build_ii_graph


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n=st.integers(20, 120),
    dim=st.integers(2, 16),
    diversify=st.sampled_from(["nond", "rnd", "rrnd", "mond"]),
)
def test_property_ii_build_always_searchable(seed, n, dim, diversify):
    """Any II graph on any data admits a beam search returning valid ids."""
    gen = np.random.default_rng(seed)
    data = gen.normal(size=(n, dim)).astype(np.float32)
    computer = DistanceComputer(data)
    result = build_ii_graph(
        computer, max_degree=6, beam_width=16, diversify=diversify,
        rng=np.random.default_rng(seed),
    )
    res = beam_search(
        result.graph, computer, gen.normal(size=dim), [0], k=3, beam_width=12
    )
    assert res.ids.size == 3
    assert res.ids.min() >= 0 and res.ids.max() < n


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_full_beam_equals_bruteforce(seed):
    """With beam width n and a connected graph, beam search is exact."""
    gen = np.random.default_rng(seed)
    data = gen.normal(size=(60, 6)).astype(np.float32)
    computer = DistanceComputer(data)
    built = build_ii_graph(
        computer, max_degree=8, beam_width=30, rng=np.random.default_rng(seed)
    )
    if not built.graph.reachable_from(0).all():
        return  # rare disconnected case: exactness not guaranteed
    query = gen.normal(size=6)
    exact, _ = computer.exact_knn(query, 5)
    res = beam_search(built.graph, computer, query, [0], k=5, beam_width=60)
    assert set(res.ids.tolist()) == set(exact.tolist())


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 1000), duplicates=st.integers(2, 10))
def test_property_duplicate_points_handled(seed, duplicates):
    """Datasets with exact duplicates must not break any stage."""
    gen = np.random.default_rng(seed)
    base = gen.normal(size=(30, 5)).astype(np.float32)
    data = np.repeat(base, duplicates, axis=0)[:60]
    computer = DistanceComputer(data)
    built = build_ii_graph(
        computer, max_degree=6, beam_width=16, rng=np.random.default_rng(seed)
    )
    res = beam_search(built.graph, computer, data[0], [1], k=3, beam_width=12)
    assert res.dists[0] <= res.dists[-1]
