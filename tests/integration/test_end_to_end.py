"""Integration tests exercising whole pipelines across modules."""

import numpy as np
import pytest

from repro import (
    create_index,
    dataset_complexity,
    generate,
    ground_truth,
    recall,
    recommend,
    sweep_beam_widths,
)
from repro.datasets.queries import held_out_split, noise_queries
from repro.eval.runner import calls_at_recall


def test_full_pipeline_build_sweep_compare():
    """Mini version of the paper's main experiment on two methods."""
    data = generate("sift", 800, seed=0)
    queries = generate("sift", 6, seed=42)
    truth, _ = ground_truth(data, queries, 10)
    curves = {}
    for name in ("HNSW", "KGraph"):
        index = create_index(name, seed=1).build(data)
        curves[name] = sweep_beam_widths(
            index, queries, truth, k=10, beam_widths=(20, 60, 180)
        )
    # the paper's headline: ND+II methods dominate NP methods at high recall
    hnsw_best = max(p.recall for p in curves["HNSW"])
    kgraph_best = max(p.recall for p in curves["KGraph"])
    assert hnsw_best >= kgraph_best


def test_held_out_protocol():
    """The SALD/Seismic protocol: queries removed before indexing."""
    data = generate("sald", 700, seed=0)
    index_set, queries = held_out_split(data, 5, np.random.default_rng(0))
    truth, _ = ground_truth(index_set, queries, 10)
    index = create_index("HNSW", seed=0).build(index_set)
    hits = 0
    for q, gt in zip(queries, truth):
        result = index.search(q, k=10, beam_width=100)
        hits += len(set(result.ids.tolist()) & set(gt.tolist()))
    assert hits / (10 * len(queries)) > 0.7


def test_noise_makes_queries_harder():
    """Figure 15's premise: noise pushes queries away from their true NNs.

    (The *performance* impact of that hardness is measured at benchmark
    scale in bench_fig15; at unit scale easy datasets absorb the noise.)
    """
    data = generate("deep", 900, seed=1)
    rng = np.random.default_rng(3)
    gt_dist = {}
    for label, sigma in (("1%", 0.01), ("10%", 0.10)):
        queries = noise_queries(data, 20, sigma, np.random.default_rng(5))
        _, dists = ground_truth(data, queries, 10)
        gt_dist[label] = float(dists.mean())
    assert gt_dist["10%"] > gt_dist["1%"]
    # and the index still answers the hard workload well at a wide beam
    index = create_index("HNSW", seed=1).build(data)
    queries = noise_queries(data, 6, 0.10, rng)
    truth, _ = ground_truth(data, queries, 10)
    curve = sweep_beam_widths(index, queries, truth, k=10, beam_widths=(120,))
    assert curve[0].recall > 0.8


def test_complexity_guides_recommendation():
    data_easy = generate("sift", 800, seed=0)
    data_hard = generate("randpow0", 800, seed=0)
    lid_easy = dataset_complexity(data_easy, k=50, n_samples=50).mean_lid
    lid_hard = dataset_complexity(data_hard, k=50, n_samples=50).mean_lid
    rec_easy = recommend(800, hard=lid_easy > 10)
    rec_hard = recommend(800, hard=lid_hard > 10)
    assert "NSG" in rec_easy.methods
    assert "NSG" not in rec_hard.methods


def test_recall_definition_against_bruteforce():
    data = generate("deep", 300, seed=0)
    index = create_index("BruteForce").build(data)
    truth, _ = ground_truth(data, data[:3], 5)
    for row, q in enumerate(data[:3]):
        result = index.search(q, k=5)
        assert recall(result.ids, truth[row]) == 1.0


def test_methods_agree_on_easy_nearest_neighbor():
    """On well-separated clusters every method should find the same 1-NN."""
    gen = np.random.default_rng(0)
    centers = gen.normal(size=(5, 12)) * 20
    data = (centers[gen.integers(5, size=500)] + 0.1 * gen.normal(size=(500, 12))).astype(
        np.float32
    )
    query = data[17] + 0.01
    answers = set()
    for name in ("HNSW", "ELPIS", "Vamana", "SPTAG-BKT"):
        index = create_index(name, seed=2).build(data)
        answers.add(int(index.search(query, k=1, beam_width=80).ids[0]))
    assert answers == {17}
