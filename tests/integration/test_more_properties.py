"""Additional property-based coverage of structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph import Graph
from repro.summarization.paa import paa_transform, segment_bounds
from repro.summarization.quantization import ScalarQuantizer


@settings(max_examples=40, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=60
    )
)
def test_property_undirected_closure_is_symmetric(edges):
    graph = Graph(15)
    for src, dst in edges:
        graph.add_edge(src, dst)
    graph.make_undirected()
    for node in range(15):
        for nbr in graph.neighbors(node).tolist():
            assert node in graph.neighbors(nbr)


@settings(max_examples=40, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=40
    )
)
def test_property_csr_roundtrip_preserves_adjacency(edges):
    graph = Graph(12)
    for src, dst in edges:
        graph.add_edge(src, dst)
    indptr, indices = graph.to_csr()
    assert indptr[-1] == graph.num_edges()
    for node in range(12):
        stored = indices[indptr[node] : indptr[node + 1]].tolist()
        assert stored == graph.neighbors(node).tolist()


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    bits=st.integers(1, 10),
)
def test_property_scalar_quantizer_error_bound(seed, bits):
    gen = np.random.default_rng(seed)
    data = gen.normal(size=(30, 6)) * gen.uniform(0.1, 10)
    sq = ScalarQuantizer.fit(data, bits=bits)
    decoded = sq.decode(sq.encode(data))
    errors = np.linalg.norm(decoded - data, axis=1)
    assert errors.max() <= sq.max_error() + 1e-9


@settings(max_examples=40, deadline=None)
@given(dim=st.integers(1, 100), segs=st.integers(1, 16))
def test_property_segment_bounds_cover_exactly(dim, segs):
    if segs > dim:
        with pytest.raises(ValueError):
            segment_bounds(dim, segs)
        return
    bounds = segment_bounds(dim, segs)
    sizes = np.diff(bounds)
    assert bounds[0] == 0 and bounds[-1] == dim
    assert sizes.min() >= 1
    assert sizes.max() - sizes.min() <= 1


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_paa_is_mean_preserving(seed):
    """The weighted mean of PAA segments equals the vector's mean."""
    gen = np.random.default_rng(seed)
    vec = gen.normal(size=24)
    paa = paa_transform(vec[None, :], 6)[0]
    bounds = segment_bounds(24, 6)
    lengths = np.diff(bounds)
    assert np.average(paa, weights=lengths) == pytest.approx(vec.mean())
