"""Method-specific behaviour: the design properties the paper attributes
to each index must be visible in our reproductions."""

import numpy as np
import pytest

from repro.core.seeds import find_medoid
from repro.indexes import (
    DPGIndex,
    ELPISIndex,
    HCNNGIndex,
    HNSWIndex,
    LSHAPGIndex,
    NSGIndex,
    NSWIndex,
    SPTAGIndex,
    VamanaIndex,
    create_index,
)


def test_hnsw_has_layer_stack(built_indexes):
    hnsw = built_indexes["HNSW"]
    assert hnsw._stack is not None
    assert hnsw._stack.entry is not None


def test_hnsw_degrees_capped(built_indexes):
    stats = built_indexes["HNSW"].degree_stats()
    assert stats["max"] <= 24


def test_nsw_degrees_uncapped(built_indexes):
    """NSW keeps all reverse edges; hubs exceed the connection count."""
    stats = built_indexes["NSW"].degree_stats()
    assert stats["max"] > 16


def test_nsg_connected_from_medoid(built_indexes):
    nsg = built_indexes["NSG"]
    assert nsg.graph.is_connected_from(nsg.medoid)


def test_nsg_medoid_is_centroid_nearest(built_indexes, index_data):
    nsg = built_indexes["NSG"]
    centroid = index_data.mean(axis=0)
    dists = np.linalg.norm(index_data - centroid, axis=1)
    assert nsg.medoid == int(np.argmin(dists))


def test_vamana_alpha_validation():
    with pytest.raises(ValueError):
        VamanaIndex(alpha=0.9)


def test_vamana_degree_cap(built_indexes):
    assert built_indexes["Vamana"].degree_stats()["max"] <= 24


def test_dpg_graph_is_undirected(built_indexes):
    dpg = built_indexes["DPG"]
    for node in range(0, dpg.graph.n, 37):
        for nbr in dpg.graph.neighbors(node).tolist():
            assert node in dpg.graph.neighbors(nbr), (node, nbr)


def test_dpg_supports_rnd_variant(index_data):
    """The public DPG code uses RND; we expose both (paper footnote)."""
    dpg = DPGIndex(diversify="rnd", k_neighbors=8, seed=0).build(index_data)
    assert dpg.graph.num_edges() > 0


def test_sptag_tree_type_validation():
    with pytest.raises(ValueError):
        SPTAGIndex(tree_type="xyz")


def test_sptag_variants_share_graph_recipe(built_indexes):
    kdt = built_indexes["SPTAG-KDT"]
    bkt = built_indexes["SPTAG-BKT"]
    assert kdt.name == "SPTAG-KDT"
    assert bkt.name == "SPTAG-BKT"
    # same partition/merge recipe, same seed: identical graph edges
    assert kdt.graph.num_edges() == bkt.graph.num_edges()


def test_hcnng_mst_union_degrees_bounded(built_indexes):
    """Union of T degree<=3 MSTs has max degree <= 3T."""
    hcnng = built_indexes["HCNNG"]
    assert hcnng.degree_stats()["max"] <= 3 * hcnng.n_clusterings


def test_hcnng_peak_exceeds_final(built_indexes):
    """Figure 8/9: HCNNG's build structures exceed nothing here because the
    final graph equals the union; but peak bytes are recorded."""
    assert built_indexes["HCNNG"].peak_build_bytes > 0


def test_elpis_leaf_partitions(built_indexes, index_data):
    elpis = built_indexes["ELPIS"]
    leaf_ids = np.concatenate([leaf.point_ids for leaf in elpis._leaves])
    assert sorted(leaf_ids.tolist()) == list(range(index_data.shape[0]))


def test_elpis_leaves_are_disconnected_subgraphs(built_indexes):
    """No edges cross leaf boundaries — graphs are built per leaf."""
    elpis = built_indexes["ELPIS"]
    leaf_of = {}
    for leaf_idx, leaf in enumerate(elpis._leaves):
        for point in leaf.point_ids.tolist():
            leaf_of[point] = leaf_idx
    for node in range(0, elpis.graph.n, 23):
        for nbr in elpis.graph.neighbors(node).tolist():
            assert leaf_of[nbr] == leaf_of[node]


def test_elpis_nprobe_bounds_work(index_data, index_queries):
    """More probed leaves can only improve (or match) the answer quality."""
    one = ELPISIndex(leaf_size=128, nprobe=1, seed=0).build(index_data)
    many = ELPISIndex(leaf_size=128, nprobe=8, seed=0).build(index_data)
    q = index_queries[0]
    d_one = one.search(q, k=5, beam_width=40).dists[0]
    d_many = many.search(q, k=5, beam_width=40).dists[0]
    assert d_many <= d_one + 1e-9


def test_lshapg_routing_flag(index_data, index_queries):
    """Disabling probabilistic routing recovers plain beam search."""
    routed = LSHAPGIndex(seed=0, probabilistic_routing=True).build(index_data)
    plain = LSHAPGIndex(seed=0, probabilistic_routing=False).build(index_data)
    q = index_queries[0]
    r_routed = routed.search(q, k=5, beam_width=40)
    r_plain = plain.search(q, k=5, beam_width=40)
    # routing skips raw-vector evaluations, so it cannot cost more calls
    assert r_routed.distance_calls <= r_plain.distance_calls


def test_lshapg_slack_validation():
    with pytest.raises(ValueError):
        LSHAPGIndex(routing_slack=0.5)


def test_ngt_seeds_charged_to_query(built_indexes, index_queries):
    ngt = built_indexes["NGT"]
    result = ngt.search(index_queries[0], k=5, beam_width=40)
    # VP-tree probes are included in the query's accounting
    assert result.distance_calls > 0


def test_efanna_exposes_knn_lists(built_indexes):
    ids, dists = built_indexes["EFANNA"].knn_lists()
    assert ids.shape == dists.shape
    assert np.all(np.diff(dists, axis=1) >= 0)


def test_kgraph_query_seeds_random(built_indexes, index_queries):
    kgraph = built_indexes["KGraph"]
    a = kgraph._query_seeds(index_queries[0])
    b = kgraph._query_seeds(index_queries[0])
    assert a.tolist() != b.tolist()
