"""Index-test fixtures: one shared dataset, indexes built once per session."""

import numpy as np
import pytest

from repro.datasets.synthetic import generate
from repro.eval.metrics import ground_truth
from repro.indexes import METHOD_REGISTRY, create_index

DATASET_N = 600


@pytest.fixture(scope="session")
def index_data():
    return generate("deep", DATASET_N, seed=3)


@pytest.fixture(scope="session")
def index_queries():
    return generate("deep", 6, seed=77)


@pytest.fixture(scope="session")
def truth(index_data, index_queries):
    ids, dists = ground_truth(index_data, index_queries, 10)
    return ids


@pytest.fixture(scope="session")
def built_indexes(index_data):
    """Build every registered method once; tests share the instances."""
    built = {}
    for name in METHOD_REGISTRY:
        built[name] = create_index(name, seed=2).build(index_data)
    return built
