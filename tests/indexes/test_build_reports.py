"""Cross-method build accounting invariants."""

import pytest

from repro.indexes import METHOD_REGISTRY
from repro.indexes.base import BaseGraphIndex


def test_degree_stats_shape(built_indexes):
    for name, index in built_indexes.items():
        if not isinstance(index, BaseGraphIndex):
            continue
        stats = index.degree_stats()
        assert stats["min"] >= 0
        assert stats["mean"] <= stats["max"]


def test_build_distance_calls_scale_sane(built_indexes, index_data):
    """Every graph build does at least one search-ish pass over the data
    but no method degenerates to all-pairs (n^2) work at this size."""
    n = index_data.shape[0]
    for name, index in built_indexes.items():
        if name == "BruteForce":
            continue
        calls = index.build_report.distance_calls
        assert calls >= n, name
        assert calls <= 5 * n * n, name


def test_ii_methods_build_cheaper_than_nsg(built_indexes):
    """Paper Figure 7: the II-based HNSW/ELPIS build with fewer distance
    calls than NSG (which pays for an EFANNA base first)."""
    nsg = built_indexes["NSG"].build_report.distance_calls
    elpis = built_indexes["ELPIS"].build_report.distance_calls
    assert elpis < nsg
