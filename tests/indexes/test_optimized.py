"""Tests for the Figure-17 optimized (flat CSR) variants."""

import numpy as np
import pytest

from repro.indexes import OptimizedIndex, create_index


@pytest.fixture(scope="module")
def base(index_data):
    return create_index("HNSW", seed=4).build(index_data)


def test_requires_built_base():
    with pytest.raises(ValueError):
        OptimizedIndex(create_index("HNSW"))


def test_name_suffix(base):
    assert OptimizedIndex(base).name == "HNSW_Opt"


def test_same_results_as_base(base, index_queries):
    """The re-layout must not change search semantics."""
    opt = OptimizedIndex(base)
    for q in index_queries:
        r_base = base.search(q, k=5, beam_width=60)
        r_opt = opt.search(q, k=5, beam_width=60)
        assert np.allclose(r_base.dists, r_opt.dists, atol=1e-9)


def test_same_distance_calls_modulo_seeds(base, index_queries):
    """CSR layout changes wall time, not the traversal."""
    opt = OptimizedIndex(base)
    q = index_queries[0]
    r_base = base.search(q, k=5, beam_width=60)
    r_opt = opt.search(q, k=5, beam_width=60)
    # HNSW seeds are deterministic, so the traversal is identical
    assert r_base.distance_calls == r_opt.distance_calls


def test_cannot_rebuild(base, index_data):
    opt = OptimizedIndex(base)
    with pytest.raises(RuntimeError):
        opt.build(index_data)


def test_memory_is_flat_arrays(base):
    opt = OptimizedIndex(base)
    assert opt.memory_bytes() > 0
    # int32 indices beat per-node int64 arrays on footprint
    assert opt.indptr.nbytes + opt.indices.nbytes < base.graph.memory_bytes()


def test_build_report_inherited(base):
    opt = OptimizedIndex(base)
    assert opt.build_report.distance_calls == base.build_report.distance_calls
