"""Contract tests applied uniformly to every registered method."""

import numpy as np
import pytest

from repro.core.beam_search import SearchResult
from repro.indexes import METHOD_REGISTRY, create_index

ALL_METHODS = sorted(METHOD_REGISTRY)
GRAPH_METHODS = [m for m in ALL_METHODS if m != "BruteForce"]


def test_create_index_unknown():
    with pytest.raises(KeyError):
        create_index("FAISS")


def test_registry_covers_the_papers_twelve():
    """All twelve evaluated methods (Section 4.1) are present."""
    expected = {
        "HNSW", "NSG", "Vamana", "DPG", "EFANNA", "HCNNG", "KGraph",
        "NGT", "SPTAG-BKT", "SPTAG-KDT", "ELPIS", "LSHAPG",
    }
    assert expected <= set(METHOD_REGISTRY)


@pytest.mark.parametrize("name", ALL_METHODS)
def test_search_before_build_raises(name):
    index = create_index(name)
    with pytest.raises(RuntimeError):
        index.search(np.zeros(4), k=1)


@pytest.mark.parametrize("name", ALL_METHODS)
def test_build_report_populated(name, built_indexes):
    index = built_indexes[name]
    assert index.build_report.wall_time_s > 0
    if name != "BruteForce":
        assert index.build_report.distance_calls > 0


@pytest.mark.parametrize("name", ALL_METHODS)
def test_search_returns_k_sorted(name, built_indexes, index_queries):
    index = built_indexes[name]
    result = index.search(index_queries[0], k=5, beam_width=40)
    assert isinstance(result, SearchResult)
    assert result.ids.size == 5
    assert np.all(np.diff(result.dists) >= 0)


@pytest.mark.parametrize("name", ALL_METHODS)
def test_search_ids_valid(name, built_indexes, index_queries, index_data):
    index = built_indexes[name]
    result = index.search(index_queries[1], k=5, beam_width=40)
    assert result.ids.min() >= 0
    assert result.ids.max() < index_data.shape[0]
    assert len(set(result.ids.tolist())) == 5


@pytest.mark.parametrize("name", ALL_METHODS)
def test_search_counts_distance_calls(name, built_indexes, index_queries):
    index = built_indexes[name]
    result = index.search(index_queries[2], k=5, beam_width=40)
    assert result.distance_calls > 0


@pytest.mark.parametrize("name", ALL_METHODS)
def test_reported_dists_match_true_distances(name, built_indexes, index_queries, index_data):
    index = built_indexes[name]
    q = index_queries[3]
    result = index.search(q, k=5, beam_width=40)
    true = np.linalg.norm(
        index_data[result.ids].astype(np.float64) - q.astype(np.float64), axis=1
    )
    assert np.allclose(result.dists, true, atol=1e-4)


@pytest.mark.parametrize("name", GRAPH_METHODS)
def test_reasonable_recall_at_wide_beam(name, built_indexes, index_queries, truth):
    """Every graph method must beat random guessing decisively."""
    index = built_indexes[name]
    hits = 0
    for q, gt in zip(index_queries, truth):
        result = index.search(q, k=10, beam_width=120)
        hits += len(set(result.ids.tolist()) & set(gt.tolist()))
    recall = hits / (10 * len(index_queries))
    assert recall >= 0.5, f"{name} recall {recall}"


@pytest.mark.parametrize("name", ALL_METHODS)
def test_memory_bytes_nonnegative(name, built_indexes):
    assert built_indexes[name].memory_bytes() >= 0


@pytest.mark.parametrize("name", GRAPH_METHODS)
def test_graph_methods_have_positive_footprint(name, built_indexes):
    assert built_indexes[name].memory_bytes() > 0


def test_bruteforce_exact(built_indexes, index_queries, truth):
    index = built_indexes["BruteForce"]
    for q, gt in zip(index_queries, truth):
        result = index.search(q, k=10)
        assert result.ids.tolist() == gt.tolist()


def test_searching_own_point_finds_it(built_indexes, index_data):
    for name, index in built_indexes.items():
        result = index.search(index_data[5], k=1, beam_width=60)
        # the point itself is its own nearest neighbor (distance 0)
        assert result.dists[0] < 1e-3 or 5 in result.ids, name
