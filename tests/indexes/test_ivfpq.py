"""Unit tests for the inverted-index baselines (IVF-Flat / IVF-PQ)."""

import numpy as np
import pytest

from repro.indexes import IVFIndex, create_index


@pytest.fixture(scope="module")
def built(index_data):
    flat = IVFIndex(n_lists=16, nprobe=4, seed=0).build(index_data)
    pq = IVFIndex(n_lists=16, nprobe=4, use_pq=True, seed=0).build(index_data)
    return flat, pq


def test_validation():
    with pytest.raises(ValueError):
        IVFIndex(n_lists=0)
    with pytest.raises(ValueError):
        IVFIndex(nprobe=0)


def test_registry_names():
    assert create_index("IVF-Flat").name == "IVF-Flat"
    assert create_index("IVF-PQ").name == "IVF-PQ"


def test_posting_lists_partition(built, index_data):
    flat, _ = built
    all_ids = np.concatenate([l for l in flat._lists if l.size])
    assert sorted(all_ids.tolist()) == list(range(index_data.shape[0]))


def test_flat_search_quality(built, index_queries, truth):
    flat, _ = built
    hits = 0
    for q, gt in zip(index_queries, truth):
        result = flat.search(q, k=10, beam_width=8)  # probe 8 of 16 lists
        hits += len(set(result.ids.tolist()) & set(gt.tolist()))
    assert hits / (10 * len(index_queries)) > 0.7


def test_more_probes_no_worse(built, index_queries, truth):
    flat, _ = built
    q, gt = index_queries[0], truth[0]
    few = flat.search(q, k=10, beam_width=1)
    many = flat.search(q, k=10, beam_width=16)
    assert many.dists[0] <= few.dists[0] + 1e-9


def test_full_probe_is_exact(built, index_queries, truth):
    flat, _ = built
    for q, gt in zip(index_queries[:3], truth[:3]):
        result = flat.search(q, k=10, beam_width=16)
        assert set(result.ids.tolist()) == set(gt.tolist())


def test_pq_cheaper_than_flat_at_same_probes(built, index_queries):
    flat, pq = built
    q = index_queries[0]
    calls_flat = flat.search(q, k=10, beam_width=8).distance_calls
    calls_pq = pq.search(q, k=10, beam_width=8).distance_calls
    assert calls_pq < calls_flat


def test_pq_reranked_answers_reasonable(built, index_queries, truth):
    _, pq = built
    hits = 0
    for q, gt in zip(index_queries, truth):
        result = pq.search(q, k=10, beam_width=8)
        hits += len(set(result.ids.tolist()) & set(gt.tolist()))
    assert hits / (10 * len(index_queries)) > 0.5


def test_build_charges_codebook_training(built):
    flat, _ = built
    assert flat.build_report.distance_calls > 0


def test_memory_accounting(built):
    flat, pq = built
    assert 0 < flat.memory_bytes() < pq.memory_bytes()
