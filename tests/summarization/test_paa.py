"""Unit and property tests for PAA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summarization.paa import paa_lower_bound, paa_transform, segment_bounds


def test_segment_bounds_even():
    assert segment_bounds(8, 4).tolist() == [0, 2, 4, 6, 8]


def test_segment_bounds_uneven():
    bounds = segment_bounds(10, 3)
    sizes = np.diff(bounds)
    assert sizes.sum() == 10
    assert sizes.max() - sizes.min() <= 1


def test_segment_bounds_validation():
    with pytest.raises(ValueError):
        segment_bounds(4, 5)
    with pytest.raises(ValueError):
        segment_bounds(4, 0)


def test_paa_transform_means():
    data = np.array([[1.0, 3.0, 5.0, 7.0]])
    paa = paa_transform(data, 2)
    assert paa.tolist() == [[2.0, 6.0]]


def test_paa_transform_single_segment():
    data = np.array([[2.0, 4.0, 6.0]])
    assert paa_transform(data, 1).tolist() == [[4.0]]


def test_paa_lower_bound_identical_is_zero():
    data = np.random.default_rng(0).normal(size=(1, 16))
    paa = paa_transform(data, 4)
    assert paa_lower_bound(paa[0], paa[0], 16) == pytest.approx(0.0)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 100000),
    dim=st.integers(4, 64),
    n_segments=st.integers(1, 4),
)
def test_property_paa_bound_admissible(seed, dim, n_segments):
    """The PAA bound never exceeds the true Euclidean distance."""
    gen = np.random.default_rng(seed)
    a = gen.normal(size=dim)
    b = gen.normal(size=dim)
    pa = paa_transform(a[None, :], n_segments)[0]
    pb = paa_transform(b[None, :], n_segments)[0]
    bound = paa_lower_bound(pa, pb, dim)
    true = np.linalg.norm(a - b)
    assert bound <= true + 1e-9


def test_paa_bound_tightens_with_segments():
    gen = np.random.default_rng(1)
    a, b = gen.normal(size=32), gen.normal(size=32)
    bounds = []
    for segs in (1, 4, 16, 32):
        pa = paa_transform(a[None, :], segs)[0]
        pb = paa_transform(b[None, :], segs)[0]
        bounds.append(paa_lower_bound(pa, pb, 32))
    assert bounds == sorted(bounds)
    # with one segment per dimension the bound is exact
    assert bounds[-1] == pytest.approx(np.linalg.norm(a - b))
