"""Unit and property tests for SAX."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summarization.sax import gaussian_breakpoints, sax_mindist, sax_transform


def test_breakpoints_validation():
    with pytest.raises(ValueError):
        gaussian_breakpoints(1)


def test_breakpoints_symmetric():
    bp = gaussian_breakpoints(4)
    assert bp.shape == (3,)
    assert bp[1] == pytest.approx(0.0, abs=1e-9)
    assert bp[0] == pytest.approx(-bp[2], abs=1e-9)


def test_breakpoints_match_known_values():
    bp = gaussian_breakpoints(2)
    assert bp[0] == pytest.approx(0.0, abs=1e-9)
    bp4 = gaussian_breakpoints(4)
    assert bp4[0] == pytest.approx(-0.6745, abs=1e-3)  # 25th percentile


def test_transform_symbols_in_range():
    data = np.random.default_rng(0).normal(size=(10, 16))
    words = sax_transform(data, 4, alphabet_size=8)
    assert words.min() >= 0
    assert words.max() < 8


def test_identical_words_zero_mindist():
    word = np.array([1, 3, 5, 2])
    assert sax_mindist(word, word, 16) == 0.0


def test_adjacent_symbols_zero_mindist():
    a = np.array([2, 2])
    b = np.array([3, 3])
    assert sax_mindist(a, b, 8) == 0.0  # adjacent cells touch


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100000))
def test_property_mindist_admissible(seed):
    """SAX MINDIST never exceeds the true distance (z-normalized data)."""
    gen = np.random.default_rng(seed)
    a = gen.normal(size=16)
    b = gen.normal(size=16)
    wa = sax_transform(a[None, :], 4, 8)[0]
    wb = sax_transform(b[None, :], 4, 8)[0]
    assert sax_mindist(wa, wb, 16, 8) <= np.linalg.norm(a - b) + 1e-9
