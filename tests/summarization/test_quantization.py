"""Unit tests for scalar and product quantization."""

import numpy as np
import pytest

from repro.summarization.quantization import ProductQuantizer, ScalarQuantizer


@pytest.fixture()
def data():
    gen = np.random.default_rng(0)
    return gen.normal(size=(100, 16)).astype(np.float32)


def test_scalar_validation(data):
    with pytest.raises(ValueError):
        ScalarQuantizer.fit(data, bits=0)


def test_scalar_roundtrip_error_bounded(data):
    sq = ScalarQuantizer.fit(data, bits=8)
    decoded = sq.decode(sq.encode(data))
    errors = np.linalg.norm(decoded - data, axis=1)
    assert errors.max() <= sq.max_error() + 1e-9


def test_scalar_more_bits_less_error(data):
    errors = []
    for bits in (2, 4, 8):
        sq = ScalarQuantizer.fit(data, bits=bits)
        decoded = sq.decode(sq.encode(data))
        errors.append(np.linalg.norm(decoded - data, axis=1).mean())
    assert errors == sorted(errors, reverse=True)


def test_scalar_clips_out_of_range(data):
    sq = ScalarQuantizer.fit(data, bits=4)
    outlier = np.full((1, 16), 1e6)
    codes = sq.encode(outlier)
    assert codes.max() == sq.levels


def test_scalar_constant_dimension():
    data = np.ones((10, 4))
    sq = ScalarQuantizer.fit(data)
    assert np.allclose(sq.decode(sq.encode(data)), data)


def test_pq_validation(data):
    with pytest.raises(ValueError):
        ProductQuantizer.fit(data, n_subspaces=100)


def test_pq_codes_shape(data):
    pq = ProductQuantizer.fit(data, n_subspaces=4, n_centroids=8)
    codes = pq.encode(data)
    assert codes.shape == (100, 4)
    assert codes.max() < 8


def test_pq_decode_reduces_error_vs_mean(data):
    pq = ProductQuantizer.fit(data, n_subspaces=4, n_centroids=16)
    decoded = pq.decode(pq.encode(data))
    pq_err = np.linalg.norm(decoded - data, axis=1).mean()
    mean_err = np.linalg.norm(data - data.mean(axis=0), axis=1).mean()
    assert pq_err < mean_err


def test_pq_adc_close_to_true(data):
    pq = ProductQuantizer.fit(data, n_subspaces=8, n_centroids=16)
    codes = pq.encode(data)
    query = data[0]
    adc = pq.asymmetric_distances(query, codes)
    true = np.linalg.norm(data - query, axis=1)
    # ADC should correlate strongly with true distances
    assert np.corrcoef(adc, true)[0, 1] > 0.9


def test_pq_memory(data):
    pq = ProductQuantizer.fit(data, n_subspaces=4, n_centroids=8)
    assert pq.memory_bytes() > 0
