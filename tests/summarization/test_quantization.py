"""Unit tests for scalar and product quantization."""

import numpy as np
import pytest

from repro.summarization.quantization import (
    ProductQuantizer,
    ScalarQuantizer,
    largest_subspace_count,
)


@pytest.fixture()
def data():
    gen = np.random.default_rng(0)
    return gen.normal(size=(100, 16)).astype(np.float32)


def test_scalar_validation(data):
    with pytest.raises(ValueError):
        ScalarQuantizer.fit(data, bits=0)


def test_scalar_roundtrip_error_bounded(data):
    sq = ScalarQuantizer.fit(data, bits=8)
    decoded = sq.decode(sq.encode(data))
    errors = np.linalg.norm(decoded - data, axis=1)
    assert errors.max() <= sq.max_error() + 1e-9


def test_scalar_more_bits_less_error(data):
    errors = []
    for bits in (2, 4, 8):
        sq = ScalarQuantizer.fit(data, bits=bits)
        decoded = sq.decode(sq.encode(data))
        errors.append(np.linalg.norm(decoded - data, axis=1).mean())
    assert errors == sorted(errors, reverse=True)


def test_scalar_clips_out_of_range(data):
    sq = ScalarQuantizer.fit(data, bits=4)
    outlier = np.full((1, 16), 1e6)
    codes = sq.encode(outlier)
    assert codes.max() == sq.levels


def test_scalar_constant_dimension():
    data = np.ones((10, 4))
    sq = ScalarQuantizer.fit(data)
    assert np.allclose(sq.decode(sq.encode(data)), data)


def test_pq_validation(data):
    with pytest.raises(ValueError):
        ProductQuantizer.fit(data, n_subspaces=100)


def test_pq_codes_shape(data):
    pq = ProductQuantizer.fit(data, n_subspaces=4, n_centroids=8)
    codes = pq.encode(data)
    assert codes.shape == (100, 4)
    assert codes.max() < 8


def test_pq_decode_reduces_error_vs_mean(data):
    pq = ProductQuantizer.fit(data, n_subspaces=4, n_centroids=16)
    decoded = pq.decode(pq.encode(data))
    pq_err = np.linalg.norm(decoded - data, axis=1).mean()
    mean_err = np.linalg.norm(data - data.mean(axis=0), axis=1).mean()
    assert pq_err < mean_err


def test_pq_adc_close_to_true(data):
    pq = ProductQuantizer.fit(data, n_subspaces=8, n_centroids=16)
    codes = pq.encode(data)
    query = data[0]
    adc = pq.asymmetric_distances(query, codes)
    true = np.linalg.norm(data - query, axis=1)
    # ADC should correlate strongly with true distances
    assert np.corrcoef(adc, true)[0, 1] > 0.9


def test_pq_memory(data):
    pq = ProductQuantizer.fit(data, n_subspaces=4, n_centroids=8)
    assert pq.memory_bytes() > 0


# ----------------------------------------------------------------------
# fit validation: impossible configurations fail up front, clearly
# ----------------------------------------------------------------------
def test_pq_fit_rejects_non_divisible_subspaces(data):
    """Regression: dim=16 with 5 subspaces used to fail deep in k-means."""
    with pytest.raises(ValueError, match="divide dim"):
        ProductQuantizer.fit(data, n_subspaces=5)


def test_pq_fit_non_divisible_error_names_nearest_valid(data):
    with pytest.raises(ValueError, match="nearest valid count is 4"):
        ProductQuantizer.fit(data, n_subspaces=5)


def test_pq_fit_rejects_more_centroids_than_points(data):
    """Regression: k > n used to be clamped silently instead of raising."""
    with pytest.raises(ValueError, match="n_centroids"):
        ProductQuantizer.fit(data, n_subspaces=4, n_centroids=data.shape[0] + 1)


def test_pq_fit_accepts_boundary_configurations(data):
    # exactly n centroids, and one subspace per dimension, are both legal
    pq = ProductQuantizer.fit(data[:8], n_subspaces=16, n_centroids=8)
    assert pq.encode(data[:8]).shape == (8, 16)


def test_largest_subspace_count():
    assert largest_subspace_count(16, 5) == 4
    assert largest_subspace_count(16, 16) == 16
    assert largest_subspace_count(16, 100) == 16
    assert largest_subspace_count(7, 4) == 1  # prime dim: only 1 divides
    assert largest_subspace_count(96, 13) == 12
    with pytest.raises(ValueError):
        largest_subspace_count(0, 4)


# ----------------------------------------------------------------------
# LUT split: build_lut + lut_distances vs the one-shot implementation
# ----------------------------------------------------------------------
def _reference_adc(pq, query, codes):
    """The pre-split asymmetric_distances: rebuild the table inline."""
    query = np.asarray(query, dtype=np.float64).ravel()
    codes = np.atleast_2d(np.asarray(codes, dtype=np.int64))
    total = np.zeros(codes.shape[0], dtype=np.float64)
    for sub in range(pq.n_subspaces):
        chunk = query[pq._bounds[sub] : pq._bounds[sub + 1]]
        table = ((pq.codebooks[sub] - chunk) ** 2).sum(axis=1)
        total += table[codes[:, sub]]
    return np.sqrt(np.maximum(total, 0.0))


def test_lut_split_bitwise_equal_to_reference(data):
    """The split implementation must be bitwise equal to the old one."""
    pq = ProductQuantizer.fit(data, n_subspaces=8, n_centroids=16)
    codes = pq.encode(data)
    rng = np.random.default_rng(7)
    for query in rng.normal(size=(5, data.shape[1])):
        split = pq.asymmetric_distances(query, codes)
        assert np.array_equal(split, _reference_adc(pq, query, codes))


def test_lut_distances_block_size_invariant(data):
    pq = ProductQuantizer.fit(data, n_subspaces=4, n_centroids=16)
    codes = pq.encode(data)
    lut = pq.build_lut(data[3])
    full = pq.lut_distances(lut, codes)
    for block in (1, 7, 64, 1000):
        assert np.array_equal(pq.lut_distances(lut, codes, block_size=block), full)
    with pytest.raises(ValueError):
        pq.lut_distances(lut, codes, block_size=0)


def test_build_lut_shape_and_query_validation(data):
    pq = ProductQuantizer.fit(data, n_subspaces=4, n_centroids=16)
    lut = pq.build_lut(data[0])
    assert lut.shape == (4, 16)
    assert np.isfinite(lut).all()
    with pytest.raises(ValueError, match="dimensions"):
        pq.build_lut(np.zeros(data.shape[1] + 1))
