"""Unit and property tests for EAPCA and its synopsis bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summarization.eapca import EAPCASynopsis, eapca_transform


def test_transform_shapes():
    data = np.random.default_rng(0).normal(size=(5, 12))
    means, stds = eapca_transform(data, 3)
    assert means.shape == (5, 3)
    assert stds.shape == (5, 3)


def test_transform_values():
    data = np.array([[0.0, 2.0, 10.0, 10.0]])
    means, stds = eapca_transform(data, 2)
    assert means.tolist() == [[1.0, 10.0]]
    assert stds[0, 0] == pytest.approx(1.0)
    assert stds[0, 1] == pytest.approx(0.0)


def test_synopsis_envelopes():
    data = np.array([[0.0, 0.0], [2.0, 4.0]])
    syn = EAPCASynopsis.from_points(data, 1)
    assert syn.mean_min[0] == pytest.approx(0.0)
    assert syn.mean_max[0] == pytest.approx(3.0)


def test_lower_bound_zero_inside():
    data = np.random.default_rng(0).normal(size=(20, 8))
    syn = EAPCASynopsis.from_points(data, 4)
    assert syn.lower_bound(data[3]) == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 100000), n=st.integers(2, 30), dim=st.integers(4, 32))
def test_property_synopsis_bound_admissible(seed, n, dim):
    """lower_bound(q) <= min distance from q to any summarized point."""
    gen = np.random.default_rng(seed)
    data = gen.normal(size=(n, dim))
    syn = EAPCASynopsis.from_points(data, min(4, dim))
    query = gen.normal(size=dim) * 2
    lb = syn.lower_bound(query)
    true_min = np.linalg.norm(data - query, axis=1).min()
    assert lb <= true_min + 1e-9


def test_split_score_highlights_varying_segment():
    gen = np.random.default_rng(0)
    data = gen.normal(size=(50, 8)) * 0.01
    data[:, 0:2] += gen.normal(size=(50, 1)) * 5  # first segment varies most
    syn = EAPCASynopsis.from_points(data, 4)
    assert int(np.argmax(syn.split_score())) == 0


def test_memory_bytes():
    data = np.random.default_rng(0).normal(size=(10, 8))
    assert EAPCASynopsis.from_points(data, 4).memory_bytes() > 0
