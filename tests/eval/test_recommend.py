"""Unit tests for the Figure 18 recommendation tree."""

import pytest

from repro.eval.recommend import HARD_DATASETS, recommend


def test_large_datasets_get_ii_methods():
    rec = recommend(100_000, hard=False)
    assert set(rec.methods) == {"HNSW", "ELPIS"}


def test_large_and_hard_still_ii():
    rec = recommend(100_000, hard=True)
    assert "ELPIS" in rec.methods


def test_small_easy_gets_nd_methods():
    rec = recommend(5_000, hard=False)
    assert "HNSW" in rec.methods
    assert "NSG" in rec.methods


def test_small_hard_gets_dc_methods():
    rec = recommend(5_000, hard=True)
    assert "SPTAG-BKT" in rec.methods or "ELPIS" in rec.methods


def test_threshold_override():
    rec = recommend(500, hard=False, large_threshold=100)
    assert set(rec.methods) == {"HNSW", "ELPIS"}


def test_validation():
    with pytest.raises(ValueError):
        recommend(0, hard=False)


def test_hard_dataset_registry():
    assert "seismic" in HARD_DATASETS
    assert "sift" not in HARD_DATASETS
