"""Tests for the asyncio serving engine over the streaming tier.

The transparency contract: micro-batching, caching, and concurrency must
never change an answer — every response equals what a sequential,
content-seeded ``index.search`` would return against the current graph.
"""

import asyncio

import numpy as np
import pytest

from repro.core.streaming import StreamingIndex
from repro.eval.serving import ServingEngine, ServingReport, query_seed_index


@pytest.fixture(scope="module")
def setup():
    gen = np.random.default_rng(21)
    data = gen.standard_normal((200, 8)).astype(np.float32)
    queries = gen.standard_normal((16, 8)).astype(np.float32)
    index = StreamingIndex(
        max_degree=8, build_beam_width=24, seed=3, default_beam_width=24
    ).build(data)
    return index, data, queries


def _direct(index, query, k=5, width=24):
    """The sequential reference: content-seeded single-query search."""
    index.seed_query_rng(query_seed_index(query))
    result = index.search(query, k=k, beam_width=width)
    return result.ids, result.dists


def test_concurrent_answers_equal_direct(setup):
    index, _, queries = setup

    async def scenario():
        engine = ServingEngine(index, k=5, beam_width=24, max_batch=4)
        answers = await asyncio.gather(*[engine.search(q) for q in queries])
        await engine.close()
        return answers

    answers = asyncio.run(scenario())
    for query, (ids, dists) in zip(queries, answers):
        ref_ids, ref_dists = _direct(index, query)
        assert np.array_equal(ids, ref_ids)
        assert np.array_equal(dists, ref_dists)


def test_batch_composition_does_not_change_answers(setup):
    index, _, queries = setup

    async def scenario(order, max_batch):
        engine = ServingEngine(
            index, k=5, beam_width=24, max_batch=max_batch, cache_size=0
        )
        answers = await asyncio.gather(
            *[engine.search(queries[i]) for i in order]
        )
        await engine.close()
        return {i: ids for i, (ids, _) in zip(order, answers)}

    forward = asyncio.run(scenario(list(range(16)), max_batch=16))
    backward = asyncio.run(scenario(list(reversed(range(16))), max_batch=3))
    for i in range(16):
        assert np.array_equal(forward[i], backward[i])


def test_cache_hit_never_changes_answers(setup):
    index, _, queries = setup

    async def scenario():
        engine = ServingEngine(index, k=5, beam_width=24, cache_size=64)
        first = await asyncio.gather(*[engine.search(q) for q in queries])
        again = await asyncio.gather(*[engine.search(q) for q in queries])
        hits = engine.report.cache_hits
        await engine.close()
        return first, again, hits

    first, again, hits = asyncio.run(scenario())
    assert hits >= len(queries)
    for (a_ids, a_dists), (b_ids, b_dists) in zip(first, again):
        assert np.array_equal(a_ids, b_ids)
        assert np.array_equal(a_dists, b_dists)


def test_cache_lru_eviction_bounded():
    gen = np.random.default_rng(31)
    data = gen.standard_normal((120, 6)).astype(np.float32)
    index = StreamingIndex(max_degree=6, build_beam_width=16, seed=1).build(data)
    queries = gen.standard_normal((10, 6)).astype(np.float32)

    async def scenario():
        engine = ServingEngine(index, k=3, beam_width=16, cache_size=4)
        for q in queries:
            await engine.search(q)
        size = len(engine._cache)
        await engine.close()
        return size

    assert asyncio.run(scenario()) <= 4


def test_mutations_invalidate_cached_answers(setup):
    index, _, queries = setup

    async def scenario():
        engine = ServingEngine(index, k=5, beam_width=24)
        ids, _ = await engine.search(queries[0])
        doomed = ids[:2]
        await engine.delete(doomed)
        fresh_ids, _ = await engine.search(queries[0])
        await engine.close()
        return doomed, fresh_ids

    doomed, fresh_ids = asyncio.run(scenario())
    assert not np.intersect1d(fresh_ids, doomed).size
    ref_ids, _ = _direct(index, queries[0])
    assert np.array_equal(fresh_ids, ref_ids)


def test_mixed_mutations_and_queries(setup):
    _, data, queries = setup
    gen = np.random.default_rng(41)
    index = StreamingIndex(
        max_degree=8, build_beam_width=24, seed=7, default_beam_width=24
    ).build(data)

    async def scenario():
        engine = ServingEngine(index, k=5, beam_width=24, max_batch=8)
        doomed = gen.choice(200, size=20, replace=False)
        results = await asyncio.gather(
            engine.delete(doomed),
            engine.insert(gen.standard_normal((20, 8)).astype(np.float32)),
            *[engine.search(q) for q in queries],
        )
        n_deleted, new_ids = results[0], results[1]
        report = await engine.consolidate()
        final = await asyncio.gather(*[engine.search(q) for q in queries])
        await engine.close()
        return doomed, n_deleted, new_ids, report, final

    doomed, n_deleted, new_ids, report, final = asyncio.run(scenario())
    assert n_deleted == 20
    assert new_ids.size == 20
    assert report.n_dead == 20
    for ids, _ in final:
        assert not np.intersect1d(ids, doomed).size
        ref_ids, _ = _direct(index, queries[0])  # engine state == index state
    assert np.array_equal(final[0][0], ref_ids)


def test_past_deadline_batches_fill_from_queue(setup):
    """Regression: with the deadline already passed and waiters queued,
    ``wait_for(get(), timeout=0)`` spuriously timed out and dispatched
    under-full batches — with ``max_delay_s=0`` every batch degraded to
    size 1.  The past-deadline branch must drain ready items with
    ``get_nowait()`` until the batch is full or the queue is empty."""
    index, _, _ = setup
    gen = np.random.default_rng(51)
    queries = gen.standard_normal((20, 8)).astype(np.float32)

    async def scenario():
        engine = ServingEngine(
            index, k=5, beam_width=24, max_batch=8, max_delay_s=0.0,
            cache_size=0,
        )
        sizes = []
        inner_execute = engine._execute_batch

        def recording_execute(batch):
            sizes.append(len(batch))
            inner_execute(batch)

        engine._execute_batch = recording_execute
        # gather schedules every search task before the batcher task runs,
        # so all 20 waiters are queued when the first batch is cut
        answers = await asyncio.gather(*[engine.search(q) for q in queries])
        await engine.close()
        return sizes, answers

    sizes, answers = asyncio.run(scenario())
    assert sizes == [8, 8, 4], f"under-full batches dispatched: {sizes}"
    for query, (ids, dists) in zip(queries, answers):
        ref_ids, ref_dists = _direct(index, query)
        assert np.array_equal(ids, ref_ids)
        assert np.array_equal(dists, ref_dists)


def test_report_accounting(setup):
    index, _, queries = setup

    async def scenario():
        engine = ServingEngine(index, k=5, beam_width=24)
        await asyncio.gather(*[engine.search(q) for q in queries[:4]])
        await engine.close()
        return engine.report

    report = asyncio.run(scenario())
    assert report.n_queries == 4
    assert len(report.latencies_s) == 4
    assert report.total_distance_calls > 0
    measurement = report.measurement(recall=0.9, beam_width=24)
    assert measurement.p99_time_s >= measurement.p50_time_s >= 0
    assert measurement.qps > 0
    assert measurement.recall == 0.9


def test_engine_validation(setup):
    index, _, _ = setup
    with pytest.raises(ValueError):
        ServingEngine(index, max_batch=0)
    with pytest.raises(ValueError):
        ServingEngine(index, max_delay_s=-1)
    with pytest.raises(ValueError):
        ServingEngine(index, cache_size=-1)

    async def closed_search():
        engine = ServingEngine(index)
        await engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            await engine.search(np.zeros(8, dtype=np.float32))

    asyncio.run(closed_search())


def test_query_seed_index_is_content_addressed():
    q = np.arange(6, dtype=np.float32)
    assert query_seed_index(q) == query_seed_index(q.copy())
    assert query_seed_index(q) != query_seed_index(q + 1)
    # float64 input hashes identically to its float32 cast
    assert query_seed_index(q.astype(np.float64)) == query_seed_index(q)


def test_serving_report_empty():
    report = ServingReport()
    assert report.qps == 0.0
    assert report.cache_hit_rate == 0.0
    assert report.mean_batch_size == 0.0
    assert report.percentile_s(99) == 0.0
