"""Tests for the parallel batch-query engine and its determinism guarantee."""

import pickle

import numpy as np
import pytest

from repro.datasets.synthetic import generate
from repro.eval.metrics import ground_truth
from repro.eval.parallel import BatchResult, QueryOutcome, SharedArrayPack, run_batch
from repro.eval.runner import run_workload
from repro.indexes import RandomGraphIndex, create_index


@pytest.fixture(scope="module")
def workload():
    data = generate("deep", 400, seed=0)
    queries = generate("deep", 10, seed=9)
    truth, _ = ground_truth(data, queries, 10)
    return data, queries, truth


@pytest.fixture(scope="module")
def hnsw(workload):
    data, _, _ = workload
    return create_index("HNSW", seed=1).build(data)


@pytest.fixture(scope="module")
def random_graph(workload):
    """An index whose seed selection consumes the per-query RNG."""
    data, _, _ = workload
    return RandomGraphIndex(seed=3).build(data)


# ----------------------------------------------------------------------
# the determinism guarantee
# ----------------------------------------------------------------------
@pytest.mark.parametrize("index_fixture", ["hnsw", "random_graph"])
@pytest.mark.parametrize("n_workers", [2, 4])
def test_parallel_matches_sequential_exactly(
    request, workload, index_fixture, n_workers
):
    """Sequential and sharded runs must agree on ids, recall, and the
    aggregate distance-calculation count for a fixed seed."""
    _, queries, truth = workload
    index = request.getfixturevalue(index_fixture)
    sequential = run_workload(index, queries, truth, k=10, beam_width=40, n_workers=1)
    parallel = run_workload(
        index, queries, truth, k=10, beam_width=40, n_workers=n_workers
    )
    assert parallel.recall == sequential.recall
    assert parallel.total_distance_calls == sequential.total_distance_calls
    assert parallel.mean_hops == sequential.mean_hops
    assert parallel.n_workers == n_workers

    seq_batch = run_batch(index, queries, k=10, beam_width=40, n_workers=1)
    par_batch = run_batch(index, queries, k=10, beam_width=40, n_workers=n_workers)
    for a, b in zip(seq_batch.outcomes, par_batch.outcomes):
        assert a.query_index == b.query_index
        assert np.array_equal(a.ids, b.ids)
        assert np.allclose(a.dists, b.dists)
        assert a.distance_calls == b.distance_calls


def test_sequential_rerun_is_reproducible(workload, random_graph):
    """Per-query RNG derivation makes repeated runs identical, even for
    indexes that draw random seeds per query."""
    _, queries, truth = workload
    first = run_workload(random_graph, queries, truth, k=10, beam_width=40)
    second = run_workload(random_graph, queries, truth, k=10, beam_width=40)
    assert first.recall == second.recall
    assert first.total_distance_calls == second.total_distance_calls


def test_batch_outcomes_are_ordered(workload, hnsw):
    _, queries, _ = workload
    batch = run_batch(hnsw, queries, k=10, beam_width=40, n_workers=3)
    assert [o.query_index for o in batch.outcomes] == list(range(len(queries)))
    assert batch.qps > 0
    assert batch.total_distance_calls == sum(
        o.distance_calls for o in batch.outcomes
    )


def test_run_batch_rejects_bad_worker_count(workload, hnsw):
    _, queries, _ = workload
    with pytest.raises(ValueError, match="n_workers"):
        run_batch(hnsw, queries, k=10, beam_width=40, n_workers=0)


# ----------------------------------------------------------------------
# worker-state plumbing
# ----------------------------------------------------------------------
def test_pickle_strips_heavy_state(hnsw):
    clone = pickle.loads(pickle.dumps(hnsw))
    assert clone.computer is None
    assert clone.graph is None
    # the original is untouched
    assert hnsw.computer is not None
    assert hnsw.graph is not None


def test_attach_shared_query_state_round_trip(workload, hnsw):
    """Pickle + shared-state reattachment reproduces identical searches."""
    _, queries, _ = workload
    arrays = hnsw.shared_query_state()
    clone = pickle.loads(pickle.dumps(hnsw))
    clone.attach_shared_query_state(arrays)
    for i, query in enumerate(queries[:3]):
        hnsw.seed_query_rng(i)
        expected = hnsw.search(query, k=10, beam_width=40)
        clone.seed_query_rng(i)
        got = clone.search(query, k=10, beam_width=40)
        assert np.array_equal(expected.ids, got.ids)
        assert expected.distance_calls == got.distance_calls


def test_shared_array_pack_round_trip():
    arrays = {
        "a": np.arange(12, dtype=np.float64).reshape(3, 4),
        "b": np.asarray([1, 2, 3], dtype=np.int32),
    }
    pack = SharedArrayPack(arrays)
    try:
        views, segments = SharedArrayPack.attach(pack.specs)
        assert np.array_equal(views["a"], arrays["a"])
        assert np.array_equal(views["b"], arrays["b"])
        assert views["a"].dtype == np.float64
        for segment in segments:
            segment.close()
    finally:
        pack.unlink()


def test_seed_query_rng_depends_only_on_query_index(random_graph):
    random_graph.seed_query_rng(5)
    first = random_graph._query_rng.integers(1 << 30, size=4)
    random_graph.seed_query_rng(7)  # interleave another query
    random_graph.seed_query_rng(5)
    second = random_graph._query_rng.integers(1 << 30, size=4)
    assert np.array_equal(first, second)


# ----------------------------------------------------------------------
# kernel backends through the engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_workers", [1, 2])
def test_kernel_backends_answer_identically(workload, random_graph, n_workers):
    """The vectorized kernel must reproduce the scalar reference path's
    per-query ids, dists, hops, and distance accounting through run_batch,
    at any worker count."""
    _, queries, _ = workload
    ref = run_batch(random_graph, queries, k=10, beam_width=40,
                    n_workers=n_workers, kernel="scalar")
    got = run_batch(random_graph, queries, k=10, beam_width=40,
                    n_workers=n_workers, kernel="python")
    for a, b in zip(ref.outcomes, got.outcomes):
        assert a.query_index == b.query_index
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.dists, b.dists)
        assert a.distance_calls == b.distance_calls
        assert a.hops == b.hops
    assert ref.total_distance_calls == got.total_distance_calls


def test_search_batch_matches_search_loop(workload, hnsw, random_graph):
    """BaseGraphIndex.search_batch (kernel path) vs per-query search()."""
    _, queries, _ = workload
    for index in (hnsw, random_graph):
        indices = np.arange(queries.shape[0])
        batched = index.search_batch(
            queries, k=10, beam_width=40, query_indices=indices,
            kernel="python",
        )
        for j, got in enumerate(batched):
            index.seed_query_rng(j)
            ref = index.search(queries[j], k=10, beam_width=40)
            assert np.array_equal(ref.ids, got.ids)
            assert np.array_equal(ref.dists, got.dists)
            assert ref.distance_calls == got.distance_calls
            assert ref.hops == got.hops


# ----------------------------------------------------------------------
# content-addressed seeding (the serving tier's determinism hook)
# ----------------------------------------------------------------------
def test_seed_indices_decouple_randomness_from_position(hnsw, workload):
    _, queries, _ = workload
    seed_indices = np.arange(100, 100 + queries.shape[0], dtype=np.int64)
    base = run_batch(hnsw, queries, k=10, beam_width=32, seed_indices=seed_indices)
    # reversing the batch must reproduce each query's answer: randomness is
    # keyed to the seed index, not to the batch position
    flipped = run_batch(
        hnsw, queries[::-1].copy(), k=10, beam_width=32,
        seed_indices=seed_indices[::-1].copy(),
    )
    for j in range(queries.shape[0]):
        mirror = flipped.outcomes[queries.shape[0] - 1 - j]
        assert np.array_equal(base.outcomes[j].ids, mirror.ids)
        assert base.outcomes[j].distance_calls == mirror.distance_calls
    # positions are still reported, not the seed indices
    assert [o.query_index for o in base.outcomes] == list(range(queries.shape[0]))


def test_seed_indices_identical_across_workers_and_backends(hnsw, workload):
    _, queries, _ = workload
    seed_indices = np.full(queries.shape[0], 42, dtype=np.int64)
    base = run_batch(hnsw, queries, k=10, beam_width=32, seed_indices=seed_indices)
    for kwargs in ({"n_workers": 2}, {"kernel": "scalar"}):
        other = run_batch(
            hnsw, queries, k=10, beam_width=32, seed_indices=seed_indices, **kwargs
        )
        for a, b in zip(base.outcomes, other.outcomes):
            assert np.array_equal(a.ids, b.ids)
            assert a.distance_calls == b.distance_calls


def test_seed_indices_shape_validated(hnsw, workload):
    _, queries, _ = workload
    with pytest.raises(ValueError, match="seed_indices"):
        run_batch(
            hnsw, queries, k=10, beam_width=32,
            seed_indices=np.array([1, 2], dtype=np.int64),
        )
