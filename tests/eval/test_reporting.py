"""Unit tests for report formatting and archiving."""

from repro.eval.reporting import Report, format_table


def test_format_table_alignment():
    text = format_table(["a", "bb"], [["x", 1], ["yy", 2.5]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_none_as_dash():
    text = format_table(["v"], [[None]])
    assert "-" in text.splitlines()[-1]


def test_format_large_numbers():
    text = format_table(["v"], [[1234567.0]])
    assert "1.23e+06" in text


def test_report_saves(tmp_path, capsys):
    report = Report("unit", directory=tmp_path)
    report.add("hello")
    report.add_table(["x"], [[1]])
    path = report.save()
    assert path.read_text().startswith("hello")
    assert capsys.readouterr().out.count("hello") == 1


def test_report_env_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "env"))
    report = Report("unit2")
    report.add("x")
    assert str(report.save()).startswith(str(tmp_path / "env"))


def test_report_metadata_lands_in_json(tmp_path):
    import json

    import numpy as np

    report = Report("unit3", directory=tmp_path)
    report.add_metadata(kernel="python", workers=np.int64(4))
    report.add_table(["x"], [[1]])
    report.save()
    payload = json.loads((tmp_path / "unit3.json").read_text())
    assert payload["metadata"] == {"kernel": "python", "workers": 4}
    # numpy scalars were coerced to json-native types
    assert type(payload["metadata"]["workers"]) is int


def test_report_metadata_alone_triggers_json(tmp_path):
    report = Report("unit4", directory=tmp_path)
    report.add("text only")
    report.add_metadata(scale=0.05)
    report.save()
    import json

    payload = json.loads((tmp_path / "unit4.json").read_text())
    assert payload["metadata"]["scale"] == 0.05
    assert payload["tables"] == []


def test_format_query_stats_keys_disk_section_on_tier_mode():
    from repro.eval.reporting import format_query_stats
    from repro.eval.runner import QueryMeasurement

    ram = QueryMeasurement(
        beam_width=32, recall=0.9, mean_distance_calls=10.0,
        mean_hops=3.0, mean_time_s=0.001,
    )
    assert "page reads" not in format_query_stats(ram)

    # a disk run that happened to read zero pages is still a disk run
    disk = QueryMeasurement(
        beam_width=32, recall=0.9, mean_distance_calls=10.0,
        mean_hops=3.0, mean_time_s=0.001, tier_mode="disk",
    )
    assert "page reads" in format_query_stats(disk)
