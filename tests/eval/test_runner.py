"""Unit tests for the experiment runner."""

import numpy as np
import pytest

from repro.datasets.synthetic import generate
from repro.eval.metrics import ground_truth
from repro.eval.runner import (
    SweepPoint,
    build_with_tracking,
    beam_width_for_recall,
    calls_at_recall,
    run_workload,
    sweep_beam_widths,
)
from repro.indexes import create_index


@pytest.fixture(scope="module")
def setup():
    data = generate("deep", 400, seed=0)
    queries = generate("deep", 5, seed=9)
    truth, _ = ground_truth(data, queries, 10)
    index = create_index("HNSW", seed=1).build(data)
    return data, queries, truth, index


def test_build_with_tracking():
    data = generate("deep", 200, seed=0)
    measurement = build_with_tracking(create_index("HNSW", seed=0), data)
    assert measurement.wall_time_s > 0
    assert measurement.distance_calls > 0
    assert measurement.peak_heap_bytes > 0
    assert measurement.index_bytes > 0


def test_run_workload(setup):
    _, queries, truth, index = setup
    m = run_workload(index, queries, truth, k=10, beam_width=40)
    assert 0 <= m.recall <= 1
    assert m.mean_distance_calls > 0
    assert m.mean_hops > 0


def test_sweep_recall_monotone_enough(setup):
    _, queries, truth, index = setup
    curve = sweep_beam_widths(index, queries, truth, k=10, beam_widths=(10, 40, 160))
    assert len(curve) == 3
    assert curve[-1].recall >= curve[0].recall
    assert curve[-1].distance_calls > curve[0].distance_calls


def test_sweep_skips_widths_below_k(setup):
    _, queries, truth, index = setup
    with pytest.warns(UserWarning, match=r"dropping beam widths \[5\]"):
        curve = sweep_beam_widths(index, queries, truth, k=10, beam_widths=(5, 20))
    assert len(curve) == 1


def test_sweep_raises_when_all_widths_below_k(setup):
    """Regression: an all-dropped sweep used to come back empty with no hint."""
    _, queries, truth, index = setup
    with pytest.raises(ValueError, match="would be empty"):
        sweep_beam_widths(index, queries, truth, k=10, beam_widths=(3, 5))


def _curve():
    return [
        SweepPoint(beam_width=10, recall=0.5, distance_calls=100, time_s=0.1),
        SweepPoint(beam_width=20, recall=0.8, distance_calls=200, time_s=0.2),
        SweepPoint(beam_width=40, recall=0.95, distance_calls=400, time_s=0.4),
    ]


def test_calls_at_recall_interpolates():
    calls = calls_at_recall(_curve(), 0.9)
    assert 200 < calls < 400


def test_calls_at_recall_exact_point():
    assert calls_at_recall(_curve(), 0.8) == pytest.approx(200)


def test_calls_at_recall_unreachable():
    assert calls_at_recall(_curve(), 0.99) is None


def test_beam_width_for_recall():
    assert beam_width_for_recall(_curve(), 0.9) == 40
    assert beam_width_for_recall(_curve(), 0.99) is None


def test_run_workload_rejects_mismatched_lengths(setup):
    """Regression: zip() used to silently truncate the longer of the two."""
    _, queries, truth, index = setup
    with pytest.raises(ValueError, match="5 queries vs 3"):
        run_workload(index, queries, truth[:3], k=10, beam_width=40)


def test_run_workload_reports_latency_stats(setup):
    _, queries, truth, index = setup
    m = run_workload(index, queries, truth, k=10, beam_width=40)
    assert m.total_distance_calls > 0
    assert m.qps > 0
    assert m.wall_time_s > 0
    assert m.p50_time_s <= m.p95_time_s <= m.p99_time_s
    assert m.n_workers == 1


class _ExplodingIndex:
    """Stand-in whose build always fails."""

    name = "exploding"

    def build(self, data):
        raise RuntimeError("boom")


def test_build_with_tracking_stops_tracemalloc_on_failure():
    """Regression: a failing build used to leak tracemalloc tracing."""
    import tracemalloc

    assert not tracemalloc.is_tracing()
    with pytest.raises(RuntimeError, match="boom"):
        build_with_tracking(_ExplodingIndex(), np.zeros((4, 2), dtype=np.float32))
    assert not tracemalloc.is_tracing()


def test_build_with_tracking_tolerates_active_tracemalloc():
    """Regression: nested tracemalloc.start() used to raise RuntimeError."""
    import tracemalloc

    from repro.indexes import create_index

    data = generate("deep", 150, seed=0)
    tracemalloc.start()
    try:
        measurement = build_with_tracking(create_index("NSW", seed=0), data)
        assert measurement.peak_heap_bytes > 0
        assert tracemalloc.is_tracing()  # outer tracing left untouched
    finally:
        tracemalloc.stop()
