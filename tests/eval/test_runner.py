"""Unit tests for the experiment runner."""

import numpy as np
import pytest

from repro.datasets.synthetic import generate
from repro.eval.metrics import ground_truth
from repro.eval.runner import (
    SweepPoint,
    build_with_tracking,
    beam_width_for_recall,
    calls_at_recall,
    run_workload,
    sweep_beam_widths,
)
from repro.indexes import create_index


@pytest.fixture(scope="module")
def setup():
    data = generate("deep", 400, seed=0)
    queries = generate("deep", 5, seed=9)
    truth, _ = ground_truth(data, queries, 10)
    index = create_index("HNSW", seed=1).build(data)
    return data, queries, truth, index


def test_build_with_tracking():
    data = generate("deep", 200, seed=0)
    measurement = build_with_tracking(create_index("HNSW", seed=0), data)
    assert measurement.wall_time_s > 0
    assert measurement.distance_calls > 0
    assert measurement.peak_heap_bytes > 0
    assert measurement.index_bytes > 0


def test_run_workload(setup):
    _, queries, truth, index = setup
    m = run_workload(index, queries, truth, k=10, beam_width=40)
    assert 0 <= m.recall <= 1
    assert m.mean_distance_calls > 0
    assert m.mean_hops > 0


def test_sweep_recall_monotone_enough(setup):
    _, queries, truth, index = setup
    curve = sweep_beam_widths(index, queries, truth, k=10, beam_widths=(10, 40, 160))
    assert len(curve) == 3
    assert curve[-1].recall >= curve[0].recall
    assert curve[-1].distance_calls > curve[0].distance_calls


def test_sweep_skips_widths_below_k(setup):
    _, queries, truth, index = setup
    curve = sweep_beam_widths(index, queries, truth, k=10, beam_widths=(5, 20))
    assert len(curve) == 1


def _curve():
    return [
        SweepPoint(beam_width=10, recall=0.5, distance_calls=100, time_s=0.1),
        SweepPoint(beam_width=20, recall=0.8, distance_calls=200, time_s=0.2),
        SweepPoint(beam_width=40, recall=0.95, distance_calls=400, time_s=0.4),
    ]


def test_calls_at_recall_interpolates():
    calls = calls_at_recall(_curve(), 0.9)
    assert 200 < calls < 400


def test_calls_at_recall_exact_point():
    assert calls_at_recall(_curve(), 0.8) == pytest.approx(200)


def test_calls_at_recall_unreachable():
    assert calls_at_recall(_curve(), 0.99) is None


def test_beam_width_for_recall():
    assert beam_width_for_recall(_curve(), 0.9) == 40
    assert beam_width_for_recall(_curve(), 0.99) is None
