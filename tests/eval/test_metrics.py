"""Unit tests for recall and ground truth."""

import numpy as np
import pytest

from repro.eval.metrics import ground_truth, mean_recall, recall


def test_recall_perfect():
    assert recall(np.array([1, 2, 3]), np.array([3, 2, 1])) == 1.0


def test_recall_partial():
    assert recall(np.array([1, 2, 9]), np.array([1, 2, 3])) == pytest.approx(2 / 3)


def test_recall_zero():
    assert recall(np.array([7, 8]), np.array([1, 2])) == 0.0


def test_recall_empty_truth_raises():
    with pytest.raises(ValueError):
        recall(np.array([1]), np.array([]))


def test_mean_recall():
    returned = [np.array([1, 2]), np.array([5, 6])]
    truth = [np.array([1, 2]), np.array([5, 9])]
    assert mean_recall(returned, truth) == pytest.approx(0.75)


def test_mean_recall_validation():
    with pytest.raises(ValueError):
        mean_recall([np.array([1])], [])
    with pytest.raises(ValueError):
        mean_recall([], [])


def test_ground_truth_shapes():
    data = np.random.default_rng(0).normal(size=(50, 4)).astype(np.float32)
    ids, dists = ground_truth(data, data[:3], 5)
    assert ids.shape == (3, 5)
    assert dists.shape == (3, 5)


def test_ground_truth_self_first():
    data = np.random.default_rng(0).normal(size=(50, 4)).astype(np.float32)
    ids, dists = ground_truth(data, data[:3], 5)
    assert ids[:, 0].tolist() == [0, 1, 2]
    assert np.allclose(dists[:, 0], 0.0, atol=1e-5)


def test_ground_truth_sorted():
    data = np.random.default_rng(0).normal(size=(50, 4)).astype(np.float32)
    _, dists = ground_truth(data, data[:3], 10)
    assert np.all(np.diff(dists, axis=1) >= 0)


def test_recall_duplicate_truth_ids_deduped():
    # tie-heavy ground truth can carry repeated ids; each distinct true
    # neighbor may be credited at most once
    returned = np.array([1, 2, 3])
    truth = np.array([1, 1, 1])
    assert recall(returned, truth) == 1.0


def test_recall_duplicate_returned_ids_not_double_counted():
    returned = np.array([1, 1, 1])
    truth = np.array([1, 2, 3])
    assert recall(returned, truth) == pytest.approx(1 / 3)


def test_ground_truth_k_exceeds_n_raises():
    data = np.random.default_rng(0).normal(size=(10, 4)).astype(np.float32)
    with pytest.raises(ValueError, match="exceeds"):
        ground_truth(data, data[:2], 11)


def test_ground_truth_matches_per_query_exact_knn():
    from repro.core.distances import DistanceComputer

    gen = np.random.default_rng(3)
    data = gen.normal(size=(80, 6)).astype(np.float32)
    queries = gen.normal(size=(7, 6)).astype(np.float32)
    ids, dists = ground_truth(data, queries, 9)
    computer = DistanceComputer(data)
    for j in range(queries.shape[0]):
        ref_ids, ref_dists = computer.exact_knn(queries[j], 9)
        assert np.array_equal(ids[j], ref_ids)
        assert np.array_equal(dists[j], ref_dists)
