"""Unit tests for recall and ground truth."""

import numpy as np
import pytest

from repro.eval.metrics import ground_truth, mean_recall, recall


def test_recall_perfect():
    assert recall(np.array([1, 2, 3]), np.array([3, 2, 1])) == 1.0


def test_recall_partial():
    assert recall(np.array([1, 2, 9]), np.array([1, 2, 3])) == pytest.approx(2 / 3)


def test_recall_zero():
    assert recall(np.array([7, 8]), np.array([1, 2])) == 0.0


def test_recall_empty_truth_raises():
    with pytest.raises(ValueError):
        recall(np.array([1]), np.array([]))


def test_mean_recall():
    returned = [np.array([1, 2]), np.array([5, 6])]
    truth = [np.array([1, 2]), np.array([5, 9])]
    assert mean_recall(returned, truth) == pytest.approx(0.75)


def test_mean_recall_validation():
    with pytest.raises(ValueError):
        mean_recall([np.array([1])], [])
    with pytest.raises(ValueError):
        mean_recall([], [])


def test_ground_truth_shapes():
    data = np.random.default_rng(0).normal(size=(50, 4)).astype(np.float32)
    ids, dists = ground_truth(data, data[:3], 5)
    assert ids.shape == (3, 5)
    assert dists.shape == (3, 5)


def test_ground_truth_self_first():
    data = np.random.default_rng(0).normal(size=(50, 4)).astype(np.float32)
    ids, dists = ground_truth(data, data[:3], 5)
    assert ids[:, 0].tolist() == [0, 1, 2]
    assert np.allclose(dists[:, 0], 0.0, atol=1e-5)


def test_ground_truth_sorted():
    data = np.random.default_rng(0).normal(size=(50, 4)).astype(np.float32)
    _, dists = ground_truth(data, data[:3], 10)
    assert np.all(np.diff(dists, axis=1) >= 0)
