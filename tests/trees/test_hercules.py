"""Unit tests for the Hercules EAPCA tree."""

import numpy as np
import pytest

from repro.trees.hercules import HerculesTree


@pytest.fixture()
def data():
    gen = np.random.default_rng(4)
    centers = gen.normal(size=(4, 16)) * 3
    return (centers[gen.integers(4, size=200)] + 0.3 * gen.normal(size=(200, 16))).astype(
        np.float32
    )


def test_rejects_bad_leaf_size(data):
    with pytest.raises(ValueError):
        HerculesTree.build(data, 1)


def test_leaves_partition(data):
    tree = HerculesTree.build(data, 32, n_segments=4)
    all_ids = np.concatenate([leaf.point_ids for leaf in tree.leaves()])
    assert sorted(all_ids.tolist()) == list(range(200))


def test_leaf_size_bound(data):
    tree = HerculesTree.build(data, 32, n_segments=4)
    for leaf in tree.leaves():
        assert leaf.point_ids.size <= 32


def test_lower_bound_admissible(data):
    """The EAPCA bound never exceeds the true distance to any leaf member."""
    tree = HerculesTree.build(data, 32, n_segments=4)
    gen = np.random.default_rng(10)
    for _ in range(5):
        query = gen.normal(size=16)
        for leaf in tree.leaves():
            lb = leaf.synopsis.lower_bound(query)
            true_min = np.linalg.norm(
                data[leaf.point_ids].astype(np.float64) - query, axis=1
            ).min()
            assert lb <= true_min + 1e-9


def test_rank_leaves_sorted(data):
    tree = HerculesTree.build(data, 32, n_segments=4)
    ranked = tree.rank_leaves(np.zeros(16))
    bounds = [b for b, _ in ranked]
    assert bounds == sorted(bounds)


def test_own_point_leaf_has_zero_bound(data):
    tree = HerculesTree.build(data, 32, n_segments=4)
    ranked = tree.rank_leaves(data[0])
    best_bound, best_leaf = ranked[0]
    assert best_bound == pytest.approx(0.0, abs=1e-6)


def test_segments_capped_by_dim():
    data = np.random.default_rng(0).normal(size=(50, 3)).astype(np.float32)
    tree = HerculesTree.build(data, 10, n_segments=16)
    assert tree.n_segments == 3


def test_memory_bytes(data):
    tree = HerculesTree.build(data, 32, n_segments=4)
    assert tree.memory_bytes() > 0
