"""Unit tests for randomized truncated K-D trees."""

import numpy as np
import pytest

from repro.trees.kdtree import KDForest, KDTree


@pytest.fixture()
def data():
    gen = np.random.default_rng(0)
    return gen.normal(size=(200, 8)).astype(np.float32)


def test_rejects_bad_leaf_size(data):
    with pytest.raises(ValueError):
        KDTree.build(data, np.arange(200), 0, np.random.default_rng(0))


def test_leaves_partition_ids(data):
    tree = KDTree.build(data, np.arange(200), 10, np.random.default_rng(0))
    leaves = tree.leaves()
    all_ids = np.concatenate(leaves)
    assert sorted(all_ids.tolist()) == list(range(200))


def test_leaf_sizes_bounded(data):
    tree = KDTree.build(data, np.arange(200), 10, np.random.default_rng(0))
    for leaf in tree.leaves():
        assert leaf.size <= 10


def test_leaf_of_contains_own_point(data):
    tree = KDTree.build(data, np.arange(200), 10, np.random.default_rng(0))
    for i in (0, 57, 199):
        assert i in tree.leaf_of(data[i])


def test_search_candidates_returns_enough(data):
    tree = KDTree.build(data, np.arange(200), 10, np.random.default_rng(0))
    cands = tree.search_candidates(data[3], 30)
    assert cands.size >= 30


def test_search_candidates_finds_near_points(data):
    tree = KDTree.build(data, np.arange(200), 10, np.random.default_rng(1))
    query = data[42]
    cands = tree.search_candidates(query, 40)
    assert 42 in cands


def test_subset_tree(data):
    ids = np.arange(50, 150)
    tree = KDTree.build(data, ids, 8, np.random.default_rng(0))
    all_ids = np.concatenate(tree.leaves())
    assert set(all_ids.tolist()) == set(ids.tolist())


def test_constant_data_degenerate_split():
    data = np.ones((40, 4), dtype=np.float32)
    tree = KDTree.build(data, np.arange(40), 5, np.random.default_rng(0))
    assert sum(leaf.size for leaf in tree.leaves()) == 40


def test_memory_bytes_positive(data):
    tree = KDTree.build(data, np.arange(200), 10, np.random.default_rng(0))
    assert tree.memory_bytes() > 0


def test_forest_requires_trees():
    with pytest.raises(ValueError):
        KDForest([])


def test_forest_build_and_search(data):
    forest = KDForest.build(data, 3, 10, np.random.default_rng(0))
    cands = forest.search_candidates(data[7], 20)
    assert 7 in cands


def test_forest_trees_are_randomized(data):
    forest = KDForest.build(data, 2, 10, np.random.default_rng(0))
    l0 = [tuple(sorted(leaf.tolist())) for leaf in forest.trees[0].leaves()]
    l1 = [tuple(sorted(leaf.tolist())) for leaf in forest.trees[1].leaves()]
    assert l0 != l1


def test_forest_initial_neighbor_lists_shape(data):
    forest = KDForest.build(data, 2, 10, np.random.default_rng(0))
    lists = forest.initial_neighbor_lists(200, 6, np.random.default_rng(0))
    assert lists.shape == (200, 6)
    for node in range(200):
        assert node not in lists[node]


def test_forest_initial_lists_prefer_leafmates(data):
    forest = KDForest.build(data, 2, 20, np.random.default_rng(0))
    lists = forest.initial_neighbor_lists(200, 6, np.random.default_rng(0))
    leafmates = set()
    for tree in forest.trees:
        for leaf in tree.leaves():
            if 0 in leaf:
                leafmates.update(leaf.tolist())
    overlap = len(set(lists[0].tolist()) & leafmates)
    assert overlap >= 3
