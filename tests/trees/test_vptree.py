"""Unit tests for vantage-point trees."""

import numpy as np
import pytest

from repro.trees.vptree import VPTree


@pytest.fixture()
def data():
    gen = np.random.default_rng(3)
    return gen.normal(size=(150, 6)).astype(np.float32)


def test_rejects_bad_leaf_size(data):
    with pytest.raises(ValueError):
        VPTree.build(data, 0, np.random.default_rng(0))


def test_search_finds_self(data):
    tree = VPTree.build(data, 8, np.random.default_rng(0))
    found = tree.search(data[12], k=5, max_examined=1000)
    assert found[0] == 12


def test_search_quality_vs_exact(data):
    tree = VPTree.build(data, 8, np.random.default_rng(0))
    gen = np.random.default_rng(9)
    query = gen.normal(size=6)
    exact = np.argsort(np.linalg.norm(data - query, axis=1))[:5]
    found = tree.search(query, k=5, max_examined=2000)
    assert len(set(exact.tolist()) & set(found.tolist())) >= 4


def test_budget_limits_examinations(data):
    tree = VPTree.build(data, 8, np.random.default_rng(0))
    tree.search(np.zeros(6), k=3, max_examined=20)
    assert tree.last_examined <= 20 + 8  # may finish the current leaf


def test_search_returns_at_most_k(data):
    tree = VPTree.build(data, 8, np.random.default_rng(0))
    assert tree.search(np.zeros(6), k=3).size <= 3


def test_duplicate_points_leaf():
    data = np.ones((20, 4), dtype=np.float32)
    tree = VPTree.build(data, 4, np.random.default_rng(0))
    found = tree.search(np.ones(4), k=3, max_examined=100)
    assert found.size == 3


def test_memory_bytes(data):
    tree = VPTree.build(data, 8, np.random.default_rng(0))
    assert tree.memory_bytes() > 0
