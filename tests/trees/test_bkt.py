"""Unit tests for balanced k-means trees."""

import numpy as np
import pytest

from repro.trees.bkt import BKForest, BKTree


@pytest.fixture()
def data():
    gen = np.random.default_rng(1)
    centers = gen.normal(size=(5, 6)) * 4
    return (centers[gen.integers(5, size=150)] + 0.3 * gen.normal(size=(150, 6))).astype(
        np.float32
    )


def test_rejects_bad_params(data):
    with pytest.raises(ValueError):
        BKTree.build(data, np.arange(150), 10, 1, np.random.default_rng(0))
    with pytest.raises(ValueError):
        BKTree.build(data, np.arange(150), 0, 4, np.random.default_rng(0))


def test_leaves_partition(data):
    tree = BKTree.build(data, np.arange(150), 12, 4, np.random.default_rng(0))
    all_ids = np.concatenate(tree.leaves())
    assert sorted(all_ids.tolist()) == list(range(150))


def test_leaf_size_bound(data):
    tree = BKTree.build(data, np.arange(150), 12, 4, np.random.default_rng(0))
    for leaf in tree.leaves():
        assert leaf.size <= 12


def test_search_candidates_nearby(data):
    tree = BKTree.build(data, np.arange(150), 12, 4, np.random.default_rng(0))
    cands = tree.search_candidates(data[10], 20)
    assert 10 in cands


def test_search_returns_requested_volume(data):
    tree = BKTree.build(data, np.arange(150), 12, 4, np.random.default_rng(0))
    cands = tree.search_candidates(data[0], 40)
    assert cands.size >= 30


def test_memory_bytes(data):
    tree = BKTree.build(data, np.arange(150), 12, 4, np.random.default_rng(0))
    assert tree.memory_bytes() > 0


def test_forest(data):
    forest = BKForest.build(data, 2, 12, 4, np.random.default_rng(0))
    cands = forest.search_candidates(data[5], 20)
    assert 5 in cands
    assert forest.memory_bytes() > 0


def test_forest_requires_trees():
    with pytest.raises(ValueError):
        BKForest([])


def test_tiny_dataset():
    data = np.random.default_rng(0).normal(size=(5, 3)).astype(np.float32)
    tree = BKTree.build(data, np.arange(5), 2, 4, np.random.default_rng(0))
    assert sum(leaf.size for leaf in tree.leaves()) == 5
