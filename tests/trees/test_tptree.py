"""Unit tests for trinary-projection trees."""

import numpy as np
import pytest

from repro.trees.tptree import TPTree


@pytest.fixture()
def data():
    gen = np.random.default_rng(2)
    return gen.normal(size=(180, 10)).astype(np.float32)


def test_rejects_bad_leaf_size(data):
    with pytest.raises(ValueError):
        TPTree.build(data, 0, np.random.default_rng(0))


def test_leaves_partition(data):
    tree = TPTree.build(data, 20, np.random.default_rng(0))
    all_ids = np.concatenate(tree.leaves())
    assert sorted(all_ids.tolist()) == list(range(180))


def test_leaf_size_bound(data):
    tree = TPTree.build(data, 20, np.random.default_rng(0))
    for leaf in tree.leaves():
        assert leaf.size <= 20


def test_leaf_of_own_point(data):
    tree = TPTree.build(data, 20, np.random.default_rng(0))
    for i in (0, 90, 179):
        assert i in tree.leaf_of(data[i])


def test_partitions_differ_across_seeds(data):
    t0 = TPTree.build(data, 20, np.random.default_rng(0))
    t1 = TPTree.build(data, 20, np.random.default_rng(1))
    l0 = sorted(tuple(sorted(l.tolist())) for l in t0.leaves())
    l1 = sorted(tuple(sorted(l.tolist())) for l in t1.leaves())
    assert l0 != l1


def test_subset(data):
    ids = np.arange(40, 120)
    tree = TPTree.build(data, 15, np.random.default_rng(0), ids=ids)
    assert set(np.concatenate(tree.leaves()).tolist()) == set(ids.tolist())


def test_low_dim_data():
    data = np.random.default_rng(0).normal(size=(50, 2)).astype(np.float32)
    tree = TPTree.build(data, 10, np.random.default_rng(0))
    assert sum(leaf.size for leaf in tree.leaves()) == 50


def test_constant_data():
    data = np.zeros((30, 5), dtype=np.float32)
    tree = TPTree.build(data, 8, np.random.default_rng(0))
    assert sum(leaf.size for leaf in tree.leaves()) == 30


def test_memory_bytes(data):
    tree = TPTree.build(data, 20, np.random.default_rng(0))
    assert tree.memory_bytes() > 0
