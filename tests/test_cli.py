"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_methods_lists_all(capsys):
    assert main(["methods"]) == 0
    out = capsys.readouterr().out
    for name in ("HNSW", "ELPIS", "Vamana", "SPTAG-BKT"):
        assert name in out


def test_datasets_lists_hardness(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "seismic" in out and "hard" in out
    assert "sift" in out and "easy" in out


def test_demo_small(capsys):
    code = main([
        "demo", "--method", "HCNNG", "--dataset", "deep",
        "--n", "400", "--queries", "3", "--beam-width", "40",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "recall@10" in out


def test_complexity(capsys):
    assert main(["complexity", "--dataset", "randpow0", "--n", "500"]) == 0
    assert "LID" in capsys.readouterr().out


def test_recommend_small_easy(capsys):
    assert main(["recommend", "--n", "1000"]) == 0
    assert "HNSW" in capsys.readouterr().out


def test_recommend_hard(capsys):
    assert main(["recommend", "--n", "1000", "--hard"]) == 0
    out = capsys.readouterr().out
    assert "ELPIS" in out or "SPTAG" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_parser_builds():
    parser = build_parser()
    args = parser.parse_args(["demo", "--n", "123"])
    assert args.n == 123


def test_demo_stats_flag(capsys):
    code = main(
        ["demo", "--method", "NSW", "--n", "250", "--queries", "4", "--stats"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "p95 latency" in out
    assert "throughput (QPS)" in out


def test_demo_workers_flag(capsys):
    code = main(
        ["demo", "--method", "NSW", "--n", "250", "--queries", "4",
         "--workers", "2", "--stats"]
    )
    assert code == 0
    assert "workers" in capsys.readouterr().out


def test_parser_accepts_workers():
    parser = build_parser()
    args = parser.parse_args(["demo", "--workers", "4", "--stats"])
    assert args.workers == 4
    assert args.stats is True


def test_demo_disk_tier(capsys):
    code = main(
        ["demo", "--method", "Vamana", "--n", "300", "--queries", "4",
         "--beam-width", "40", "--tier-mode", "disk", "--stats"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "disk tier:" in out
    assert "memory-mapped" in out
    assert "total page reads" in out
    assert "recall@10" in out


def test_demo_disk_tier_rejects_non_capable_method(capsys):
    code = main(
        ["demo", "--method", "HNSW", "--n", "250", "--queries", "3",
         "--tier-mode", "disk"]
    )
    assert code == 2
    assert "cannot answer from a disk tier" in capsys.readouterr().out
