"""Unit tests for LID and LRC (Figure 4's measures)."""

import numpy as np
import pytest

from repro.datasets.complexity import dataset_complexity, lid, lrc
from repro.datasets.synthetic import generate


def test_lid_of_uniform_line():
    """Points uniform on a 1-D manifold have LID near 1."""
    gen = np.random.default_rng(0)
    data = np.sort(gen.uniform(size=2000))[:, None] * np.ones((1, 8))
    profile = dataset_complexity(data, k=20, n_samples=50)
    assert 0.5 < profile.mean_lid < 2.0


def test_lid_grows_with_dimension():
    gen = np.random.default_rng(0)
    lids = []
    for dim in (2, 8, 32):
        data = gen.normal(size=(1500, dim))
        profile = dataset_complexity(data, k=50, n_samples=60)
        lids.append(profile.mean_lid)
    assert lids == sorted(lids)


def test_lrc_higher_for_clustered():
    gen = np.random.default_rng(0)
    uniform = gen.uniform(size=(800, 16))
    centers = gen.normal(size=(5, 16)) * 5
    clustered = centers[gen.integers(5, size=800)] + 0.1 * gen.normal(size=(800, 16))
    p_uniform = dataset_complexity(uniform, k=20, n_samples=60)
    p_clustered = dataset_complexity(clustered, k=20, n_samples=60)
    assert p_clustered.mean_lrc > p_uniform.mean_lrc


def test_figure4_hardness_ordering():
    """Easy stand-ins (sift/deep) must have lower LID and higher LRC than
    hard ones (seismic/randpow0) — the paper's Figure 4 ordering."""
    profiles = {
        name: dataset_complexity(generate(name, 1200, seed=1), k=50, n_samples=60)
        for name in ("sift", "deep", "seismic", "randpow0")
    }
    for easy in ("sift", "deep"):
        for hard in ("seismic", "randpow0"):
            assert profiles[easy].mean_lid < profiles[hard].mean_lid
            assert profiles[easy].mean_lrc > profiles[hard].mean_lrc


def test_lid_handles_zero_distances():
    values = lid(np.array([[0.0, 0.0, 1.0]]))
    assert np.isfinite(values[0]) or np.isnan(values[0])


def test_lrc_zero_distk_is_nan():
    values = lrc(np.array([[0.0, 0.0]]), np.array([1.0]))
    assert np.isnan(values[0])


def test_k_must_be_below_n():
    with pytest.raises(ValueError):
        dataset_complexity(np.zeros((10, 3)), k=10)
