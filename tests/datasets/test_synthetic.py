"""Unit tests for dataset generators and size tiers."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    DATASET_GENERATORS,
    TIER_SIZES,
    clustered_gaussian,
    dataset_key_seed,
    generate,
    power_law,
    tier_size,
)


def test_all_named_generators_produce_shape():
    for name, spec in DATASET_GENERATORS.items():
        data = generate(name, 64, seed=0)
        assert data.shape == (64, spec.dim), name
        assert data.dtype == np.float32, name


def test_generate_unknown_name():
    with pytest.raises(KeyError):
        generate("nope", 10)


def test_generate_deterministic():
    a = generate("deep", 32, seed=5)
    b = generate("deep", 32, seed=5)
    assert np.array_equal(a, b)


def test_generate_seed_changes_data():
    a = generate("deep", 32, seed=5)
    b = generate("deep", 32, seed=6)
    assert not np.array_equal(a, b)


def test_generate_stable_across_processes():
    """Regression: the per-dataset seed offset must not depend on the
    process's string-hash salt (PYTHONHASHSEED).  ``hash(key)`` did, which
    made every run of the suite index different data."""
    import os
    import pathlib
    import subprocess
    import sys

    src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
    script = (
        "from repro.datasets.synthetic import generate;"
        "print(generate('deep', 16, seed=5).sum())"
    )
    outputs = set()
    for hash_seed in ("0", "1", "42"):
        env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED=hash_seed)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.add(proc.stdout.strip())
    assert len(outputs) == 1, f"data varies with PYTHONHASHSEED: {outputs}"
    assert outputs == {str(generate("deep", 16, seed=5).sum())}


def test_dataset_key_seed_distinct_per_dataset():
    seeds = {dataset_key_seed(name) for name in DATASET_GENERATORS}
    assert len(seeds) == len(DATASET_GENERATORS)


def test_clustered_gaussian_validation():
    with pytest.raises(ValueError):
        clustered_gaussian(10, 4, 2, 8, 0.1, 0.1, np.random.default_rng(0))


def test_clustered_gaussian_intrinsic_subspace():
    """With no noise, points lie exactly in an intrinsic_dim subspace."""
    data = clustered_gaussian(
        200, 16, 5, 3, 0.5, 0.0, np.random.default_rng(0)
    )
    rank = np.linalg.matrix_rank(data.astype(np.float64), tol=1e-4)
    assert rank <= 3


def test_heavy_tail_increases_spread():
    light = clustered_gaussian(500, 8, 3, 4, 0.3, 0.2, np.random.default_rng(0))
    heavy = clustered_gaussian(
        500, 8, 3, 4, 0.3, 0.2, np.random.default_rng(0), heavy_tail=2.0
    )
    assert np.abs(heavy).max() > np.abs(light).max()


def test_power_law_validation():
    with pytest.raises(ValueError):
        power_law(10, 4, -1, np.random.default_rng(0))


def test_power_law_zero_is_uniform():
    data = power_law(5000, 2, 0.0, np.random.default_rng(0))
    assert data.min() >= 0 and data.max() <= 1
    assert abs(data.mean() - 0.5) < 0.02


def test_power_law_skew_increases_with_exponent():
    means = [
        power_law(5000, 2, a, np.random.default_rng(0)).mean() for a in (0, 5, 50)
    ]
    assert means == sorted(means)  # mass shifts toward 1


def test_tier_sizes_monotone():
    sizes = [TIER_SIZES[t] for t in ("1M", "25GB", "100GB", "1B")]
    assert sizes == sorted(sizes)


def test_tier_size_scaling():
    assert tier_size("1M", scale=2.0) == 2 * TIER_SIZES["1M"]
    assert tier_size("1M", scale=1e-9) == 64  # floor


def test_tier_size_unknown():
    with pytest.raises(KeyError):
        tier_size("10TB")
