"""Round-trip tests for the fvecs/bvecs/ivecs formats."""

import numpy as np
import pytest

from repro.datasets.loaders import (
    read_bvecs,
    read_fvecs,
    read_ivecs,
    write_bvecs,
    write_fvecs,
    write_ivecs,
)


def test_fvecs_roundtrip(tmp_path):
    data = np.random.default_rng(0).normal(size=(20, 7)).astype(np.float32)
    path = tmp_path / "x.fvecs"
    write_fvecs(path, data)
    assert np.array_equal(read_fvecs(path), data)


def test_fvecs_limit(tmp_path):
    data = np.random.default_rng(0).normal(size=(20, 7)).astype(np.float32)
    path = tmp_path / "x.fvecs"
    write_fvecs(path, data)
    assert read_fvecs(path, limit=5).shape == (5, 7)


def test_bvecs_roundtrip(tmp_path):
    data = np.random.default_rng(0).integers(0, 256, size=(12, 5)).astype(np.uint8)
    path = tmp_path / "x.bvecs"
    write_bvecs(path, data)
    assert np.array_equal(read_bvecs(path), data)


def test_ivecs_roundtrip(tmp_path):
    data = np.random.default_rng(0).integers(0, 1000, size=(8, 10)).astype(np.int32)
    path = tmp_path / "gt.ivecs"
    write_ivecs(path, data)
    assert np.array_equal(read_ivecs(path), data)


def test_empty_file(tmp_path):
    path = tmp_path / "empty.fvecs"
    path.write_bytes(b"")
    assert read_fvecs(path).size == 0


def test_corrupt_record_size(tmp_path):
    path = tmp_path / "bad.fvecs"
    path.write_bytes(np.int32(3).tobytes() + b"\x00" * 7)  # truncated
    with pytest.raises(ValueError):
        read_fvecs(path)


def test_inconsistent_dims(tmp_path):
    path = tmp_path / "bad.fvecs"
    rec1 = np.int32(1).tobytes() + np.float32(1.5).tobytes()
    rec2 = np.int32(2).tobytes() + np.float32(1.5).tobytes()[:4]
    path.write_bytes(rec1 + rec2)
    with pytest.raises(ValueError):
        read_fvecs(path)


def test_single_row_roundtrip(tmp_path):
    data = np.arange(4, dtype=np.float32)
    path = tmp_path / "one.fvecs"
    write_fvecs(path, data)
    assert np.array_equal(read_fvecs(path), data[None, :])
