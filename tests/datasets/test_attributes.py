"""Unit tests for attribute generation and predicate specificity."""

import numpy as np
import pytest

from repro.datasets.attributes import (
    AttributeSet,
    Predicate,
    label_predicates,
    point_attributes,
    query_predicates,
)


def test_point_attributes_shapes_and_ranges():
    attrs = point_attributes("sift", 500, seed=0, n_labels=6)
    assert attrs.labels.shape == (500,)
    assert attrs.values.shape == (500,)
    assert attrs.labels.dtype == np.int64
    assert attrs.labels.min() >= 0 and attrs.labels.max() < 6
    assert attrs.values.min() >= 0.0 and attrs.values.max() < 1.0
    assert attrs.n == 500


def test_point_attributes_deterministic_and_seeded():
    a = point_attributes("sift", 300, seed=4)
    b = point_attributes("sift", 300, seed=4)
    c = point_attributes("sift", 300, seed=5)
    d = point_attributes("deep", 300, seed=4)
    assert np.array_equal(a.labels, b.labels)
    assert np.array_equal(a.values, b.values)
    assert not np.array_equal(a.labels, c.labels) or not np.array_equal(
        a.values, c.values
    )
    assert not np.array_equal(a.values, d.values)


def test_point_attributes_labels_zipf_ordered():
    """Label popularity must follow the 1/rank weights, so categorical
    filters naturally span a wide specificity range."""
    attrs = point_attributes("sift", 20_000, seed=0, n_labels=5)
    counts = np.bincount(attrs.labels, minlength=5)
    assert counts[0] > counts[2] > counts[4]


def test_point_attributes_validation():
    with pytest.raises(ValueError):
        point_attributes("sift", 0)
    with pytest.raises(ValueError):
        point_attributes("sift", 10, n_labels=0)


def test_query_predicates_specificity_controls_match_fraction():
    attrs = point_attributes("sift", 10_000, seed=1)
    for spec in (0.1, 0.5, 0.9):
        preds = query_predicates("sift", 50, spec, seed=1)
        fractions = [p.mask(attrs).mean() for p in preds]
        assert abs(np.mean(fractions) - spec) < 0.03, (spec, np.mean(fractions))


def test_query_predicates_full_specificity_matches_everything():
    attrs = point_attributes("sift", 1000, seed=1)
    for p in query_predicates("sift", 5, 1.0, seed=1):
        assert p.mask(attrs).all()


def test_query_predicates_validation():
    with pytest.raises(ValueError):
        query_predicates("sift", 5, 0.0)
    with pytest.raises(ValueError):
        query_predicates("sift", 5, 1.5)
    with pytest.raises(ValueError):
        query_predicates("sift", 0, 0.5)


def test_query_predicates_deterministic_per_specificity():
    a = query_predicates("sift", 20, 0.3, seed=2)
    b = query_predicates("sift", 20, 0.3, seed=2)
    c = query_predicates("sift", 20, 0.31, seed=2)
    assert a == b
    assert a != c  # different specificity draws an independent stream


def test_label_predicates_filter_to_one_label():
    attrs = point_attributes("deep", 2000, seed=3)
    preds = label_predicates("deep", 25, attrs, seed=3)
    assert len(preds) == 25
    for p in preds:
        mask = p.mask(attrs)
        assert mask.any()
        assert np.unique(attrs.labels[mask]).tolist() == [p.label]


def test_predicate_mask_combines_range_and_label():
    attrs = AttributeSet(
        labels=np.array([0, 1, 0, 1], dtype=np.int64),
        values=np.array([0.1, 0.2, 0.8, 0.9]),
    )
    assert Predicate(0.0, 0.5).mask(attrs).tolist() == [True, True, False, False]
    assert Predicate(0.0, 0.5, label=1).mask(attrs).tolist() == [
        False, True, False, False,
    ]


def test_attributes_stable_across_processes():
    """PR 5 discipline: attribute and predicate streams must not depend on
    the process's string-hash salt (PYTHONHASHSEED)."""
    import os
    import pathlib
    import subprocess
    import sys

    src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
    script = (
        "from repro.datasets.attributes import point_attributes, query_predicates;"
        "a = point_attributes('sift', 64, seed=5);"
        "p = query_predicates('sift', 8, 0.4, seed=5);"
        "print(int(a.labels.sum()), float(a.values.sum()),"
        " sum(q.lo for q in p))"
    )
    outputs = set()
    for hash_seed in ("0", "1", "42"):
        env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED=hash_seed)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.add(proc.stdout.strip())
    assert len(outputs) == 1, f"attributes vary with PYTHONHASHSEED: {outputs}"
