"""Unit tests for query workload generators."""

import numpy as np
import pytest

from repro.datasets.queries import (
    NOISE_LEVELS,
    distribution_queries,
    held_out_split,
    noise_queries,
)


@pytest.fixture()
def data():
    return np.random.default_rng(0).normal(size=(100, 6)).astype(np.float32)


def test_held_out_disjoint(data):
    index_set, queries = held_out_split(data, 10, np.random.default_rng(0))
    assert index_set.shape == (90, 6)
    assert queries.shape == (10, 6)
    # no query row appears in the index set
    index_rows = {row.tobytes() for row in index_set}
    assert all(q.tobytes() not in index_rows for q in queries)


def test_held_out_validation(data):
    with pytest.raises(ValueError):
        held_out_split(data, 0, np.random.default_rng(0))
    with pytest.raises(ValueError):
        held_out_split(data, 100, np.random.default_rng(0))


def test_noise_queries_shape(data):
    queries = noise_queries(data, 7, 0.05, np.random.default_rng(0))
    assert queries.shape == (7, 6)
    assert queries.dtype == np.float32


def test_noise_queries_validation(data):
    with pytest.raises(ValueError):
        noise_queries(data, 5, 0.0, np.random.default_rng(0))


def test_noise_grows_with_sigma(data):
    """Higher noise level => queries farther from their source vectors."""
    distances = {}
    for label, sigma_sq in NOISE_LEVELS.items():
        rng = np.random.default_rng(1)
        picks = rng.choice(100, size=50, replace=False)
        queries = noise_queries(data[picks], 50, sigma_sq, np.random.default_rng(2))
        distances[label] = np.linalg.norm(queries - data[picks][:50], axis=1).mean()
    values = [distances[k] for k in ("1%", "2%", "5%", "10%")]
    assert values == sorted(values)


def test_distribution_queries_match_dim():
    queries = distribution_queries("deep", 5)
    assert queries.shape == (5, 96)


def test_distribution_queries_differ_from_dataset():
    from repro.datasets.synthetic import generate

    data = generate("deep", 5, seed=0)
    queries = distribution_queries("deep", 5)
    assert not np.array_equal(data, queries)


def test_distribution_queries_unknown():
    with pytest.raises(KeyError):
        distribution_queries("nope", 5)
