"""Unit tests for query workload generators."""

import numpy as np
import pytest

from repro.datasets.queries import (
    NOISE_LEVELS,
    distribution_queries,
    held_out_split,
    noise_queries,
)


@pytest.fixture()
def data():
    return np.random.default_rng(0).normal(size=(100, 6)).astype(np.float32)


def test_held_out_disjoint(data):
    index_set, queries = held_out_split(data, 10, np.random.default_rng(0))
    assert index_set.shape == (90, 6)
    assert queries.shape == (10, 6)
    # no query row appears in the index set
    index_rows = {row.tobytes() for row in index_set}
    assert all(q.tobytes() not in index_rows for q in queries)


def test_held_out_validation(data):
    with pytest.raises(ValueError):
        held_out_split(data, 0, np.random.default_rng(0))
    with pytest.raises(ValueError):
        held_out_split(data, 100, np.random.default_rng(0))


def test_noise_queries_shape(data):
    queries = noise_queries(data, 7, 0.05, np.random.default_rng(0))
    assert queries.shape == (7, 6)
    assert queries.dtype == np.float32


def test_noise_queries_validation(data):
    with pytest.raises(ValueError):
        noise_queries(data, 5, 0.0, np.random.default_rng(0))


def test_noise_grows_with_sigma(data):
    """Higher noise level => queries farther from their source vectors."""
    distances = {}
    for label, sigma_sq in NOISE_LEVELS.items():
        rng = np.random.default_rng(1)
        picks = rng.choice(100, size=50, replace=False)
        queries = noise_queries(data[picks], 50, sigma_sq, np.random.default_rng(2))
        distances[label] = np.linalg.norm(queries - data[picks][:50], axis=1).mean()
    values = [distances[k] for k in ("1%", "2%", "5%", "10%")]
    assert values == sorted(values)


def test_noise_queries_scale_is_per_dimension():
    """Regression: the noise scale was the *global* scalar ``data.std()``,
    so anisotropic data got isotropic noise — swamping narrow dimensions
    and barely moving wide ones.  The docstring promises per-dimension
    scaling; verify the perturbation spread tracks each dimension's std."""
    gen = np.random.default_rng(7)
    n = 4000
    # dimension 0 is ~100x wider than dimension 1
    data = np.stack(
        [100.0 * gen.normal(size=n), 1.0 * gen.normal(size=n)], axis=1
    ).astype(np.float32)
    queries = noise_queries(data, n, 0.04, np.random.default_rng(8))
    # replay the internal pick stream to isolate the added perturbation
    picks = np.random.default_rng(8).choice(n, size=n, replace=True)
    noise = queries - data[picks]
    per_dim = noise.std(axis=0)
    # with per-dimension scaling, the noise std ratio matches the data's
    ratio = per_dim[0] / per_dim[1]
    assert 50 < ratio < 200, f"noise not scaled per dimension: ratio={ratio}"


def test_noise_queries_constant_dimension_gets_unit_scale():
    """A zero-std (constant) dimension must still receive noise at unit
    scale — the old ``float(std) or 1.0`` guard only fired when the
    *global* std was zero, silently mis-scaling mixed datasets."""
    gen = np.random.default_rng(9)
    data = np.stack(
        [np.full(500, 3.0), gen.normal(size=500)], axis=1
    ).astype(np.float32)
    queries = noise_queries(data, 500, 0.09, np.random.default_rng(10))
    # constant dimension: perturbation is pure unit-scale noise, sigma=0.3
    spread = (queries[:, 0] - 3.0).std()
    assert 0.25 < spread < 0.35

    constant = np.full((100, 3), 2.0, dtype=np.float32)
    q = noise_queries(constant, 50, 0.04, np.random.default_rng(11))
    assert np.all(q != 2.0)  # noise applied, not silently zeroed
    assert np.isfinite(q).all()


def test_distribution_queries_match_dim():
    queries = distribution_queries("deep", 5)
    assert queries.shape == (5, 96)


def test_distribution_queries_differ_from_dataset():
    from repro.datasets.synthetic import generate

    data = generate("deep", 5, seed=0)
    queries = distribution_queries("deep", 5)
    assert not np.array_equal(data, queries)


def test_distribution_queries_unknown():
    with pytest.raises(KeyError):
        distribution_queries("nope", 5)
