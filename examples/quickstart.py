"""Quickstart: build an index, search it, check the answer quality.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import create_index, generate, ground_truth, recall

N_POINTS = 3000
N_QUERIES = 10
K = 10


def main() -> None:
    # 1. Get vectors: a difficulty-matched stand-in for the paper's Deep1B.
    data = generate("deep", N_POINTS, seed=0)
    queries = generate("deep", N_QUERIES, seed=123)
    print(f"dataset: {data.shape[0]} vectors x {data.shape[1]} dims")

    # 2. Build a graph index.  Any paper method name works here:
    #    HNSW, NSG, Vamana, ELPIS, SPTAG-BKT, HCNNG, ...
    index = create_index("HNSW", seed=1).build(data)
    report = index.build_report
    print(
        f"built {index.name} in {report.wall_time_s:.2f}s "
        f"({report.distance_calls:,} distance calculations, "
        f"{index.memory_bytes() / 1024:.0f} KiB)"
    )

    # 3. Answer queries and compare to exact ground truth.
    truth, _ = ground_truth(data, queries, K)
    recalls, calls = [], []
    for query, true_ids in zip(queries, truth):
        result = index.search(query, k=K, beam_width=64)
        recalls.append(recall(result.ids, true_ids))
        calls.append(result.distance_calls)
    print(
        f"recall@{K}: {np.mean(recalls):.3f}  "
        f"(mean {np.mean(calls):.0f} distance calculations per query, "
        f"vs {N_POINTS} for a serial scan)"
    )


if __name__ == "__main__":
    main()
