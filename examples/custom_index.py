"""Compose a brand-new index from the paradigm toolkit.

The library factors graph-based search into the paper's five paradigms, so
new combinations are one-liners: here we assemble an index the paper never
evaluated — incremental insertion with MOND diversification and K-D-tree
seed selection — and compare it against HNSW (II + RND + SN).

Run:  python examples/custom_index.py
"""

import numpy as np

from repro import build_ii_graph, create_index, generate, ground_truth
from repro.core.beam_search import beam_search
from repro.core.distances import DistanceComputer
from repro.core.seeds import get_seed_strategy
from repro.eval.runner import sweep_beam_widths
from repro.indexes.base import BaseGraphIndex

N_POINTS = 2500


class MondKDIndex(BaseGraphIndex):
    """II construction + MOND pruning + KD seed selection (a new combo)."""

    name = "II+MOND+KD"

    def __init__(self, max_degree=24, ef_construction=64, theta=60.0, seed=0):
        super().__init__(seed, default_beam_width=64)
        self.max_degree = max_degree
        self.ef_construction = ef_construction
        self.theta = theta
        self._seeds = get_seed_strategy("KD", n_seeds=16)

    def _build(self, rng):
        result = build_ii_graph(
            self.computer,
            max_degree=self.max_degree,
            beam_width=self.ef_construction,
            diversify="mond",
            diversify_params={"theta_degrees": self.theta},
            rng=rng,
            track_pruning=False,
        )
        self.graph = result.graph
        self._seeds.fit(self.computer, self.graph, rng)

    def _query_seeds(self, query):
        return self._seeds.select(query, self._query_rng)


def main() -> None:
    data = generate("sift", N_POINTS, seed=0)
    queries = generate("sift", 8, seed=777)
    truth, _ = ground_truth(data, queries, 10)

    for index in (MondKDIndex(seed=1), create_index("HNSW", seed=1)):
        index.build(data)
        curve = sweep_beam_widths(
            index, queries, truth, k=10, beam_widths=(20, 60, 160)
        )
        points = "  ".join(
            f"L={p.beam_width}: r={p.recall:.2f}/{p.distance_calls:.0f}dc"
            for p in curve
        )
        print(f"{index.name:12s} build={index.build_report.wall_time_s:5.1f}s  {points}")
    print(
        "\nEvery paradigm of the taxonomy (Section 3) is a pluggable part: "
        "swap the diversifier, the seed strategy, or the construction loop."
    )


if __name__ == "__main__":
    main()
