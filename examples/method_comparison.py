"""Compare several methods' recall/efficiency tradeoffs on one dataset.

A scaled-down rendition of the paper's Figure 12 protocol: build each
method once, sweep the query beam width, and print the tradeoff curve
of recall vs distance calculations.

Run:  python examples/method_comparison.py [dataset] [n_points]
"""

import sys

import numpy as np

from repro import create_index, generate, ground_truth, sweep_beam_widths
from repro.eval.reporting import format_table

METHODS = ("HNSW", "NSG", "Vamana", "ELPIS", "SPTAG-BKT", "KGraph")
BEAM_WIDTHS = (10, 20, 40, 80, 160)


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "sift"
    n_points = int(sys.argv[2]) if len(sys.argv) > 2 else 3000
    data = generate(dataset, n_points, seed=0)
    queries = generate(dataset, 10, seed=999)
    truth, _ = ground_truth(data, queries, 10)
    print(f"dataset={dataset} n={n_points} d={data.shape[1]}\n")

    rows = []
    for name in METHODS:
        index = create_index(name, seed=1).build(data)
        curve = sweep_beam_widths(index, queries, truth, k=10, beam_widths=BEAM_WIDTHS)
        for point in curve:
            rows.append(
                [
                    name,
                    point.beam_width,
                    round(point.recall, 3),
                    int(point.distance_calls),
                    round(1000 * point.time_s, 2),
                ]
            )
        best = max(curve, key=lambda p: p.recall)
        print(
            f"{name:10s} build {index.build_report.wall_time_s:6.1f}s "
            f"({index.build_report.distance_calls:>10,} dc)  "
            f"best recall {best.recall:.3f}"
        )

    print()
    print(
        format_table(
            ["method", "beam", "recall", "dist calls", "ms/query"],
            rows,
            title="recall / distance-calculation tradeoff",
        )
    )


if __name__ == "__main__":
    main()
