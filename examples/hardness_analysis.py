"""Characterize dataset hardness and get a method recommendation.

Reproduces the paper's Figure 4 analysis (LID / LRC) on any generated
dataset, then applies the Figure 18 decision tree.

Run:  python examples/hardness_analysis.py
"""

from repro import dataset_complexity, generate, recommend
from repro.eval.recommend import HARD_DATASETS

DATASETS = ("sift", "deep", "imagenet", "sald", "gist", "text2img", "seismic", "randpow0")
N = 2000


def main() -> None:
    print(f"{'dataset':10s} {'mean LID':>9s} {'mean LRC':>9s}  {'hard?':5s}  recommended methods")
    for name in DATASETS:
        data = generate(name, N, seed=1)
        profile = dataset_complexity(data, name, k=100, n_samples=150)
        hard = name in HARD_DATASETS
        rec = recommend(N, hard=hard, large_threshold=10 * N)
        print(
            f"{name:10s} {profile.mean_lid:9.2f} {profile.mean_lrc:9.2f}  "
            f"{'yes' if hard else 'no':5s}  {', '.join(rec.methods)}"
        )
    print(
        "\nLower LID and higher LRC mean easier search (paper, Figure 4). "
        "Hard datasets favor divide-and-conquer methods (Figure 18)."
    )


if __name__ == "__main__":
    main()
