"""Image-retrieval motivation scenario — the paper's Figure 1.

Compares how quickly different search families converge to the exact
answer on an ImageNet-like embedding collection:

* ELPIS       (graph-based, divide-and-conquer)   — fastest
* EFANNA      (graph-based, neighborhood propagation)
* query-aware LSH (the QALSH stand-in, delta-epsilon approximate)
* serial scan (exact)

Each method reports the time at which its best-so-far answer reached the
true nearest neighbor.

Run:  python examples/image_retrieval.py
"""

import time

import numpy as np

from repro import create_index, generate
from repro.core.distances import DistanceComputer
from repro.hashing.lsh import QueryAwareLSH

N_POINTS = 4000
N_QUERIES = 5


def cost_to_exact_graph(index, query, true_id, widths=(10, 20, 40, 80, 160, 320)):
    """Cost (distance calculations, seconds) of the smallest-beam search
    that returns the true nearest neighbor."""
    for width in widths:
        start = time.perf_counter()
        result = index.search(query, k=1, beam_width=width)
        elapsed = time.perf_counter() - start
        if result.ids[0] == true_id:
            return result.distance_calls, elapsed
    return None


def cost_to_exact_qalsh(qalsh, computer, query, true_id):
    """Examine candidates in QALSH order until the true NN is found."""
    start = time.perf_counter()
    order = qalsh.examination_order(query)
    batch = 64
    examined = 0
    for lo in range(0, order.size, batch):
        ids = order[lo : lo + batch]
        computer.to_query(ids, query)
        examined += ids.size
        if true_id in ids:
            return examined, time.perf_counter() - start
    return None


def main() -> None:
    data = generate("imagenet", N_POINTS, seed=0)
    queries = generate("imagenet", N_QUERIES, seed=321)
    computer = DistanceComputer(data)
    true_ids = [int(computer.exact_knn(q, 1)[0][0]) for q in queries]

    print("building indexes ...")
    elpis = create_index("ELPIS", seed=1).build(data)
    efanna = create_index("EFANNA", seed=1).build(data)
    qalsh = QueryAwareLSH(n_projections=16, seed=1).build(data)

    rows = []
    for q, true_id in zip(queries, true_ids):
        start = time.perf_counter()
        computer.exact_knn(q, 1)
        scan_time = time.perf_counter() - start
        rows.append(
            {
                "ELPIS": cost_to_exact_graph(elpis, q, true_id),
                "EFANNA": cost_to_exact_graph(efanna, q, true_id),
                "QALSH": cost_to_exact_qalsh(qalsh, computer, q, true_id),
                "SerialScan": (N_POINTS, scan_time),
            }
        )

    print(
        f"\ncost of reaching the exact nearest neighbor "
        f"(mean over {N_QUERIES} queries):"
    )
    print(f"  {'method':11s} {'dist calcs':>11s} {'ms':>8s}   exact found")
    for method in ("ELPIS", "EFANNA", "QALSH", "SerialScan"):
        found = [r[method] for r in rows if r[method] is not None]
        if found:
            calls = np.mean([c for c, _ in found])
            mean_ms = 1000 * np.mean([t for _, t in found])
        else:
            calls, mean_ms = float("nan"), float("nan")
        print(
            f"  {method:11s} {calls:11.0f} {mean_ms:8.2f}   "
            f"{len(found)}/{N_QUERIES}"
        )
    print(
        "\nAs in Figure 1: graph-based methods converge to the exact answer "
        "with a fraction of the scan's distance calculations (at the paper's "
        "billion-vector scale this gap is three orders of magnitude of wall "
        "time), and the DC-based ELPIS converges reliably where the NP-based "
        "EFANNA misses."
    )


if __name__ == "__main__":
    main()
