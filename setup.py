"""Legacy setup shim: keeps `pip install -e .` working without network
access (the environment lacks the `wheel` package required by PEP 660
editable installs)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Graph-based vector search: reproduction of the SIGMOD 2025 "
        "experimental evaluation"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
