"""LSB-tree-style projection tables — LSHAPG's seed structure.

LSHAPG (Section 3.6) augments an HNSW graph with ``L`` hash tables derived
from the LSB-tree (Tao et al.): each table Z-orders points by their
quantized LSH projections so that a query can retrieve the points whose
compound hash keys are closest to its own.  We reproduce the structure as
sorted arrays of interleaved (Z-order) keys with binary-search retrieval,
plus the projected-distance estimate LSHAPG uses for probabilistic routing.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LSBTable", "LSBForest"]

_KEY_BITS_PER_DIM = 8


class LSBTable:
    """One Z-ordered table of quantized LSH projections."""

    def __init__(self, n_projections: int, seed: int):
        self.n_projections = n_projections
        self.seed = seed
        self._projections: np.ndarray | None = None
        self._lo = 0.0
        self._scale = 1.0
        self._keys: np.ndarray | None = None
        self._order: np.ndarray | None = None
        self.projected: np.ndarray | None = None

    def build(self, data: np.ndarray) -> "LSBTable":
        """Project, quantize, Z-order, and sort the dataset."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        rng = np.random.default_rng(self.seed)
        self._projections = rng.normal(size=(self.n_projections, data.shape[1]))
        self._projections /= np.linalg.norm(self._projections, axis=1, keepdims=True)
        self.projected = data @ self._projections.T
        self._lo = float(self.projected.min())
        hi = float(self.projected.max())
        self._scale = (hi - self._lo) or 1.0
        cells = self._quantize(self.projected)
        keys = self._interleave(cells)
        self._order = np.argsort(keys, kind="stable").astype(np.int64)
        self._keys = keys[self._order]
        return self

    def _quantize(self, projected: np.ndarray) -> np.ndarray:
        levels = (1 << _KEY_BITS_PER_DIM) - 1
        scaled = (projected - self._lo) / self._scale
        return np.clip(np.round(scaled * levels), 0, levels).astype(np.uint64)

    def _interleave(self, cells: np.ndarray) -> np.ndarray:
        """Morton (Z-order) interleave of the per-projection cells."""
        keys = np.zeros(cells.shape[0], dtype=np.uint64)
        for bit in range(_KEY_BITS_PER_DIM - 1, -1, -1):
            for proj in range(self.n_projections):
                keys = (keys << np.uint64(1)) | ((cells[:, proj] >> np.uint64(bit)) & np.uint64(1))
        return keys

    def seeds_for(self, query: np.ndarray, n_seeds: int) -> np.ndarray:
        """Ids whose Z-order keys are nearest the query's key."""
        if self._keys is None:
            raise RuntimeError("table not built")
        q_proj = np.asarray(query, dtype=np.float64) @ self._projections.T
        q_cells = self._quantize(q_proj[None, :])
        q_key = self._interleave(q_cells)[0]
        pos = int(np.searchsorted(self._keys, q_key))
        lo = max(0, pos - n_seeds)
        hi = min(self._keys.size, pos + n_seeds)
        return self._order[lo:hi]

    def projected_distance(self, query: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """Scaled RMS displacement in projection space — LSHAPG's routing
        estimate.

        For a random *unit* direction ``a`` in ``dim`` dimensions,
        ``E[(a·(x-q))^2] = ||x-q||^2 / dim``; averaging over the table's
        projections and scaling by ``sqrt(dim)`` therefore estimates the
        true distance.  With few projections the estimate is noisy — which
        is exactly why the paper finds probabilistic routing prunes
        promising neighbors.
        """
        q_proj = np.asarray(query, dtype=np.float64) @ self._projections.T
        diffs = self.projected[np.asarray(ids, dtype=np.int64)] - q_proj
        dim = self._projections.shape[1]
        return np.sqrt((diffs**2).mean(axis=1) * dim)

    def memory_bytes(self) -> int:
        """Bytes across projections, keys, order, and projected matrix."""
        total = 0
        for arr in (self._projections, self._keys, self._order, self.projected):
            if arr is not None:
                total += arr.nbytes
        return total


class LSBForest:
    """``L`` independent LSB tables queried together."""

    def __init__(self, n_tables: int = 4, n_projections: int = 8, seed: int = 0):
        if n_tables < 1:
            raise ValueError("n_tables must be >= 1")
        self.tables = [
            LSBTable(n_projections, seed + table) for table in range(n_tables)
        ]

    def build(self, data: np.ndarray) -> "LSBForest":
        """Build every table over ``data``."""
        for table in self.tables:
            table.build(data)
        return self

    def seeds_for(self, query: np.ndarray, n_seeds: int) -> np.ndarray:
        """Union of per-table nearest-key ids."""
        per_table = max(1, n_seeds // len(self.tables))
        parts = [t.seeds_for(query, per_table) for t in self.tables]
        return np.unique(np.concatenate(parts))

    def projected_distance(self, query: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """Average routing estimate across tables."""
        estimates = [t.projected_distance(query, ids) for t in self.tables]
        return np.mean(estimates, axis=0)

    def memory_bytes(self) -> int:
        """Total bytes across tables."""
        return sum(t.memory_bytes() for t in self.tables)
