"""Locality-sensitive hashing for Euclidean space (E2LSH family).

Three roles in the paper: the "LSH" seed-selection strategy (Section 3.3),
the initial-graph generator of IEH (Section 3.6), and — as a query-aware
variant — the stand-in for QALSH, the δ-ε-approximate comparator of the
Figure 1 motivation experiment.

Hash functions are the classic ``h(x) = floor((a·x + b) / w)`` projections
(Datar et al.); a table concatenates ``n_projections`` of them into one
bucket key.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

__all__ = ["LSHIndex", "QueryAwareLSH"]


class LSHIndex:
    """Multi-table E2LSH index over a dataset (or a sample of it).

    Parameters
    ----------
    n_tables:
        Number of independent hash tables (more tables, higher recall).
    n_projections:
        Projections concatenated per table (more projections, finer buckets).
    bucket_width:
        The quantization width ``w``; chosen relative to the data scale at
        :meth:`build` time when not given.
    """

    def __init__(
        self,
        n_tables: int = 4,
        n_projections: int = 8,
        bucket_width: float | None = None,
        seed: int = 0,
    ):
        if n_tables < 1 or n_projections < 1:
            raise ValueError("n_tables and n_projections must be >= 1")
        self.n_tables = n_tables
        self.n_projections = n_projections
        self.bucket_width = bucket_width
        self.seed = seed
        self._projections: np.ndarray | None = None
        self._offsets: np.ndarray | None = None
        self._tables: list[dict[tuple, np.ndarray]] = []
        self._ids: np.ndarray | None = None

    def build(self, data: np.ndarray, ids: np.ndarray | None = None) -> "LSHIndex":
        """Hash ``data`` rows (referenced by ``ids``) into all tables."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        n, dim = data.shape
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        self._ids = np.asarray(ids, dtype=np.int64)
        rng = np.random.default_rng(self.seed)
        if self.bucket_width is None:
            # scale w to a robust estimate of typical pairwise distance
            sample = data[rng.choice(n, size=min(n, 256), replace=False)]
            diffs = sample[:, None, :16] - sample[None, :, :16]
            typical = float(np.median(np.sqrt((diffs**2).sum(axis=-1)))) or 1.0
            self.bucket_width = typical
        self._projections = rng.normal(
            size=(self.n_tables, self.n_projections, dim)
        )
        self._offsets = rng.uniform(
            0, self.bucket_width, size=(self.n_tables, self.n_projections)
        )
        self._tables = []
        for table in range(self.n_tables):
            keys = self._hash(data, table)
            buckets: dict[tuple, list[int]] = defaultdict(list)
            for row, key in enumerate(map(tuple, keys)):
                buckets[key].append(int(self._ids[row]))
            self._tables.append(
                {key: np.asarray(val, dtype=np.int64) for key, val in buckets.items()}
            )
        return self

    def _hash(self, data: np.ndarray, table: int) -> np.ndarray:
        proj = data @ self._projections[table].T + self._offsets[table]
        return np.floor(proj / self.bucket_width).astype(np.int64)

    def candidates(self, query: np.ndarray, min_candidates: int = 1) -> np.ndarray:
        """Ids colliding with the query in any table (multi-probe fallback).

        If the exact buckets yield fewer than ``min_candidates`` ids, the
        neighboring buckets (±1 on each projection, one at a time) are
        probed as well.
        """
        if self._projections is None:
            raise RuntimeError("index not built")
        query = np.asarray(query, dtype=np.float64)[None, :]
        found: list[np.ndarray] = []
        for table in range(self.n_tables):
            key = tuple(self._hash(query, table)[0])
            bucket = self._tables[table].get(key)
            if bucket is not None:
                found.append(bucket)
        total = sum(b.size for b in found)
        if total < min_candidates:
            for table in range(self.n_tables):
                base = self._hash(query, table)[0]
                for proj in range(self.n_projections):
                    for delta in (-1, 1):
                        probe = base.copy()
                        probe[proj] += delta
                        bucket = self._tables[table].get(tuple(probe))
                        if bucket is not None:
                            found.append(bucket)
        if not found:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(found))

    def memory_bytes(self) -> int:
        """Bytes across projections, offsets, and bucket arrays."""
        total = 0
        if self._projections is not None:
            total += self._projections.nbytes + self._offsets.nbytes
        for table in self._tables:
            total += sum(bucket.nbytes for bucket in table.values())
        return total


class QueryAwareLSH:
    """Query-aware LSH search in the spirit of QALSH (Huang et al.).

    Projects all points onto ``n_projections`` random lines; at query time
    points are examined in order of their worst projected displacement from
    the *query's own projection* (the query acts as the bucket anchor), and
    exact distances are computed for the examined prefix.  This provides the
    slow-but-high-quality δ-ε-style comparator used in Figure 1.
    """

    def __init__(self, n_projections: int = 16, seed: int = 0):
        if n_projections < 1:
            raise ValueError("n_projections must be >= 1")
        self.n_projections = n_projections
        self.seed = seed
        self._projections: np.ndarray | None = None
        self._projected: np.ndarray | None = None

    def build(self, data: np.ndarray) -> "QueryAwareLSH":
        """Project and store all data rows."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        rng = np.random.default_rng(self.seed)
        self._projections = rng.normal(size=(self.n_projections, data.shape[1]))
        self._projections /= np.linalg.norm(self._projections, axis=1, keepdims=True)
        self._projected = data @ self._projections.T
        return self

    def examination_order(self, query: np.ndarray) -> np.ndarray:
        """Dataset ids sorted by median projected displacement from the query."""
        if self._projected is None:
            raise RuntimeError("index not built")
        q_proj = np.asarray(query, dtype=np.float64) @ self._projections.T
        displacement = np.median(np.abs(self._projected - q_proj), axis=1)
        return np.argsort(displacement, kind="stable")

    def memory_bytes(self) -> int:
        """Bytes held by projections and the projected matrix."""
        total = 0
        if self._projections is not None:
            total += self._projections.nbytes + self._projected.nbytes
        return total
