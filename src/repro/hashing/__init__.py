"""hashing subpackage of the repro library."""
