"""Piecewise Aggregate Approximation (PAA) — Section 2.1.

PAA segments a vector into ``n_segments`` equal-length pieces and summarizes
each by its mean.  It underlies SAX and provides a provable lower bound on
the Euclidean distance between two vectors of the same length (Keogh et al.),
which is what makes summary-space pruning safe.
"""

from __future__ import annotations

import numpy as np

__all__ = ["segment_bounds", "paa_transform", "paa_lower_bound"]


def segment_bounds(dim: int, n_segments: int) -> np.ndarray:
    """Start offsets of ``n_segments`` near-equal segments of a length-``dim`` vector.

    Returns an array of ``n_segments + 1`` boundaries; segment ``s`` covers
    ``[bounds[s], bounds[s+1])``.  Remainder dimensions are spread over the
    leading segments.
    """
    if not 1 <= n_segments <= dim:
        raise ValueError(f"n_segments must be in [1, {dim}], got {n_segments}")
    base = dim // n_segments
    remainder = dim % n_segments
    sizes = np.full(n_segments, base, dtype=np.int64)
    sizes[:remainder] += 1
    bounds = np.zeros(n_segments + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    return bounds


def paa_transform(data: np.ndarray, n_segments: int) -> np.ndarray:
    """Per-segment means of each row of ``data`` — shape ``(n, n_segments)``."""
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    bounds = segment_bounds(data.shape[1], n_segments)
    out = np.empty((data.shape[0], n_segments), dtype=np.float64)
    for seg in range(n_segments):
        out[:, seg] = data[:, bounds[seg] : bounds[seg + 1]].mean(axis=1)
    return out


def paa_lower_bound(
    paa_a: np.ndarray, paa_b: np.ndarray, dim: int
) -> np.ndarray:
    """Lower bound on Euclidean distance from two PAA summaries.

    ``sqrt(sum_s len_s * (a_s - b_s)^2) <= ||A - B||`` by Cauchy-Schwarz
    applied per segment.  Accepts ``(n_segments,)`` or ``(n, n_segments)``
    arrays and broadcasts.
    """
    paa_a = np.asarray(paa_a, dtype=np.float64)
    paa_b = np.asarray(paa_b, dtype=np.float64)
    n_segments = paa_a.shape[-1]
    bounds = segment_bounds(dim, n_segments)
    lengths = np.diff(bounds).astype(np.float64)
    sq = (lengths * (paa_a - paa_b) ** 2).sum(axis=-1)
    return np.sqrt(np.maximum(sq, 0.0))
