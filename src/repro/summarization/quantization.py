"""Scalar and product quantization — Section 2.1.

Scalar quantization maps each dimension independently onto a uniform grid;
product quantization (Jégou et al.) splits the vector into sub-vectors and
vector-quantizes each with a small k-means codebook.  These summarizers back
the paper's discussion of inverted-index methods (IVF-PQ/IMI) and provide the
asymmetric-distance estimates used by the survey examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clustering.kmeans import kmeans

__all__ = ["ScalarQuantizer", "ProductQuantizer"]


@dataclass
class ScalarQuantizer:
    """Uniform per-dimension scalar quantizer with ``bits`` of precision."""

    lo: np.ndarray
    hi: np.ndarray
    bits: int

    @classmethod
    def fit(cls, data: np.ndarray, bits: int = 8) -> "ScalarQuantizer":
        """Learn per-dimension ranges from ``data``."""
        if not 1 <= bits <= 16:
            raise ValueError("bits must be in [1, 16]")
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        return cls(lo=data.min(axis=0), hi=data.max(axis=0), bits=bits)

    @property
    def levels(self) -> int:
        """Number of quantization levels per dimension."""
        return (1 << self.bits) - 1

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Quantize rows to integer codes (clipped to the fitted range)."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        span = np.where(self.hi > self.lo, self.hi - self.lo, 1.0)
        scaled = (data - self.lo) / span
        codes = np.clip(np.round(scaled * self.levels), 0, self.levels)
        return codes.astype(np.uint16 if self.bits > 8 else np.uint8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        codes = np.atleast_2d(np.asarray(codes, dtype=np.float64))
        span = np.where(self.hi > self.lo, self.hi - self.lo, 1.0)
        return self.lo + (codes / self.levels) * span

    def max_error(self) -> float:
        """Worst-case reconstruction error (half a cell per dimension)."""
        span = np.where(self.hi > self.lo, self.hi - self.lo, 0.0)
        per_dim = span / (2.0 * self.levels)
        return float(np.sqrt((per_dim**2).sum()))


class ProductQuantizer:
    """Product quantizer: ``n_subspaces`` independent k-means codebooks."""

    def __init__(self, codebooks: list[np.ndarray], dim: int):
        self.codebooks = codebooks
        self.dim = dim
        self.n_subspaces = len(codebooks)
        self._bounds = np.linspace(0, dim, self.n_subspaces + 1).astype(np.int64)

    @classmethod
    def fit(
        cls,
        data: np.ndarray,
        n_subspaces: int = 8,
        n_centroids: int = 16,
        rng: np.random.Generator | None = None,
    ) -> "ProductQuantizer":
        """Train one ``n_centroids``-word codebook per subspace."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        dim = data.shape[1]
        if not 1 <= n_subspaces <= dim:
            raise ValueError(f"n_subspaces must be in [1, {dim}]")
        if rng is None:
            rng = np.random.default_rng(0)
        bounds = np.linspace(0, dim, n_subspaces + 1).astype(np.int64)
        codebooks = []
        for sub in range(n_subspaces):
            chunk = data[:, bounds[sub] : bounds[sub + 1]]
            k = min(n_centroids, chunk.shape[0])
            codebooks.append(kmeans(chunk, k, rng, max_iterations=15).centroids)
        return cls(codebooks, dim)

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Codes of each row — ``(n, n_subspaces)`` uint16 centroid ids."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        codes = np.empty((data.shape[0], self.n_subspaces), dtype=np.uint16)
        for sub in range(self.n_subspaces):
            chunk = data[:, self._bounds[sub] : self._bounds[sub + 1]]
            book = self.codebooks[sub]
            sq = (
                (chunk**2).sum(axis=1)[:, None]
                - 2.0 * (chunk @ book.T)
                + (book**2).sum(axis=1)[None, :]
            )
            codes[:, sub] = sq.argmin(axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        codes = np.atleast_2d(np.asarray(codes, dtype=np.int64))
        out = np.empty((codes.shape[0], self.dim), dtype=np.float64)
        for sub in range(self.n_subspaces):
            out[:, self._bounds[sub] : self._bounds[sub + 1]] = self.codebooks[sub][
                codes[:, sub]
            ]
        return out

    def asymmetric_distances(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """ADC distance estimate from a raw query to encoded vectors.

        Precomputes per-subspace lookup tables (query-to-centroid squared
        distances) and sums table entries per code — the standard IVF-PQ
        scan kernel.
        """
        query = np.asarray(query, dtype=np.float64)
        codes = np.atleast_2d(np.asarray(codes, dtype=np.int64))
        total = np.zeros(codes.shape[0], dtype=np.float64)
        for sub in range(self.n_subspaces):
            q_chunk = query[self._bounds[sub] : self._bounds[sub + 1]]
            table = ((self.codebooks[sub] - q_chunk) ** 2).sum(axis=1)
            total += table[codes[:, sub]]
        return np.sqrt(np.maximum(total, 0.0))

    def memory_bytes(self) -> int:
        """Bytes held by the codebooks."""
        return int(sum(book.nbytes for book in self.codebooks))
