"""Scalar and product quantization — Section 2.1.

Scalar quantization maps each dimension independently onto a uniform grid;
product quantization (Jégou et al.) splits the vector into sub-vectors and
vector-quantizes each with a small k-means codebook.  These summarizers back
the paper's discussion of inverted-index methods (IVF-PQ/IMI) and provide the
asymmetric-distance estimates used by the survey examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..clustering.kmeans import kmeans

__all__ = ["ScalarQuantizer", "ProductQuantizer", "largest_subspace_count"]


def largest_subspace_count(dim: int, requested: int) -> int:
    """Largest segment count ``<= requested`` that divides ``dim`` evenly.

    :meth:`ProductQuantizer.fit` requires ``dim % n_subspaces == 0``; callers
    that treat the subspace count as a soft preference (IVF-PQ, the disk
    tier) use this to round a requested count down to the nearest valid one.
    Always >= 1 (every dim is divisible by 1).
    """
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    for count in range(min(requested, dim), 1, -1):
        if dim % count == 0:
            return count
    return 1


@dataclass
class ScalarQuantizer:
    """Uniform per-dimension scalar quantizer with ``bits`` of precision."""

    lo: np.ndarray
    hi: np.ndarray
    bits: int

    @classmethod
    def fit(cls, data: np.ndarray, bits: int = 8) -> "ScalarQuantizer":
        """Learn per-dimension ranges from ``data``."""
        if not 1 <= bits <= 16:
            raise ValueError("bits must be in [1, 16]")
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        return cls(lo=data.min(axis=0), hi=data.max(axis=0), bits=bits)

    @property
    def levels(self) -> int:
        """Number of quantization levels per dimension."""
        return (1 << self.bits) - 1

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Quantize rows to integer codes (clipped to the fitted range)."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        span = np.where(self.hi > self.lo, self.hi - self.lo, 1.0)
        scaled = (data - self.lo) / span
        codes = np.clip(np.round(scaled * self.levels), 0, self.levels)
        return codes.astype(np.uint16 if self.bits > 8 else np.uint8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        codes = np.atleast_2d(np.asarray(codes, dtype=np.float64))
        span = np.where(self.hi > self.lo, self.hi - self.lo, 1.0)
        return self.lo + (codes / self.levels) * span

    def max_error(self) -> float:
        """Worst-case reconstruction error (half a cell per dimension)."""
        span = np.where(self.hi > self.lo, self.hi - self.lo, 0.0)
        per_dim = span / (2.0 * self.levels)
        return float(np.sqrt((per_dim**2).sum()))


class ProductQuantizer:
    """Product quantizer: ``n_subspaces`` independent k-means codebooks."""

    def __init__(self, codebooks: list[np.ndarray], dim: int):
        self.codebooks = codebooks
        self.dim = dim
        self.n_subspaces = len(codebooks)
        self._bounds = np.linspace(0, dim, self.n_subspaces + 1).astype(np.int64)

    @classmethod
    def fit(
        cls,
        data: np.ndarray,
        n_subspaces: int = 8,
        n_centroids: int = 16,
        rng: np.random.Generator | None = None,
    ) -> "ProductQuantizer":
        """Train one ``n_centroids``-word codebook per subspace.

        The configuration is validated up front — ``n_subspaces`` must divide
        the dimensionality evenly (use :func:`largest_subspace_count` to round
        a soft preference down) and ``n_centroids`` cannot exceed the number
        of training points — so an impossible setup fails here with a clear
        message instead of deep inside k-means seeding.
        """
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        n_points, dim = data.shape
        if not 1 <= n_subspaces <= dim:
            raise ValueError(f"n_subspaces must be in [1, {dim}], got {n_subspaces}")
        if dim % n_subspaces != 0:
            raise ValueError(
                f"n_subspaces ({n_subspaces}) must divide dim ({dim}) evenly; "
                f"nearest valid count is {largest_subspace_count(dim, n_subspaces)}"
            )
        if not 1 <= n_centroids <= n_points:
            raise ValueError(
                f"n_centroids must be in [1, {n_points}] (the number of "
                f"training points), got {n_centroids}"
            )
        if rng is None:
            rng = np.random.default_rng(0)
        bounds = np.linspace(0, dim, n_subspaces + 1).astype(np.int64)
        codebooks = []
        for sub in range(n_subspaces):
            chunk = data[:, bounds[sub] : bounds[sub + 1]]
            codebooks.append(kmeans(chunk, n_centroids, rng, max_iterations=15).centroids)
        return cls(codebooks, dim)

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Codes of each row — ``(n, n_subspaces)`` uint16 centroid ids."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        codes = np.empty((data.shape[0], self.n_subspaces), dtype=np.uint16)
        for sub in range(self.n_subspaces):
            chunk = data[:, self._bounds[sub] : self._bounds[sub + 1]]
            book = self.codebooks[sub]
            sq = (
                (chunk**2).sum(axis=1)[:, None]
                - 2.0 * (chunk @ book.T)
                + (book**2).sum(axis=1)[None, :]
            )
            codes[:, sub] = sq.argmin(axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        codes = np.atleast_2d(np.asarray(codes, dtype=np.int64))
        out = np.empty((codes.shape[0], self.dim), dtype=np.float64)
        for sub in range(self.n_subspaces):
            out[:, self._bounds[sub] : self._bounds[sub + 1]] = self.codebooks[sub][
                codes[:, sub]
            ]
        return out

    def build_lut(self, query: np.ndarray) -> np.ndarray:
        """Per-query ADC lookup table: query-to-centroid squared distances.

        Returns a ``(n_subspaces, n_centroids)`` float64 array; row ``sub``
        holds the squared distance from the query's ``sub``-th chunk to every
        centroid of that subspace's codebook.  Built once per query and
        reused by every :meth:`lut_distances` call — the hot ADC scan then
        reduces to table gathers.
        """
        query = np.asarray(query, dtype=np.float64).ravel()
        if query.shape[0] != self.dim:
            raise ValueError(
                f"query has {query.shape[0]} dimensions, expected {self.dim}"
            )
        sizes = [book.shape[0] for book in self.codebooks]
        lut = np.full((self.n_subspaces, max(sizes)), np.inf, dtype=np.float64)
        for sub in range(self.n_subspaces):
            q_chunk = query[self._bounds[sub] : self._bounds[sub + 1]]
            lut[sub, : sizes[sub]] = ((self.codebooks[sub] - q_chunk) ** 2).sum(axis=1)
        return lut

    def lut_distances(
        self, lut: np.ndarray, codes: np.ndarray, block_size: int = 65_536
    ) -> np.ndarray:
        """ADC distance estimates of encoded vectors against a prepared LUT.

        Sums one table entry per subspace per code row, in fixed-size blocks
        so peak ancillary memory stays ``O(block_size)`` for arbitrarily
        large code arrays.  The per-element accumulation order (ascending
        subspace) is independent of ``block_size``, so results are bitwise
        identical at any block size.
        """
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        codes = np.atleast_2d(np.asarray(codes, dtype=np.int64))
        out = np.empty(codes.shape[0], dtype=np.float64)
        for start in range(0, codes.shape[0], block_size):
            block = codes[start : start + block_size]
            total = np.zeros(block.shape[0], dtype=np.float64)
            for sub in range(self.n_subspaces):
                total += lut[sub][block[:, sub]]
            np.maximum(total, 0.0, out=total)
            out[start : start + block_size] = np.sqrt(total)
        return out

    def asymmetric_distances(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """ADC distance estimate from a raw query to encoded vectors.

        Convenience wrapper over :meth:`build_lut` + :meth:`lut_distances`;
        callers scoring many candidate batches against one query should
        build the LUT once and call :meth:`lut_distances` directly.
        """
        return self.lut_distances(self.build_lut(query), codes)

    def memory_bytes(self) -> int:
        """Bytes held by the codebooks."""
        return int(sum(book.nbytes for book in self.codebooks))
