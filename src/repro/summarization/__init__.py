"""summarization subpackage of the repro library."""
