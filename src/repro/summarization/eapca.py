"""Extended Adaptive Piecewise Constant Approximation (EAPCA) — Section 2.1.

EAPCA summarizes each segment of a vector by both its *mean* and *standard
deviation* (Wang et al., the summarization underlying the Hercules tree that
ELPIS partitions with).  This module provides:

* the ``(mean, std)`` per-segment transform;
* a rectangle ("synopsis") over a set of vectors: per-segment min/max of the
  means and stds;
* a provable lower bound on the Euclidean distance from a query to *any*
  vector inside the rectangle, used by ELPIS to prune whole leaves.

The mean-gap part of the bound is the classic PAA/Cauchy-Schwarz argument;
the std term is omitted from the bound (kept only as a descriptive statistic)
so the bound stays provably admissible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .paa import segment_bounds

__all__ = ["eapca_transform", "EAPCASynopsis"]


def eapca_transform(data: np.ndarray, n_segments: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment ``(means, stds)`` of each row — two ``(n, s)`` arrays."""
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    bounds = segment_bounds(data.shape[1], n_segments)
    n = data.shape[0]
    means = np.empty((n, n_segments), dtype=np.float64)
    stds = np.empty((n, n_segments), dtype=np.float64)
    for seg in range(n_segments):
        chunk = data[:, bounds[seg] : bounds[seg + 1]]
        means[:, seg] = chunk.mean(axis=1)
        stds[:, seg] = chunk.std(axis=1)
    return means, stds


@dataclass
class EAPCASynopsis:
    """Bounding rectangle of a point set in EAPCA space.

    Attributes
    ----------
    mean_min, mean_max, std_min, std_max:
        ``(n_segments,)`` envelopes over the summarized points.
    dim:
        Original vector dimensionality (needed for segment lengths).
    """

    mean_min: np.ndarray
    mean_max: np.ndarray
    std_min: np.ndarray
    std_max: np.ndarray
    dim: int

    @classmethod
    def from_points(cls, data: np.ndarray, n_segments: int) -> "EAPCASynopsis":
        """Summarize ``data`` rows and take per-segment envelopes."""
        means, stds = eapca_transform(data, n_segments)
        return cls(
            mean_min=means.min(axis=0),
            mean_max=means.max(axis=0),
            std_min=stds.min(axis=0),
            std_max=stds.max(axis=0),
            dim=int(np.atleast_2d(data).shape[1]),
        )

    @property
    def n_segments(self) -> int:
        """Number of EAPCA segments."""
        return int(self.mean_min.shape[0])

    def lower_bound(self, query: np.ndarray) -> float:
        """Admissible lower bound on ``min_{x in leaf} ||query - x||``.

        For each segment the query's segment mean is at least
        ``gap = max(0, mean_min - q, q - mean_max)`` away from every member's
        segment mean, and by Cauchy-Schwarz the true distance restricted to
        that segment is at least ``sqrt(len_s) * gap``.
        """
        query = np.asarray(query, dtype=np.float64)
        bounds = segment_bounds(self.dim, self.n_segments)
        lengths = np.diff(bounds).astype(np.float64)
        q_means = np.empty(self.n_segments, dtype=np.float64)
        for seg in range(self.n_segments):
            q_means[seg] = query[bounds[seg] : bounds[seg + 1]].mean()
        gap = np.maximum(
            0.0, np.maximum(self.mean_min - q_means, q_means - self.mean_max)
        )
        return float(np.sqrt((lengths * gap**2).sum()))

    def split_score(self) -> np.ndarray:
        """Per-segment spread, used to pick the Hercules split segment.

        The score is the envelope width of the mean plus that of the std —
        segments whose summaries vary most across the node's points are the
        most informative splits.
        """
        return (self.mean_max - self.mean_min) + (self.std_max - self.std_min)

    def memory_bytes(self) -> int:
        """Bytes held by the four envelope arrays."""
        return (
            self.mean_min.nbytes
            + self.mean_max.nbytes
            + self.std_min.nbytes
            + self.std_max.nbytes
        )
