"""Symbolic Aggregate Approximation (SAX) — Section 2.1.

SAX applies PAA and then discretizes each segment mean into one of
``alphabet_size`` symbols using Gaussian-quantile breakpoints.  Included for
completeness of the paper's summarization survey; the MINDIST lower bound is
provided and property-tested against the true Euclidean distance.
"""

from __future__ import annotations

import numpy as np

from .paa import paa_transform, segment_bounds

__all__ = ["gaussian_breakpoints", "sax_transform", "sax_mindist"]


def gaussian_breakpoints(alphabet_size: int) -> np.ndarray:
    """The ``alphabet_size - 1`` standard-normal quantile breakpoints."""
    if alphabet_size < 2:
        raise ValueError("alphabet_size must be >= 2")
    probs = np.arange(1, alphabet_size) / alphabet_size
    # inverse normal CDF via Acklam's rational approximation (no scipy dep)
    return _norm_ppf(probs)


def _norm_ppf(p: np.ndarray) -> np.ndarray:
    """Inverse standard-normal CDF (Acklam approximation, ~1e-9 accurate)."""
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p = np.asarray(p, dtype=np.float64)
    out = np.empty_like(p)
    low = p < 0.02425
    high = p > 1 - 0.02425
    mid = ~(low | high)
    if low.any():
        q = np.sqrt(-2 * np.log(p[low]))
        out[low] = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if high.any():
        q = np.sqrt(-2 * np.log(1 - p[high]))
        out[high] = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if mid.any():
        q = p[mid] - 0.5
        r = q * q
        out[mid] = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    return out


def sax_transform(
    data: np.ndarray, n_segments: int, alphabet_size: int = 8
) -> np.ndarray:
    """SAX words of each row — an ``(n, n_segments)`` int array of symbols."""
    paa = paa_transform(data, n_segments)
    breakpoints = gaussian_breakpoints(alphabet_size)
    return np.searchsorted(breakpoints, paa).astype(np.int64)


def sax_mindist(
    word_a: np.ndarray,
    word_b: np.ndarray,
    dim: int,
    alphabet_size: int = 8,
) -> float:
    """The SAX MINDIST lower bound between two SAX words (Lin et al.)."""
    word_a = np.asarray(word_a, dtype=np.int64)
    word_b = np.asarray(word_b, dtype=np.int64)
    breakpoints = gaussian_breakpoints(alphabet_size)
    hi = np.maximum(word_a, word_b)
    lo = np.minimum(word_a, word_b)
    cell = np.zeros(word_a.shape[-1], dtype=np.float64)
    apart = hi - lo > 1
    cell[apart] = breakpoints[hi[apart] - 1] - breakpoints[lo[apart]]
    bounds = segment_bounds(dim, word_a.shape[-1])
    lengths = np.diff(bounds).astype(np.float64)
    return float(np.sqrt((lengths * cell**2).sum()))
