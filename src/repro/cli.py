"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``methods``
    List every registered method with its paradigm tags.
``datasets``
    List the dataset stand-ins with their difficulty profiles.
``demo``
    Build one method on one dataset and report build cost + query recall.
``complexity``
    Print the LID/LRC hardness profile of a dataset (Figure 4 style).
``recommend``
    Apply the Figure 18 decision tree to a dataset size / hardness.
``serve``
    Streaming-tier demo: build a live index, churn it with interleaved
    deletes/inserts while answering concurrent micro-batched queries, then
    consolidate and report recall drift + client-observed latency.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

#: Paradigm tags per method (Figure 3's taxonomy).
_PARADIGMS = {
    "KGraph": "NP",
    "NSW": "II",
    "HNSW": "II+ND(RND)+SS(SN)",
    "EFANNA": "NP+SS(KD)",
    "DPG": "NP+ND(MOND)",
    "NGT": "NP+ND(RND)+SS(VPTree)",
    "NSG": "NP-base+ND(RND)+SS(MD,KS)",
    "SSG": "NP-base+ND(MOND)+SS(KS)",
    "Vamana": "ND(RRND,RND)+SS(MD,KS)",
    "SPTAG-KDT": "DC+ND(RND)+SS(KD)",
    "SPTAG-BKT": "DC+ND(RND)+SS(KM)",
    "HCNNG": "DC+SS(KD)",
    "ELPIS": "DC+II+ND(RND)",
    "LSHAPG": "II+ND(RND)+SS(LSH)",
    "IEH": "NP+SS(LSH)",
    "IVF-Flat": "inverted index (survey family)",
    "IVF-PQ": "inverted index + product quantization",
    "BruteForce": "exact baseline",
}


def _cmd_methods(args) -> int:
    from .indexes import METHOD_REGISTRY

    for name in sorted(METHOD_REGISTRY):
        print(f"{name:11s} {_PARADIGMS.get(name, '')}")
    return 0


def _cmd_datasets(args) -> int:
    from .datasets.synthetic import DATASET_GENERATORS
    from .eval.recommend import HARD_DATASETS

    for name, spec in DATASET_GENERATORS.items():
        hard = "hard" if name in HARD_DATASETS else "easy"
        print(f"{name:10s} d={spec.dim:<4d} {hard}")
    return 0


def _ctor_accepts(method: str, param: str) -> bool:
    """Whether a method's constructor accepts the named parameter."""
    import inspect

    from .indexes import METHOD_REGISTRY

    try:
        return param in inspect.signature(METHOD_REGISTRY[method]).parameters
    except (TypeError, ValueError):
        return False


def _supports_build_workers(method: str) -> bool:
    """Whether a method's constructor accepts ``n_workers`` (II-based builds)."""
    return _ctor_accepts(method, "n_workers")


def _supports_build_kernel(method: str) -> bool:
    """Whether a method's build routes through the construction kernels."""
    return _ctor_accepts(method, "kernel")


def _cmd_demo(args) -> int:
    from .datasets.synthetic import generate
    from .eval.metrics import ground_truth
    from .eval.runner import run_workload
    from .indexes import create_index

    data = generate(args.dataset, args.n, seed=args.seed)
    queries = generate(args.dataset, args.queries, seed=args.seed + 1)
    filtered = args.filter_specificity is not None
    if filtered:
        if args.tier_mode == "disk":
            print("error: --filter-specificity requires --tier-mode ram")
            return 2
        from .datasets.attributes import point_attributes, query_predicates
        from .eval.metrics import filtered_ground_truth

        attrs = point_attributes(args.dataset, args.n, seed=args.seed)
        predicates = query_predicates(
            args.dataset, args.queries, args.filter_specificity, seed=args.seed
        )
        allow = [p.mask(attrs) for p in predicates]
        truth, _ = filtered_ground_truth(data, queries, args.k, allow)
    else:
        truth, _ = ground_truth(data, queries, args.k)
    index_params = {"seed": args.seed}
    if args.workers > 1:
        if _supports_build_workers(args.method):
            index_params["n_workers"] = args.workers
        else:
            print(
                f"note: {args.method} has no parallel builder; "
                "constructing sequentially"
            )
    # --kernel selects the construction-kernel backend for the build too
    # (bit-identical graphs by contract); methods without batched
    # construction ignore it and build on the reference path
    if args.kernel is not None and _supports_build_kernel(args.method):
        index_params["kernel"] = args.kernel
    index = create_index(args.method, **index_params).build(data)
    print(
        f"built {index.name} on {args.dataset} (n={args.n}): "
        f"{index.build_report.wall_time_s:.1f}s, "
        f"{index.build_report.distance_calls:,} distance calls, "
        f"{index.memory_bytes() // 1024} KiB"
    )
    tier_dir = None
    if args.tier_mode == "disk":
        import tempfile

        from .indexes.base import load_disk_index

        if not getattr(index, "disk_tier_capable", False):
            print(
                f"error: {index.name} cannot answer from a disk tier "
                "(seed selection needs raw-vector access); use --tier-mode ram"
            )
            return 2
        tier_dir = tempfile.TemporaryDirectory(prefix="repro-disk-tier-")
        index.to_disk_tier(tier_dir.name)
        index = load_disk_index(tier_dir.name)
        tier = index._disk_tier
        print(
            f"disk tier: {tier.resident_bytes() // 1024} KiB resident "
            f"(PQ codes + codebooks), {tier.file_bytes() // 1024} KiB "
            f"memory-mapped (graph + raw vectors)"
        )
    if filtered:
        from .core.filtered import FilteredIndex

        index = FilteredIndex(
            index, attrs, predicates, strategy=args.filter_strategy
        )
        mean_spec = float(np.mean([m.mean() for m in allow]))
        print(
            f"filtered search ({args.filter_strategy}): specificity "
            f"{args.filter_specificity} requested, {mean_spec:.3f} realized"
        )
    try:
        measurement = run_workload(
            index, queries, truth, args.k, args.beam_width,
            n_workers=args.workers, kernel=args.kernel,
        )
    finally:
        if tier_dir is not None:
            tier_dir.cleanup()
    from .core.kernels import resolve_backend

    print(f"beam kernel: {resolve_backend(args.kernel)}")
    print(
        f"recall@{args.k}: {measurement.recall:.3f}  "
        f"mean distance calls/query: {measurement.mean_distance_calls:.0f}  "
        f"mean latency: {1000 * measurement.mean_time_s:.2f} ms"
    )
    if args.stats:
        from .eval.reporting import format_query_stats

        print(format_query_stats(measurement))
    return 0


def _cmd_serve(args) -> int:
    """Mixed insert/delete/query load on the streaming tier, then consolidate."""
    import asyncio

    from .core.streaming import StreamingIndex
    from .datasets.synthetic import generate
    from .eval.metrics import recall
    from .eval.serving import ServingEngine

    data = generate(args.dataset, args.n, seed=args.seed)
    queries = generate(args.dataset, args.queries, seed=args.seed + 1)
    index = StreamingIndex(
        max_degree=args.max_degree,
        build_beam_width=args.beam_width,
        seed=args.seed,
        default_beam_width=args.beam_width,
        n_workers=args.workers,
        kernel=args.kernel,
    )
    index.build(data)
    print(
        f"built {index.name} on {args.dataset} (n={args.n}): "
        f"{index.build_report.wall_time_s:.1f}s, "
        f"{index.build_report.distance_calls:,} distance calls"
    )

    churn_rng = np.random.default_rng(args.seed + 2)
    n_churn = int(round(args.churn * args.n))

    async def run() -> tuple[float, float]:
        engine = ServingEngine(
            index, k=args.k, beam_width=args.beam_width, kernel=args.kernel
        )
        # churn: tombstone a random slice of the build set, insert fresh
        # replacement vectors, with concurrent query traffic throughout
        doomed = churn_rng.choice(args.n, size=n_churn, replace=False)
        replacements = generate(args.dataset, max(n_churn, 1), seed=args.seed + 3)
        half = len(doomed) // 2
        await asyncio.gather(
            engine.delete(doomed[:half]),
            *[engine.search(q) for q in queries],
        )
        await asyncio.gather(
            engine.delete(doomed[half:]),
            engine.insert(replacements[:n_churn]),
            *[engine.search(q) for q in queries],
        )
        true_ids, _ = index.alive_ground_truth(queries, args.k)
        answers = await asyncio.gather(*[engine.search(q) for q in queries])
        drift_recall = float(
            np.mean([recall(ids, t) for (ids, _), t in zip(answers, true_ids)])
        )
        report = await engine.consolidate()
        print(
            f"consolidate: {report.n_dead} dead, {report.n_repaired} nodes "
            f"repaired, {report.distance_calls:,} distance calls, "
            f"{report.wall_time_s:.2f}s"
        )
        answers = await asyncio.gather(*[engine.search(q) for q in queries])
        post_recall = float(
            np.mean([recall(ids, t) for (ids, _), t in zip(answers, true_ids)])
        )
        await engine.close()
        measurement = engine.report.measurement(post_recall, args.beam_width)
        print(
            f"served {engine.report.n_queries} queries "
            f"({engine.report.cache_hits} cache hits, "
            f"mean batch {engine.report.mean_batch_size:.1f})"
        )
        if args.stats:
            from .eval.reporting import format_query_stats

            print(format_query_stats(measurement))
        return drift_recall, post_recall

    drift_recall, post_recall = asyncio.run(run())
    print(
        f"recall@{args.k} vs live ground truth at {100 * args.churn:.0f}% churn: "
        f"{drift_recall:.3f} before consolidation, {post_recall:.3f} after"
    )
    return 0


def _cmd_complexity(args) -> int:
    from .datasets.complexity import dataset_complexity
    from .datasets.synthetic import generate

    data = generate(args.dataset, args.n, seed=args.seed)
    profile = dataset_complexity(data, args.dataset, k=min(100, args.n - 1))
    print(f"{args.dataset}: mean LID {profile.mean_lid:.2f}  mean LRC {profile.mean_lrc:.2f}")
    print("lower LID / higher LRC = easier search (paper, Figure 4)")
    return 0


def _cmd_recommend(args) -> int:
    from .eval.recommend import recommend

    rec = recommend(args.n, hard=args.hard)
    print("recommended:", ", ".join(rec.methods))
    print(rec.rationale)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Graph-based vector search reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("methods", help="list registered methods").set_defaults(
        func=_cmd_methods
    )
    sub.add_parser("datasets", help="list dataset stand-ins").set_defaults(
        func=_cmd_datasets
    )

    demo = sub.add_parser("demo", help="build + query one method")
    demo.add_argument("--method", default="HNSW")
    demo.add_argument("--dataset", default="deep")
    demo.add_argument("--n", type=int, default=3000)
    demo.add_argument("--queries", type=int, default=10)
    demo.add_argument("--k", type=int, default=10)
    demo.add_argument("--beam-width", type=int, default=64)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the query batch AND, for II-based methods "
        "(NSW/HNSW/LSHAPG), the batched graph build (1 = the paper's "
        "strictly sequential protocol; query results are identical at any "
        "count, and the batched build is identical at any count > 1)",
    )
    demo.add_argument(
        "--stats",
        action="store_true",
        help="print latency percentiles (p50/p95/p99) and throughput",
    )
    demo.add_argument(
        "--kernel",
        choices=["auto", "python", "numba", "scalar"],
        default=None,
        help="kernel backend for queries AND, where supported, the index "
        "build (batched diversification + NN-descent; default: "
        "$REPRO_KERNEL, else auto). All backends return bit-identical "
        "graphs, answers, and distance counts; 'scalar' is the per-query / "
        "per-node reference loop",
    )
    demo.add_argument(
        "--filter-specificity",
        type=float,
        default=None,
        metavar="S",
        help="run a *filtered* workload: per-point attributes plus per-query "
        "range predicates matching an expected fraction S of the points "
        "(0 < S <= 1); recall is measured against filtered brute force",
    )
    demo.add_argument(
        "--filter-strategy",
        choices=["inline", "acorn", "rwalks"],
        default="inline",
        help="filtered-search strategy: 'inline' masks the finished beam, "
        "'acorn' routes through filtered-out nodes (multi-hop expansion), "
        "'rwalks' adds same-label shortcut edges offline then searches "
        "inline over the augmented graph",
    )
    demo.add_argument(
        "--tier-mode",
        choices=["ram", "disk"],
        default="ram",
        help="'disk' saves the built index as a memory-mapped disk tier and "
        "answers with PQ-guided traversal + exact re-rank (only methods "
        "whose seed selection needs no raw vectors: Vamana/NSG/SSG/NSW/"
        "DPG/KGraph/RandomGraph); 'ram' is the paper's in-memory protocol",
    )
    demo.set_defaults(func=_cmd_demo)

    comp = sub.add_parser("complexity", help="LID/LRC hardness profile")
    comp.add_argument("--dataset", default="deep")
    comp.add_argument("--n", type=int, default=2000)
    comp.add_argument("--seed", type=int, default=0)
    comp.set_defaults(func=_cmd_complexity)

    rec = sub.add_parser("recommend", help="Figure 18 decision tree")
    rec.add_argument("--n", type=int, required=True)
    rec.add_argument("--hard", action="store_true")
    rec.set_defaults(func=_cmd_recommend)

    serve = sub.add_parser(
        "serve", help="streaming tier: churn + concurrent queries demo"
    )
    serve.add_argument("--dataset", default="deep")
    serve.add_argument("--n", type=int, default=2000)
    serve.add_argument("--queries", type=int, default=20)
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument("--beam-width", type=int, default=64)
    serve.add_argument("--max-degree", type=int, default=16)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--churn",
        type=float,
        default=0.1,
        help="fraction of the build set to delete (and replace with fresh "
        "inserts) while queries are in flight",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the initial build and mutation batches "
        "(graph state is bit-identical at any count)",
    )
    serve.add_argument(
        "--kernel",
        choices=["auto", "python", "numba", "scalar"],
        default=None,
        help="beam-search backend (default: $REPRO_KERNEL, else auto)",
    )
    serve.add_argument(
        "--stats",
        action="store_true",
        help="print client-observed latency percentiles and throughput",
    )
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
