"""ELPIS — Hercules partitions + per-leaf HNSW graphs (Section 3.6).

ELPIS is the paper's leading divide-and-conquer method.  Indexing splits the
dataset with the Hercules EAPCA tree and builds an HNSW-style graph (II +
RND) independently inside every leaf — smaller graphs need smaller degrees
and beams, the source of its indexing-time and footprint lead in Figures
7-8.  Query answering searches a heuristically chosen initial leaf, then
prunes the remaining leaves by comparing their EAPCA lower-bound distance
against the current k-th best answer, searching only the survivors (up to
``nprobe``) and merging results.

The original searches candidate leaves concurrently; this reproduction
searches them in lower-bound order with a shared best-so-far, which
preserves the distance-calculation behaviour (see DESIGN.md, "Known
deviations").
"""

from __future__ import annotations

import numpy as np

from ..core.beam_search import SearchResult, beam_search
from ..core.diversification import rnd
from ..core.graph import Graph
from ..core.heap import BoundedMaxHeap
from ..trees.hercules import HerculesLeaf, HerculesTree
from .base import BaseGraphIndex

__all__ = ["ELPISIndex"]


class ELPISIndex(BaseGraphIndex):
    """EAPCA-tree partitioning with an II+RND graph per leaf."""

    name = "ELPIS"

    def __init__(
        self,
        leaf_size: int | None = None,
        max_degree: int = 16,
        ef_construction: int = 48,
        n_segments: int = 8,
        nprobe: int = 4,
        seed: int = 0,
        default_beam_width: int = 48,
    ):
        super().__init__(seed, default_beam_width)
        if leaf_size is not None and leaf_size < 8:
            raise ValueError("leaf_size must be >= 8")
        #: target points per Hercules leaf; ``None`` scales it with the
        #: dataset (n/4, at least 512) so partitions stay large relative to
        #: k-NN neighborhoods, as in the paper's 100k+-point leaves
        self.leaf_size = leaf_size
        self.max_degree = max_degree
        self.ef_construction = ef_construction
        self.n_segments = n_segments
        self.nprobe = nprobe
        self.tree: HerculesTree | None = None
        self._leaves: list[HerculesLeaf] = []
        self._leaf_entries: list[int] = []
        self._leaf_centroids: np.ndarray | None = None

    def _build(self, rng: np.random.Generator) -> None:
        computer = self.computer
        leaf_size = self.leaf_size
        if leaf_size is None:
            leaf_size = max(512, computer.n // 4)
        self.tree = HerculesTree.build(
            computer.data, leaf_size, self.n_segments
        )
        self._leaves = self.tree.leaves()
        graph = Graph(computer.n)
        self._leaf_entries = []
        for leaf in self._leaves:
            entry = self._build_leaf_graph(graph, leaf.point_ids, rng)
            self._leaf_entries.append(entry)
        self.graph = graph
        self._leaf_centroids = np.stack(
            [computer.data[leaf.point_ids].mean(axis=0) for leaf in self._leaves]
        ).astype(np.float64)

    def _build_leaf_graph(
        self, graph: Graph, leaf_ids: np.ndarray, rng: np.random.Generator
    ) -> int:
        """Incremental insertion with RND pruning restricted to one leaf."""
        computer = self.computer
        order = rng.permutation(leaf_ids)
        inserted: list[int] = []
        visited_mask = np.zeros(computer.n, dtype=bool)
        for node in order:
            node = int(node)
            if not inserted:
                inserted.append(node)
                continue
            size = min(2, len(inserted))
            picks = rng.choice(len(inserted), size=size, replace=False)
            seeds = [inserted[int(p)] for p in picks]
            width = min(self.ef_construction, max(8, len(inserted)))
            result = beam_search(
                graph,
                computer,
                computer.data[node],
                seeds,
                k=min(width, len(inserted)),
                beam_width=width,
                visited_mask=visited_mask,
            )
            kept = rnd(computer, result.ids, result.dists, self.max_degree)
            graph.set_neighbors(node, kept)
            for nbr in kept:
                nbr = int(nbr)
                merged = np.concatenate([graph.neighbors(nbr), [node]])
                if merged.size > self.max_degree:
                    dists = computer.one_to_many(nbr, merged)
                    merged = rnd(computer, merged, dists, self.max_degree)
                graph.set_neighbors(nbr, merged)
            inserted.append(node)
        return int(order[0])

    def _query_seeds(self, query: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError("ELPIS overrides search() directly")

    def search(
        self, query: np.ndarray, k: int = 10, beam_width: int | None = None
    ) -> SearchResult:
        """Leaf-ranked multi-graph beam search with EAPCA pruning."""
        computer = self._require_built()
        width = max(beam_width or self.default_beam_width, k)
        mark = computer.checkpoint()
        # Heuristic leaf ordering: distance from the query to each leaf
        # centroid (one distance calculation per leaf, charged below); the
        # admissible EAPCA bound is kept for pruning against the k-th bsf.
        q64 = np.asarray(query, dtype=np.float64)
        centroid_dists = np.sqrt(
            ((self._leaf_centroids - q64) ** 2).sum(axis=1)
        )
        computer.count += len(self._leaves)
        order = np.argsort(centroid_dists, kind="stable")
        results = BoundedMaxHeap(k)
        hops = 0
        searched = 0
        visited_mask = np.zeros(computer.n, dtype=bool)
        for leaf_idx in order:
            leaf = self._leaves[int(leaf_idx)]
            if searched >= self.nprobe:
                break
            if searched > 0 and leaf.synopsis.lower_bound(query) >= results.worst_dist():
                continue  # EAPCA lower bound prunes this leaf
            entry = self._leaf_entries[int(leaf_idx)]
            seeds = np.unique(
                np.concatenate([[entry], self.graph.neighbors(entry)])
            )
            result = beam_search(
                self.graph,
                computer,
                query,
                seeds,
                k=k,
                beam_width=width,
                visited_mask=visited_mask,
            )
            hops += result.hops
            for dist, node in zip(result.dists, result.ids):
                results.push(float(dist), int(node))
            searched += 1
        ids, dists = results.sorted_items()
        return SearchResult(
            ids=ids,
            dists=dists,
            distance_calls=computer.since(mark),
            hops=hops,
            visited=np.empty(0, dtype=np.int64),
        )

    def memory_bytes(self) -> int:
        """Per-leaf graphs plus the Hercules tree."""
        total = super().memory_bytes()
        if self.tree is not None:
            total += self.tree.memory_bytes()
        return total
