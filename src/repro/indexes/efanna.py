"""EFANNA — randomized K-D tree initialization + NNDescent (Section 3.6).

EFANNA builds its approximate k-NN graph by seeding every node's neighbor
list from the leaves of randomized truncated K-D trees, then refining with
NNDescent.  The same trees provide query-time seeds (the KD strategy).  The
paper highlights its large memory footprint (trees + dense k-NN lists) as
the reason NSG/SSG — which build on it — fail to scale past 25GB.
"""

from __future__ import annotations

import numpy as np

from ..core.nndescent import knn_graph_to_graph, nn_descent
from ..trees.kdtree import KDForest
from .base import BaseGraphIndex

__all__ = ["EFANNAIndex"]


class EFANNAIndex(BaseGraphIndex):
    """K-D-tree-initialized NNDescent graph with KD query seeds."""

    name = "EFANNA"

    def __init__(
        self,
        k_neighbors: int = 20,
        n_trees: int = 4,
        leaf_size: int = 16,
        max_iterations: int = 6,
        n_query_seeds: int = 24,
        seed: int = 0,
        default_beam_width: int = 64,
        kernel: str | None = None,
    ):
        super().__init__(seed, default_beam_width)
        self.k_neighbors = k_neighbors
        self.n_trees = n_trees
        self.leaf_size = leaf_size
        self.max_iterations = max_iterations
        self.n_query_seeds = n_query_seeds
        #: construction-kernel backend (``None`` = ``$REPRO_KERNEL``);
        #: bit-identical graph at every backend
        self.kernel = kernel
        self._forest: KDForest | None = None

    def _build(self, rng: np.random.Generator) -> None:
        from ..core.kernels import resolve_backend

        computer = self.computer
        self._forest = KDForest.build(
            computer.data, self.n_trees, self.leaf_size, rng
        )
        k = min(self.k_neighbors, computer.n - 1)
        init_ids = self._forest.initial_neighbor_lists(computer.n, k, rng)
        if resolve_backend(self.kernel) != "scalar":
            # one segmented call; row r holds exactly the per-node scalar
            # call's ids, so distances and charging are bit-identical
            n = computer.n
            stops = np.arange(1, n + 1, dtype=np.int64) * k
            init_dists = computer.points_to_many_segmented(
                np.arange(n, dtype=np.int64), init_ids.ravel(), stops - k, stops
            ).reshape(n, k)
        else:
            init_dists = np.empty_like(init_ids, dtype=np.float64)
            for node in range(computer.n):
                init_dists[node] = computer.one_to_many(node, init_ids[node])
        result = nn_descent(
            computer,
            k=k,
            rng=rng,
            init_ids=init_ids,
            init_dists=init_dists,
            max_iterations=self.max_iterations,
            backend=self.kernel,
        )
        self.graph = knn_graph_to_graph(result.ids)
        self._knn_ids = result.ids
        self._knn_dists = result.dists

    def knn_lists(self) -> tuple[np.ndarray, np.ndarray]:
        """The refined ``(ids, dists)`` k-NN lists (consumed by NSG/SSG)."""
        if self.graph is None:
            raise RuntimeError("build() first")
        return self._knn_ids, self._knn_dists

    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        cands = self._forest.search_candidates(query, self.n_query_seeds)
        return cands[: self.n_query_seeds * 2]

    def memory_bytes(self) -> int:
        """Graph + trees + the retained dense k-NN lists."""
        total = super().memory_bytes()
        if self._forest is not None:
            total += self._forest.memory_bytes()
        if self.graph is not None:
            total += self._knn_ids.nbytes + self._knn_dists.nbytes
        return total
