"""IEH — Iterative Expanding Hashing (Section 3.6).

IEH seeds each node's initial neighbor candidates from LSH bucket collisions
and refines the graph with NNDescent; the same hash index supplies query
seeds.  The paper excludes IEH from its main evaluation for sub-optimal
performance but keeps it in the taxonomy — it is included here for
completeness and used in ablations.
"""

from __future__ import annotations

import numpy as np

from ..core.nndescent import knn_graph_to_graph, nn_descent
from ..hashing.lsh import LSHIndex
from .base import BaseGraphIndex

__all__ = ["IEHIndex"]


class IEHIndex(BaseGraphIndex):
    """LSH-initialized NNDescent graph with LSH query seeds."""

    name = "IEH"

    def __init__(
        self,
        k_neighbors: int = 20,
        n_tables: int = 4,
        n_projections: int = 8,
        max_iterations: int = 6,
        n_query_seeds: int = 16,
        seed: int = 0,
        default_beam_width: int = 64,
        kernel: str | None = None,
    ):
        super().__init__(seed, default_beam_width)
        self.k_neighbors = k_neighbors
        self.max_iterations = max_iterations
        self.n_query_seeds = n_query_seeds
        #: construction-kernel backend (``None`` = ``$REPRO_KERNEL``);
        #: bit-identical graph at every backend
        self.kernel = kernel
        self._lsh = LSHIndex(n_tables=n_tables, n_projections=n_projections)

    def _build(self, rng: np.random.Generator) -> None:
        computer = self.computer
        n = computer.n
        self._lsh.seed = self.seed
        self._lsh.build(computer.data)
        k = min(self.k_neighbors, n - 1)
        init_ids = np.empty((n, k), dtype=np.int64)
        init_dists = np.empty((n, k), dtype=np.float64)
        for node in range(n):
            pool = self._lsh.candidates(computer.data[node], min_candidates=k + 1)
            pool = pool[pool != node]
            if pool.size < k:
                extra = rng.choice(n - 1, size=k - pool.size, replace=False)
                extra[extra >= node] += 1
                pool = np.unique(np.concatenate([pool, extra]))
                pool = pool[pool != node]
            dists = computer.one_to_many(node, pool)
            order = np.argsort(dists, kind="stable")[:k]
            if order.size < k:
                order = np.resize(order, k)
            init_ids[node] = pool[order]
            init_dists[node] = dists[order]
        result = nn_descent(
            computer,
            k=k,
            rng=rng,
            init_ids=init_ids,
            init_dists=init_dists,
            max_iterations=self.max_iterations,
            backend=self.kernel,
        )
        self.graph = knn_graph_to_graph(result.ids)

    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        cands = self._lsh.candidates(query, min_candidates=self.n_query_seeds)
        if cands.size == 0:
            n = self.computer.n
            cands = self._query_rng.choice(
                n, size=min(self.n_query_seeds, n), replace=False
            )
        return cands[: self.n_query_seeds * 2].astype(np.int64)

    def memory_bytes(self) -> int:
        """Graph plus the hash tables."""
        return super().memory_bytes() + self._lsh.memory_bytes()
