"""The twelve evaluated graph-based methods, plus IEH, the exact baseline,
and the Figure-17 optimized variants.

Use :func:`create_index` to instantiate any method by its paper name, or
:data:`METHOD_REGISTRY` to enumerate them.
"""

from __future__ import annotations

from .base import BaseGraphIndex, BaseIndex, BuildReport
from .bruteforce import BruteForceIndex
from .dpg import DPGIndex
from .efanna import EFANNAIndex
from .elpis import ELPISIndex
from .hcnng import HCNNGIndex
from .hnsw import HNSWIndex
from .ieh import IEHIndex
from .ivfpq import IVFIndex
from .kgraph import KGraphIndex
from .lshapg import LSHAPGIndex
from .ngt import NGTIndex
from .nsg import NSGIndex
from .nsw import NSWIndex
from .optimized import OptimizedIndex
from .randomgraph import RandomGraphIndex
from .sptag import SPTAGIndex
from .ssg import SSGIndex
from .vamana import VamanaIndex

__all__ = [
    "BaseIndex",
    "BaseGraphIndex",
    "BuildReport",
    "BruteForceIndex",
    "KGraphIndex",
    "NSWIndex",
    "HNSWIndex",
    "EFANNAIndex",
    "DPGIndex",
    "NGTIndex",
    "NSGIndex",
    "SSGIndex",
    "VamanaIndex",
    "SPTAGIndex",
    "HCNNGIndex",
    "ELPISIndex",
    "LSHAPGIndex",
    "IEHIndex",
    "IVFIndex",
    "OptimizedIndex",
    "RandomGraphIndex",
    "METHOD_REGISTRY",
    "create_index",
]

#: Paper method name -> factory returning a fresh index with default params.
METHOD_REGISTRY: dict[str, object] = {
    "KGraph": KGraphIndex,
    "NSW": NSWIndex,
    "HNSW": HNSWIndex,
    "EFANNA": EFANNAIndex,
    "DPG": DPGIndex,
    "NGT": NGTIndex,
    "NSG": NSGIndex,
    "SSG": SSGIndex,
    "Vamana": VamanaIndex,
    "SPTAG-KDT": lambda **kw: SPTAGIndex(tree_type="kdt", **kw),
    "SPTAG-BKT": lambda **kw: SPTAGIndex(tree_type="bkt", **kw),
    "HCNNG": HCNNGIndex,
    "ELPIS": ELPISIndex,
    "LSHAPG": LSHAPGIndex,
    "IEH": IEHIndex,
    "IVF-Flat": lambda **kw: IVFIndex(use_pq=False, **kw),
    "IVF-PQ": lambda **kw: IVFIndex(use_pq=True, **kw),
    "BruteForce": BruteForceIndex,
}


def create_index(name: str, **params) -> BaseIndex:
    """Instantiate a method by its paper name (e.g. ``"SPTAG-BKT"``)."""
    if name not in METHOD_REGISTRY:
        raise KeyError(
            f"unknown method {name!r}; choose from {sorted(METHOD_REGISTRY)}"
        )
    return METHOD_REGISTRY[name](**params)
