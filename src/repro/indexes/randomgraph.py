"""Uniform-random regular graph — a query-engine fixture, not a paper method.

The parallel batch-query engine is exercised and benchmarked on graphs whose
*construction* cost is irrelevant: only the traversal and distance-kernel
work matters for query throughput.  :class:`RandomGraphIndex` builds a
``degree``-regular directed circulant graph over random strides in one
vectorized shot (no distance calculations), then answers queries with the
standard Algorithm-1 beam search seeded KS-style.  This makes 100k+-node
query-scaling benchmarks affordable where a real builder would take minutes
in pure Python.
"""

from __future__ import annotations

import numpy as np

from ..core.graph import Graph
from .base import BaseGraphIndex

__all__ = ["RandomGraphIndex"]


class RandomGraphIndex(BaseGraphIndex):
    """Vectorized random regular graph with KS-style per-query random seeds."""

    name = "RandomGraph"
    # seed selection is RNG/medoid-only: answers fine from a disk tier
    disk_tier_capable = True

    def __init__(
        self,
        degree: int = 16,
        n_query_seeds: int = 16,
        seed: int = 0,
        default_beam_width: int = 64,
    ):
        super().__init__(seed, default_beam_width)
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.n_query_seeds = n_query_seeds

    def _build(self, rng: np.random.Generator) -> None:
        # random circulant layout: node i links to (i + s) mod n for a fixed
        # set of distinct random strides s >= 1, so rows are duplicate- and
        # self-loop-free by construction and the whole graph is one reshape
        n = self.computer.n
        degree = min(self.degree, max(n - 1, 0))
        if degree:
            strides = rng.choice(n - 1, size=degree, replace=False) + 1
        else:
            strides = np.empty(0, dtype=np.int64)
        nodes = np.arange(n, dtype=np.int64)[:, None]
        indices = ((nodes + strides[None, :]) % n).astype(np.int32).ravel()
        indptr = np.arange(n + 1, dtype=np.int64) * degree
        self.graph = Graph.from_csr(indptr, indices)

    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        n = self.computer.n
        size = min(self.n_query_seeds, n)
        return self._query_rng.choice(n, size=size, replace=False)
