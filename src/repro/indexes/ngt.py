"""NGT — pruned bi-directed k-NN graph with VP-tree seeds (Section 3.6).

The paper evaluates NGT's bi-directed k-NN graph variant (Iwasaki): an
approximate k-NN graph is made bi-directed by adding every reverse edge,
then each (now dense) neighborhood is pruned back with RND.  Seeds come from
a Vantage-Point tree over the dataset.
"""

from __future__ import annotations

import numpy as np

from ..core.diversification import rnd
from ..core.graph import Graph
from ..core.nndescent import nn_descent
from ..trees.vptree import VPTree
from .base import BaseGraphIndex

__all__ = ["NGTIndex"]


class NGTIndex(BaseGraphIndex):
    """Bi-directed, RND-pruned k-NN graph with VP-tree seed selection."""

    name = "NGT"

    def __init__(
        self,
        k_neighbors: int = 16,
        max_degree: int = 24,
        max_iterations: int = 8,
        vp_leaf_size: int = 16,
        n_query_seeds: int = 12,
        seed: int = 0,
        default_beam_width: int = 64,
        kernel: str | None = None,
    ):
        super().__init__(seed, default_beam_width)
        self.k_neighbors = k_neighbors
        self.max_degree = max_degree
        self.max_iterations = max_iterations
        self.vp_leaf_size = vp_leaf_size
        self.n_query_seeds = n_query_seeds
        #: construction-kernel backend (``None`` = ``$REPRO_KERNEL``);
        #: bit-identical graph at every backend
        self.kernel = kernel
        self._vptree: VPTree | None = None

    def _build(self, rng: np.random.Generator) -> None:
        from ..core.kernels import resolve_backend

        computer = self.computer
        k = min(self.k_neighbors, computer.n - 1)
        result = nn_descent(
            computer, k=k, rng=rng, max_iterations=self.max_iterations,
            backend=self.kernel,
        )
        graph = Graph(computer.n)
        for node in range(computer.n):
            graph.set_neighbors(node, result.ids[node])
        # bi-direct, then prune dense neighborhoods back with RND
        graph.make_undirected()
        if resolve_backend(self.kernel) != "scalar":
            from ..core.build_kernels import prune_merged_many

            owners = [
                node
                for node in range(computer.n)
                if graph.neighbors(node).size > self.max_degree
            ]
            pruned = prune_merged_many(
                computer, owners, [graph.neighbors(o) for o in owners],
                self.max_degree, "rnd", backend=self.kernel,
            )
            for node, kept in zip(owners, pruned):
                graph.set_neighbors(node, kept)
        else:
            for node in range(computer.n):
                nbrs = graph.neighbors(node)
                if nbrs.size > self.max_degree:
                    dists = computer.one_to_many(node, nbrs)
                    graph.set_neighbors(
                        node, rnd(computer, nbrs, dists, self.max_degree)
                    )
        self.graph = graph
        self._vptree = VPTree.build(computer.data, self.vp_leaf_size, rng)

    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        seeds = self._vptree.search(
            query, self.n_query_seeds, max_examined=self.n_query_seeds * 8
        )
        if seeds.size == 0:
            seeds = np.asarray([0], dtype=np.int64)
        # VP-tree probing evaluates real distances; charge them to the query
        self.computer.count += self._vptree.last_examined
        return seeds

    def memory_bytes(self) -> int:
        """Graph plus the vantage-point tree."""
        total = super().memory_bytes()
        if self._vptree is not None:
            total += self._vptree.memory_bytes()
        return total
