"""LSHAPG — HNSW graph + LSB-tree seeds + probabilistic routing (Section 3.6).

LSHAPG augments an HNSW-style base graph with ``L`` LSB hash tables: the
tables supply multiple seeds per query (instead of HNSW's single SN descent)
and support *probabilistic routing* — neighbors whose projected distance
already exceeds a slack factor over the current bound are skipped before
their raw vectors are evaluated.  The paper finds the routing prunes
promising neighbors, forcing larger beams at high recall; the same effect
emerges here.
"""

from __future__ import annotations

import numpy as np

from ..core.beam_search import SearchResult
from ..core.heap import NeighborQueue
from ..core.incremental import build_ii_graph
from ..hashing.lsbtree import LSBForest
from .base import BaseGraphIndex

__all__ = ["LSHAPGIndex"]


class LSHAPGIndex(BaseGraphIndex):
    """II+RND base graph with LSB-table seeding and projected-distance routing."""

    name = "LSHAPG"

    def __init__(
        self,
        max_degree: int = 24,
        ef_construction: int = 64,
        n_tables: int = 4,
        n_projections: int = 4,
        n_query_seeds: int = 16,
        routing_slack: float = 1.1,
        probabilistic_routing: bool = True,
        seed: int = 0,
        default_beam_width: int = 64,
        n_workers: int | None = None,
    ):
        super().__init__(seed, default_beam_width)
        if routing_slack < 1.0:
            raise ValueError("routing_slack must be >= 1")
        self.max_degree = max_degree
        self.ef_construction = ef_construction
        self.n_tables = n_tables
        self.n_projections = n_projections
        self.n_query_seeds = n_query_seeds
        self.routing_slack = routing_slack
        self.probabilistic_routing = probabilistic_routing
        self.n_workers = n_workers
        self._forest: LSBForest | None = None

    def _build(self, rng: np.random.Generator) -> None:
        result = build_ii_graph(
            self.computer,
            max_degree=self.max_degree,
            beam_width=self.ef_construction,
            diversify="rnd",
            rng=rng,
            track_pruning=False,
            n_workers=self.n_workers,
        )
        self.graph = result.graph
        self._forest = LSBForest(
            n_tables=self.n_tables,
            n_projections=self.n_projections,
            seed=self.seed,
        )
        self._forest.build(self.computer.data)

    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        seeds = self._forest.seeds_for(query, self.n_query_seeds)
        if seeds.size == 0:
            seeds = np.asarray([0], dtype=np.int64)
        return seeds

    def search(
        self, query: np.ndarray, k: int = 10, beam_width: int | None = None
    ) -> SearchResult:
        """Beam search with optional projected-distance neighbor skipping."""
        if not self.probabilistic_routing:
            return super().search(query, k, beam_width)
        computer = self._require_built()
        width = max(beam_width or self.default_beam_width, k)
        mark = computer.checkpoint()
        seeds = self._query_seeds(query)
        queue = NeighborQueue(width)
        visited = np.zeros(self.graph.n, dtype=bool)
        seed_dists = computer.to_query(seeds, query)
        visited[seeds] = True
        for dist, node in zip(seed_dists, seeds):
            queue.insert(float(dist), int(node))
        hops = 0
        while True:
            node = queue.pop_nearest_unexpanded()
            if node is None:
                break
            hops += 1
            nbrs = self.graph.neighbors(node)
            if nbrs.size == 0:
                continue
            fresh = nbrs[~visited[nbrs]]
            if fresh.size == 0:
                continue
            visited[fresh] = True
            bound = queue.worst_dist()
            if np.isfinite(bound):
                # probabilistic routing: skip neighbors whose projected
                # distance already exceeds slack * bound
                estimates = self._forest.projected_distance(query, fresh)
                fresh = fresh[estimates <= self.routing_slack * bound]
                if fresh.size == 0:
                    continue
            dists = computer.to_query(fresh, query)
            insert_bound = queue.worst_dist()
            for dist, nbr in zip(dists.tolist(), fresh.tolist()):
                if dist < insert_bound:
                    insert_bound = queue.insert(dist, nbr)
        ids, dists = queue.top_k(k)
        return SearchResult(
            ids=ids,
            dists=dists,
            distance_calls=computer.since(mark),
            hops=hops,
            visited=np.empty(0, dtype=np.int64),
        )

    def memory_bytes(self) -> int:
        """Graph plus the LSB tables."""
        total = super().memory_bytes()
        if self._forest is not None:
            total += self._forest.memory_bytes()
        return total
