"""ParlayANN-style "optimized implementation" variants — Figure 17.

The paper contrasts each method's original code with ParlayANN's optimized
reimplementations, attributing the gap to *data layout*: flat contiguous
adjacency storage removes pointer chasing and cache misses.  The same
contrast is reproduced here: :class:`OptimizedIndex` wraps any built graph
index, flattens its adjacency lists into one CSR array pair, and runs the
identical beam search over the contiguous layout.  Distance-calculation
counts are unchanged by construction; only wall-clock and memory layout
differ — exactly the effect Figure 17 isolates.
"""

from __future__ import annotations

import numpy as np

from ..core.beam_search import SearchResult
from ..core.graph import CSRGraph
from ..core.heap import NeighborQueue
from .base import BaseGraphIndex, BaseIndex

__all__ = ["OptimizedIndex"]


class OptimizedIndex(BaseIndex):
    """Flat-CSR re-layout of a built graph index (``<name>_Opt``)."""

    def __init__(self, base: BaseGraphIndex):
        if base.graph is None:
            raise ValueError("base index must be built before optimizing")
        super().__init__(base.seed)
        self.base = base
        self.name = f"{base.name}_Opt"
        self.computer = base.computer
        self.indptr, self.indices = base.graph.to_csr()
        self.build_report = base.build_report

    def _build(self, rng: np.random.Generator) -> None:  # pragma: no cover
        raise RuntimeError("OptimizedIndex wraps an already-built index")

    def build(self, data: np.ndarray) -> "OptimizedIndex":  # pragma: no cover
        """Unsupported: wrap an already-built index instead."""
        raise RuntimeError("OptimizedIndex wraps an already-built index")

    def search(
        self, query: np.ndarray, k: int = 10, beam_width: int | None = None
    ) -> SearchResult:
        """Beam search reading neighbors from the flat CSR arrays."""
        computer = self._require_built()
        width = max(beam_width or self.base.default_beam_width, k)
        mark = computer.checkpoint()
        seeds = self.base._query_seeds(query)
        queue = NeighborQueue(width)
        n = self.indptr.shape[0] - 1
        visited = np.zeros(n, dtype=bool)
        seed_dists = computer.to_query(seeds, query)
        visited[seeds] = True
        for dist, node in zip(seed_dists, seeds):
            queue.insert(float(dist), int(node))
        hops = 0
        indptr, indices = self.indptr, self.indices
        while True:
            node = queue.pop_nearest_unexpanded()
            if node is None:
                break
            hops += 1
            nbrs = indices[indptr[node] : indptr[node + 1]]
            if nbrs.size == 0:
                continue
            fresh = nbrs[~visited[nbrs]]
            if fresh.size == 0:
                continue
            visited[fresh] = True
            dists = computer.to_query(fresh, query)
            bound = queue.worst_dist()
            for dist, nbr in zip(dists.tolist(), fresh.tolist()):
                if dist < bound:
                    bound = queue.insert(dist, nbr)
        ids, dists = queue.top_k(k)
        return SearchResult(
            ids=ids,
            dists=dists,
            distance_calls=computer.since(mark),
            hops=hops,
            visited=np.empty(0, dtype=np.int64),
        )

    def seed_query_rng(self, query_index: int) -> None:
        """Reseed both this wrapper and the base index (seed selection runs
        inside the base's ``_query_seeds``)."""
        super().seed_query_rng(query_index)
        self.base.seed_query_rng(query_index)

    def shared_query_state(self) -> dict[str, np.ndarray]:
        """Dataset arrays plus this wrapper's already-flat CSR arrays."""
        state = BaseIndex.shared_query_state(self)
        state["csr_indptr"] = self.indptr
        state["csr_indices"] = self.indices
        return state

    def attach_shared_query_state(self, arrays: dict[str, np.ndarray]) -> None:
        """Rebind the wrapper and its base index to one shared view each."""
        BaseIndex.attach_shared_query_state(self, arrays)
        self.indptr = arrays["csr_indptr"]
        self.indices = arrays["csr_indices"]
        # seed selection runs inside the base index; give it the same shared
        # computer (one distance counter) and a CSR view of the same graph
        self.base.computer = self.computer
        self.base.graph = CSRGraph(self.indptr, self.indices, validate=False)
        self.base._visited_scratch = None

    def __getstate__(self) -> dict:
        """Pickle without the CSR arrays; workers re-attach them shared."""
        state = super().__getstate__()
        state["indptr"] = None
        state["indices"] = None
        return state

    def memory_bytes(self) -> int:
        """CSR arrays plus the base method's seed structures."""
        seed_structures = self.base.memory_bytes() - self.base.graph.memory_bytes()
        return self.indptr.nbytes + self.indices.nbytes + max(seed_structures, 0)
