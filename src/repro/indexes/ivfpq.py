"""IVF-Flat / IVF-PQ — the inverted-index family (Section 2.1).

Not one of the twelve graph methods, but the paper's survey describes the
inverted-index family (IVF-PQ, IMI) as the main non-graph competitor, and
its "future directions" suggest IVF-style structures for finding neighbors
during graph construction.  This implementation provides that substrate:
k-means coarse quantization into posting lists, with either exact residual
scoring (IVF-Flat) or product-quantized asymmetric scoring followed by
exact re-ranking (IVF-PQ).  The accuracy/efficiency tradeoff is tuned by
``nprobe``, exactly as the paper describes.
"""

from __future__ import annotations

import numpy as np

from ..clustering.kmeans import kmeans
from ..core.beam_search import SearchResult
from ..summarization.quantization import ProductQuantizer, largest_subspace_count
from .base import BaseIndex

__all__ = ["IVFIndex"]


class IVFIndex(BaseIndex):
    """Inverted file index with optional product-quantized scoring."""

    name = "IVF"

    def __init__(
        self,
        n_lists: int = 32,
        nprobe: int = 4,
        use_pq: bool = False,
        pq_subspaces: int = 8,
        pq_centroids: int = 16,
        rerank: int = 64,
        seed: int = 0,
    ):
        super().__init__(seed)
        if n_lists < 1:
            raise ValueError("n_lists must be >= 1")
        if nprobe < 1:
            raise ValueError("nprobe must be >= 1")
        self.n_lists = n_lists
        self.nprobe = nprobe
        self.use_pq = use_pq
        self.pq_subspaces = pq_subspaces
        self.pq_centroids = pq_centroids
        self.rerank = rerank
        self.name = "IVF-PQ" if use_pq else "IVF-Flat"
        self._centroids: np.ndarray | None = None
        self._lists: list[np.ndarray] = []
        self._pq: ProductQuantizer | None = None
        self._codes: np.ndarray | None = None

    def _build(self, rng: np.random.Generator) -> None:
        computer = self.computer
        n_lists = min(self.n_lists, computer.n)
        result = kmeans(computer.data, n_lists, rng, max_iterations=20)
        # codebook training is distance work too; charge it like the paper
        computer.count += result.iterations * computer.n * n_lists
        self._centroids = result.centroids
        self._lists = [
            np.flatnonzero(result.labels == cluster).astype(np.int64)
            for cluster in range(n_lists)
        ]
        if self.use_pq:
            # ``pq_subspaces``/``pq_centroids`` are soft preferences here:
            # round down to a valid configuration for this dataset's shape
            self._pq = ProductQuantizer.fit(
                computer.data,
                n_subspaces=largest_subspace_count(computer.dim, self.pq_subspaces),
                n_centroids=min(self.pq_centroids, computer.n),
                rng=rng,
            )
            self._codes = self._pq.encode(computer.data)

    def search(
        self, query: np.ndarray, k: int = 10, beam_width: int | None = None
    ) -> SearchResult:
        """Probe the ``nprobe`` closest posting lists.

        ``beam_width``, when given, overrides ``nprobe`` so the evaluation
        harness can sweep the accuracy/efficiency tradeoff uniformly.
        """
        computer = self._require_built()
        mark = computer.checkpoint()
        nprobe = min(beam_width or self.nprobe, len(self._lists))
        q64 = np.asarray(query, dtype=np.float64)
        coarse = np.sqrt(((self._centroids - q64) ** 2).sum(axis=1))
        computer.count += len(self._lists)
        probes = np.argsort(coarse, kind="stable")[:nprobe]
        candidates = [self._lists[int(p)] for p in probes if self._lists[int(p)].size]
        if candidates:
            pool = np.concatenate(candidates)
        else:
            pool = np.arange(min(k, computer.n), dtype=np.int64)
        if self.use_pq and pool.size > self.rerank:
            # ADC estimate over the pool, exact re-rank of the best few.
            # ADC table lookups are cheap; charge one call per 4 estimates.
            estimates = self._pq.asymmetric_distances(query, self._codes[pool])
            computer.count += pool.size // 4
            keep = np.argsort(estimates, kind="stable")[: self.rerank]
            pool = pool[keep]
        dists = computer.to_query(pool, query)
        k_eff = min(k, pool.size)
        top = np.argsort(dists, kind="stable")[:k_eff]
        return SearchResult(
            ids=pool[top],
            dists=dists[top],
            distance_calls=computer.since(mark),
            hops=int(nprobe),
            visited=pool,
        )

    def memory_bytes(self) -> int:
        """Centroids, posting lists, and (for PQ) codebooks + codes."""
        total = 0
        if self._centroids is not None:
            total += self._centroids.nbytes
        total += sum(lst.nbytes for lst in self._lists)
        if self._pq is not None:
            total += self._pq.memory_bytes() + self._codes.nbytes
        return total
