"""Shared index interface.

Every reproduced method exposes the same surface:

* ``build(data)`` — construct the index, recording wall time and distance
  calculations (:class:`BuildReport`);
* ``search(query, k, beam_width)`` — answer one ng-approximate k-NN query,
  returning a :class:`~repro.core.beam_search.SearchResult` with its own
  distance accounting;
* ``memory_bytes()`` — bytes attributable to the index structures (the
  Figure 8/9/10 footprint metric; raw data is reported separately).

Graph-backed methods subclass :class:`BaseGraphIndex`, which provides the
standard beam-search query path (Algorithm 1) on top of per-method seeds.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

import numpy as np

from ..core.beam_search import SearchResult, beam_search, pq_beam_search
from ..core.distances import DistanceComputer
from ..core.graph import CSRGraph, Graph

__all__ = ["BuildReport", "BaseIndex", "BaseGraphIndex", "load_disk_index"]


@dataclass
class BuildReport:
    """Construction cost accounting (Figures 7-9, Table 2)."""

    distance_calls: int = 0
    wall_time_s: float = 0.0


class BaseIndex(abc.ABC):
    """Common build/search/footprint contract for all methods."""

    name: str = "base"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.computer: DistanceComputer | None = None
        self.build_report = BuildReport()
        self._query_rng = np.random.default_rng(seed ^ 0x5EED)

    def build(self, data: np.ndarray) -> "BaseIndex":
        """Construct the index over ``data``, recording cost."""
        self.computer = DistanceComputer(data)
        rng = np.random.default_rng(self.seed)
        start = time.perf_counter()
        mark = self.computer.checkpoint()
        self._build(rng)
        self.build_report = BuildReport(
            distance_calls=self.computer.since(mark),
            wall_time_s=time.perf_counter() - start,
        )
        return self

    @abc.abstractmethod
    def _build(self, rng: np.random.Generator) -> None:
        """Method-specific construction; ``self.computer`` is ready."""

    @abc.abstractmethod
    def search(
        self, query: np.ndarray, k: int = 10, beam_width: int | None = None
    ) -> SearchResult:
        """Answer one ng-approximate k-NN query."""

    def search_batch(
        self,
        queries: np.ndarray,
        k: int = 10,
        beam_width: int | None = None,
        query_indices=None,
        kernel: str | None = None,
    ) -> list[SearchResult]:
        """Answer a batch of queries; results match per-query :meth:`search`.

        The generic implementation is the per-query reference loop.  Graph
        indexes answering through the standard Algorithm-1 path override
        this with the vectorized multi-query beam kernel
        (:mod:`repro.core.kernels`), which is bit-identical by contract.

        ``query_indices`` (global indices within the workload) reseed the
        per-query RNG before each query's seed selection, exactly like the
        batch-query engine's sequential path — so batched and per-query
        execution consume identical randomness.
        """
        del kernel  # the reference loop has no backend to select
        queries = np.atleast_2d(np.asarray(queries))
        results = []
        for j in range(queries.shape[0]):
            if query_indices is not None:
                self.seed_query_rng(int(query_indices[j]))
            results.append(self.search(queries[j], k=k, beam_width=beam_width))
        return results

    def memory_bytes(self) -> int:
        """Bytes held by index structures (excludes the raw vectors)."""
        return 0

    def _require_built(self) -> DistanceComputer:
        if self.computer is None:
            raise RuntimeError(f"{self.name}: call build() before search()")
        return self.computer

    # ------------------------------------------------------------------
    # batch-engine contract: deterministic per-query randomness and
    # shared-memory state for worker processes
    # ------------------------------------------------------------------
    def seed_query_rng(self, query_index: int) -> None:
        """Reseed the per-query RNG deterministically from ``query_index``.

        The batch-query engine calls this before every query so that seed
        selection depends only on ``(self.seed, query_index)`` — never on how
        many queries ran before in the same process.  That is what makes a
        sharded parallel run bit-identical to the sequential one.
        """
        self._query_rng = np.random.default_rng(
            (self.seed ^ 0x5EED, int(query_index))
        )

    def shared_query_state(self) -> dict[str, np.ndarray]:
        """Arrays the batch engine should place in shared memory.

        The returned arrays are stripped from the pickled index (see
        ``__getstate__``) and re-attached in each worker via
        :meth:`attach_shared_query_state`.
        """
        computer = self._require_built()
        return {
            "data": computer.data,
            "data64": computer._data64,
            "sq_norms": computer._sq_norms,
        }

    def attach_shared_query_state(self, arrays: dict[str, np.ndarray]) -> None:
        """Rebind this (unpickled) index to shared-memory array views."""
        self.computer = DistanceComputer.from_shared(
            arrays["data"], arrays["data64"], arrays["sq_norms"]
        )

    def __getstate__(self) -> dict:
        """Pickle without the dataset; workers re-attach it from shared memory."""
        state = self.__dict__.copy()
        state["computer"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


class BaseGraphIndex(BaseIndex):
    """Graph-backed methods: beam search over ``self.graph`` with seeds."""

    #: Whether this method can answer from a disk-resident tier.  True only
    #: for methods whose seed selection needs no raw-vector access (random
    #: seeds and/or a pickled medoid); methods that probe trees/LSH tables
    #: against exact vectors at seed time (HNSW, NGT, SPTAG, EFANNA, HCNNG,
    #: IEH, ELPIS, LSHAPG) must stay in RAM mode.
    disk_tier_capable: bool = False

    def __init__(self, seed: int = 0, default_beam_width: int = 64):
        super().__init__(seed)
        if default_beam_width < 1:
            raise ValueError("default_beam_width must be >= 1")
        self.graph: Graph | None = None
        self.default_beam_width = default_beam_width
        self._visited_scratch: np.ndarray | None = None
        # (source graph, CSRGraph flattening) for the batch kernel; keyed by
        # identity so a rebuild invalidates it
        self._csr_cache: tuple | None = None
        # disk-tier state: the opened tier (never pickled) and its directory
        # (pickled, so worker processes can re-open the mmap themselves)
        self._disk_tier = None
        self._disk_tier_dir: str | None = None

    @abc.abstractmethod
    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        """Seed node ids for one query (method-specific SS strategy)."""

    def search(
        self,
        query: np.ndarray,
        k: int = 10,
        beam_width: int | None = None,
        exclude_mask: np.ndarray | None = None,
    ) -> SearchResult:
        """Algorithm 1 on the method's graph, seeded by its SS strategy.

        ``exclude_mask`` flags nodes filtered from the answers (traversed,
        never returned — see :func:`~repro.core.beam_search.beam_search`);
        the filtered-search tier passes per-query predicate masks here.
        Masked answers are padded to exactly ``k`` slots with
        ``(PAD_ID, inf)`` on shortfall.
        """
        if self._disk_tier is not None:
            return self._search_disk(query, k, beam_width)
        computer = self._require_built()
        if self.graph is None:
            raise RuntimeError(f"{self.name}: graph missing; build() first")
        width = beam_width or max(self.default_beam_width, k)
        width = max(width, k)
        mark = computer.checkpoint()
        seeds = self._query_seeds(query)
        if self._visited_scratch is None or self._visited_scratch.size != self.graph.n:
            self._visited_scratch = np.zeros(self.graph.n, dtype=bool)
        result = beam_search(
            self.graph,
            computer,
            query,
            seeds,
            k=k,
            beam_width=width,
            visited_mask=self._visited_scratch,
            exclude_mask=exclude_mask,
        )
        # charge seed-selection distance work to the query
        result.distance_calls = computer.since(mark)
        return result

    def _search_disk(
        self, query: np.ndarray, k: int, beam_width: int | None
    ) -> SearchResult:
        """Disk-tier scalar path: PQ-guided traversal + one exact re-rank.

        Seed selection runs unchanged (disk-capable methods draw seeds from
        RNG state and pickled entry points only — no raw-vector reads), then
        :func:`~repro.core.beam_search.pq_beam_search` traverses with ADC
        estimates against the resident codes and re-ranks the final beam
        from the memory-mapped raw vectors.
        """
        width = max(beam_width or max(self.default_beam_width, k), k)
        seeds = self._query_seeds(query)
        if self._visited_scratch is None or self._visited_scratch.size != self.graph.n:
            self._visited_scratch = np.zeros(self.graph.n, dtype=bool)
        return pq_beam_search(
            self.graph,
            self.computer,
            query,
            seeds,
            k=k,
            beam_width=width,
            visited_mask=self._visited_scratch,
        )

    def search_batch(
        self,
        queries: np.ndarray,
        k: int = 10,
        beam_width: int | None = None,
        query_indices=None,
        kernel: str | None = None,
        exclude_mask=None,
    ) -> list[SearchResult]:
        """Batched Algorithm 1 via the vectorized multi-query beam kernel.

        Seed selection stays per-query (it is method-specific and consumes
        the per-query RNG); the beam traversal runs through
        :func:`repro.core.kernels.batch_search`.  Per-query ids, distances,
        hops, and distance-call totals are bit-identical to :meth:`search`.

        Methods that override :meth:`search` (and thus answer outside the
        standard beam path), and the ``scalar`` kernel backend, fall back to
        the per-query reference loop.

        ``exclude_mask`` accepts one shared mask or a per-query sequence
        (see :func:`~repro.core.beam_search.normalize_exclude_masks`); the
        scalar fallback threads each query's own mask through
        :meth:`search`, keeping both paths bit-identical.  Not supported in
        disk-tier mode.
        """
        from ..core.beam_search import normalize_exclude_masks
        from ..core.kernels import batch_search, batch_search_pq, resolve_backend

        backend = resolve_backend(kernel)
        if self._disk_tier is not None:
            if exclude_mask is not None:
                raise NotImplementedError(
                    "exclude_mask is not supported on the disk tier"
                )
            if backend == "scalar":
                # per-query reference loop; search() routes to the disk path
                return BaseIndex.search_batch(
                    self, queries, k=k, beam_width=beam_width,
                    query_indices=query_indices,
                )
            queries = np.atleast_2d(np.asarray(queries))
            width = max(beam_width or max(self.default_beam_width, k), k)
            seeds_per_query = []
            for j in range(queries.shape[0]):
                if query_indices is not None:
                    self.seed_query_rng(int(query_indices[j]))
                # disk-capable seed selection costs no distance work
                seeds_per_query.append(self._query_seeds(queries[j]))
            return batch_search_pq(
                self.graph, self.computer, queries, seeds_per_query,
                k=k, beam_width=width, backend=backend,
            )
        if backend == "scalar" or type(self).search is not BaseGraphIndex.search:
            if exclude_mask is None:
                return super().search_batch(
                    queries, k=k, beam_width=beam_width,
                    query_indices=query_indices,
                )
            if type(self).search is not BaseGraphIndex.search:
                raise NotImplementedError(
                    f"{self.name} overrides search() and cannot accept "
                    f"per-query exclude masks"
                )
            # scalar reference loop, threading each query's own mask
            queries_2d = np.atleast_2d(np.asarray(queries))
            masks = normalize_exclude_masks(
                exclude_mask, queries_2d.shape[0], self.graph.n
            )
            results = []
            for j in range(queries_2d.shape[0]):
                if query_indices is not None:
                    self.seed_query_rng(int(query_indices[j]))
                results.append(
                    self.search(
                        queries_2d[j], k=k, beam_width=beam_width,
                        exclude_mask=None if masks is None else masks[j],
                    )
                )
            return results
        computer = self._require_built()
        if self.graph is None:
            raise RuntimeError(f"{self.name}: graph missing; build() first")
        queries = np.atleast_2d(np.asarray(queries))
        width = beam_width or max(self.default_beam_width, k)
        width = max(width, k)
        graph = self._kernel_graph()
        seeds_per_query = []
        seed_calls = []
        for j in range(queries.shape[0]):
            if query_indices is not None:
                self.seed_query_rng(int(query_indices[j]))
            mark = computer.checkpoint()
            seeds_per_query.append(self._query_seeds(queries[j]))
            seed_calls.append(computer.since(mark))
        results = batch_search(
            graph, computer, queries, seeds_per_query,
            k=k, beam_width=width, backend=backend,
            exclude_mask=exclude_mask,
        )
        # charge each query's seed-selection distance work to that query,
        # matching the scalar search()'s checkpoint placement
        for result, calls in zip(results, seed_calls):
            result.distance_calls += calls
        return results

    def _kernel_graph(self):
        """The graph in the layout the batch kernel traverses fastest.

        Adjacency-list graphs are flattened to CSR once and cached (CSR
        frontier gathering is pure array arithmetic); traversal order over
        the flattening is identical, so answers are unaffected.  The cache
        is keyed by graph identity, so rebuilding invalidates it.
        """
        if isinstance(self.graph, CSRGraph):
            return self.graph
        if self._csr_cache is None or self._csr_cache[0] is not self.graph:
            self._csr_cache = (self.graph, CSRGraph.from_graph(self.graph))
        return self._csr_cache[1]

    def memory_bytes(self) -> int:
        """Graph adjacency bytes; subclasses add their seed structures."""
        return self.graph.memory_bytes() if self.graph is not None else 0

    # ------------------------------------------------------------------
    # beyond-RAM tier
    # ------------------------------------------------------------------
    def to_disk_tier(
        self,
        directory,
        pq_subspaces: int = 16,
        pq_centroids: int = 256,
        rng: np.random.Generator | None = None,
    ):
        """Persist this built index as a disk-resident search tier.

        Writes the CSR graph and raw float32 vectors as mmap-able files,
        trains/encodes a product quantizer over the dataset (``pq_subspaces``
        and ``pq_centroids`` are soft preferences, rounded down to a valid
        configuration), and pickles the index skeleton alongside so
        :func:`load_disk_index` restores a searchable index without the
        dataset ever becoming resident.  Returns the directory path.
        """
        from ..core.serialization import save_disk_tier
        from ..summarization.quantization import (
            ProductQuantizer,
            largest_subspace_count,
        )

        if not self.disk_tier_capable:
            raise NotImplementedError(
                f"{self.name} needs raw-vector access at query-seed time and "
                f"cannot answer from a disk tier"
            )
        computer = self._require_built()
        if self.graph is None:
            raise RuntimeError(f"{self.name}: graph missing; build() first")
        if rng is None:
            rng = np.random.default_rng(self.seed ^ 0xD15C)
        pq = ProductQuantizer.fit(
            computer.data,
            n_subspaces=largest_subspace_count(computer.dim, pq_subspaces),
            n_centroids=min(pq_centroids, computer.n),
            rng=rng,
        )
        codes = pq.encode(computer.data)
        return save_disk_tier(
            directory, self._kernel_graph(), computer.data, pq, codes, index=self
        )

    def attach_disk_tier(self, tier) -> None:
        """Switch this index to answer from an opened disk tier.

        Replaces the distance engine with the tier's
        :class:`~repro.core.distances.PQDistanceComputer` (which carries the
        ``n`` surface seed selection consumes, plus the ``approx_calls`` /
        ``page_reads`` accounting) and the graph with the tier's mmap-backed
        CSR view.  All subsequent ``search``/``search_batch`` calls run the
        two-phase PQ + exact-re-rank path.
        """
        if not self.disk_tier_capable:
            raise NotImplementedError(
                f"{self.name} needs raw-vector access at query-seed time and "
                f"cannot answer from a disk tier"
            )
        self._disk_tier = tier
        self._disk_tier_dir = str(tier.directory)
        self.computer = tier.computer
        self.graph = tier.graph
        self._visited_scratch = None
        self._csr_cache = None

    def shared_query_state(self) -> dict[str, np.ndarray]:
        """Dataset arrays plus the graph flattened to CSR.

        In disk-tier mode nothing index-sized goes to shared memory: each
        worker re-opens the tier directory itself (the mmaps share pages
        through the OS page cache; only the resident PQ codes are duplicated
        per worker — a deliberate tradeoff that keeps worker startup free of
        large pickles).
        """
        if self._disk_tier is not None:
            return {}
        state = super().shared_query_state()
        if self.graph is not None:
            if isinstance(self.graph, CSRGraph):
                indptr, indices = self.graph.indptr, self.graph.indices
            else:
                indptr, indices = self.graph.to_csr()
            state["csr_indptr"] = indptr
            state["csr_indices"] = indices
        return state

    def attach_shared_query_state(self, arrays: dict[str, np.ndarray]) -> None:
        """Rebind the dataset and mount the graph as a zero-copy CSR view.

        A disk-tier index re-opens its tier directory instead — the graph
        and raw vectors come back as memory maps, and the worker gets its
        own PQ computer (and thus its own independent counters).
        """
        if self._disk_tier_dir is not None:
            from ..core.serialization import open_disk_tier

            self.attach_disk_tier(open_disk_tier(self._disk_tier_dir))
            return
        super().attach_shared_query_state(arrays)
        if "csr_indptr" in arrays:
            self.graph = CSRGraph(
                arrays["csr_indptr"], arrays["csr_indices"], validate=False
            )
        self._visited_scratch = None
        self._csr_cache = None

    def __getstate__(self) -> dict:
        """Pickle without graph/scratch; workers re-attach the CSR view.

        ``_disk_tier_dir`` survives pickling (it is how a worker finds the
        tier again); the opened tier itself — mmap handles and resident
        codes — never does.
        """
        state = super().__getstate__()
        state["graph"] = None
        state["_visited_scratch"] = None
        state["_csr_cache"] = None
        state["_disk_tier"] = None
        return state

    def degree_stats(self) -> dict[str, float]:
        """Mean/max out-degree — handy for graph-shape assertions in tests."""
        if self.graph is None:
            raise RuntimeError("build() first")
        degrees = self.graph.degrees()
        return {
            "mean": float(degrees.mean()) if degrees.size else 0.0,
            "max": float(degrees.max()) if degrees.size else 0.0,
            "min": float(degrees.min()) if degrees.size else 0.0,
        }


def load_disk_index(directory, mmap: bool = True) -> BaseGraphIndex:
    """Restore a searchable index from a disk-tier directory.

    Opens the tier (graph + raw vectors memory-mapped by default), unpickles
    the index skeleton saved by :meth:`BaseGraphIndex.to_disk_tier`, and
    attaches the tier — the dataset never becomes resident.  The returned
    index answers through the two-phase PQ + exact-re-rank path.
    """
    from ..core.serialization import open_disk_tier

    tier = open_disk_tier(directory, mmap=mmap)
    index = tier.load_index()
    if not isinstance(index, BaseGraphIndex):
        raise TypeError(
            f"disk tier {directory} holds a {type(index).__name__}, "
            f"not a graph index"
        )
    index.attach_disk_tier(tier)
    return index
