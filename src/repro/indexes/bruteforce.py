"""Exact brute-force baseline — the "serial scan" of Figure 1.

Answers every query exactly by scanning all ``n`` vectors.  Used for ground
truth throughout the evaluation harness and as the exact comparator in the
motivation experiment.
"""

from __future__ import annotations

import numpy as np

from ..core.beam_search import SearchResult
from .base import BaseIndex

__all__ = ["BruteForceIndex"]


class BruteForceIndex(BaseIndex):
    """Exact k-NN by vectorized sequential scan."""

    name = "BruteForce"

    def _build(self, rng: np.random.Generator) -> None:
        """Nothing to construct; the computer already holds the data."""

    def search(
        self, query: np.ndarray, k: int = 10, beam_width: int | None = None
    ) -> SearchResult:
        """Exact scan; ``beam_width`` is ignored."""
        computer = self._require_built()
        mark = computer.checkpoint()
        ids, dists = computer.exact_knn(query, k)
        return SearchResult(
            ids=ids,
            dists=dists,
            distance_calls=computer.since(mark),
            hops=0,
            visited=np.arange(computer.n, dtype=np.int64),
        )

    def memory_bytes(self) -> int:
        """No index structure beyond the raw data."""
        return 0
