"""Diversified Proximity Graph (DPG) — Section 3.6.

DPG extends KGraph: it builds an NNDescent k-NN graph with ``2k`` candidates
per node, diversifies each neighborhood by angular selection (MOND, which
the method introduced), and finally makes the graph undirected to restore
connectivity.  Queries use KS seeds, as in KGraph.

The paper notes the *published* DPG design uses MOND while the public code
uses RND; both are exposed via ``diversify``.
"""

from __future__ import annotations

import numpy as np

from ..core.diversification import get_diversifier
from ..core.graph import Graph
from ..core.nndescent import nn_descent
from .base import BaseGraphIndex

__all__ = ["DPGIndex"]


class DPGIndex(BaseGraphIndex):
    """KGraph base + MOND diversification + undirected closure."""

    name = "DPG"
    # seed selection is RNG/medoid-only: answers fine from a disk tier
    disk_tier_capable = True

    def __init__(
        self,
        k_neighbors: int = 16,
        diversify: str = "mond",
        theta_degrees: float = 60.0,
        max_iterations: int = 8,
        n_query_seeds: int = 16,
        seed: int = 0,
        default_beam_width: int = 64,
        kernel: str | None = None,
    ):
        super().__init__(seed, default_beam_width)
        self.k_neighbors = k_neighbors
        self.diversify = diversify
        self.theta_degrees = theta_degrees
        self.max_iterations = max_iterations
        self.n_query_seeds = n_query_seeds
        #: construction-kernel backend (``None`` = ``$REPRO_KERNEL``);
        #: bit-identical graph at every backend
        self.kernel = kernel

    def _build(self, rng: np.random.Generator) -> None:
        from ..core.kernels import resolve_backend

        computer = self.computer
        # candidate lists of size 2k, as in the original design
        k_base = min(2 * self.k_neighbors, computer.n - 1)
        result = nn_descent(
            computer, k=k_base, rng=rng, max_iterations=self.max_iterations,
            backend=self.kernel,
        )
        params = (
            {"theta_degrees": self.theta_degrees}
            if self.diversify == "mond"
            else None
        )
        graph = Graph(computer.n)
        if resolve_backend(self.kernel) != "scalar":
            from ..core.build_kernels import diversify_many

            kept_per_node = diversify_many(
                computer,
                [(result.ids[node], result.dists[node]) for node in range(computer.n)],
                self.k_neighbors, self.diversify,
                params=params, backend=self.kernel,
            )
            for node, kept in enumerate(kept_per_node):
                graph.set_neighbors(node, kept)
        else:
            diversifier = get_diversifier(self.diversify, **(params or {}))
            for node in range(computer.n):
                kept = diversifier(
                    computer, result.ids[node], result.dists[node], self.k_neighbors
                )
                graph.set_neighbors(node, kept)
        graph.make_undirected()
        self.graph = graph

    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        n = self.computer.n
        size = min(self.n_query_seeds, n)
        return self._query_rng.choice(n, size=size, replace=False)
