"""Vamana (DiskANN's graph) — Section 3.6.

Vamana refines a random ``R``-regular base graph (degree >= log n keeps it
connected) in two passes.  In each pass, every node runs a beam search from
the medoid over the current graph; the visited list is pruned with RRND —
``alpha = 1`` (plain RND) in the first pass, the user's ``alpha`` (>= 1,
typically 1.2-1.3) in the second, which relaxes pruning to add connectivity.
Bi-directional edges are inserted, and any overflowing neighbor list is
re-pruned with RND.  Queries start at the medoid plus random seeds (MD+KS).
"""

from __future__ import annotations

import numpy as np

from ..core.beam_search import beam_search
from ..core.diversification import rnd, rrnd
from ..core.graph import Graph
from ..core.seeds import find_medoid
from .base import BaseGraphIndex

__all__ = ["VamanaIndex"]


class VamanaIndex(BaseGraphIndex):
    """Two-pass RRND refinement of a random regular graph."""

    name = "Vamana"
    # seed selection is RNG/medoid-only: answers fine from a disk tier
    disk_tier_capable = True

    def __init__(
        self,
        max_degree: int = 24,
        build_beam_width: int = 64,
        prune_pool_size: int = 64,
        alpha: float = 1.3,
        n_query_seeds: int = 16,
        seed: int = 0,
        default_beam_width: int = 64,
    ):
        super().__init__(seed, default_beam_width)
        if alpha < 1.0:
            raise ValueError("alpha must be >= 1")
        self.max_degree = max_degree
        self.build_beam_width = build_beam_width
        self.prune_pool_size = prune_pool_size
        self.alpha = alpha
        self.n_query_seeds = n_query_seeds
        self.medoid: int | None = None

    def _build(self, rng: np.random.Generator) -> None:
        computer = self.computer
        n = computer.n
        graph = self._random_regular_graph(n, rng)
        self.medoid = find_medoid(computer)
        for pass_alpha in (1.0, self.alpha):
            self._refine_pass(graph, pass_alpha, rng)
        self.graph = graph

    def _random_regular_graph(self, n: int, rng: np.random.Generator) -> Graph:
        """Random base graph with out-degree ``>= log2(n)`` for connectivity."""
        degree = min(max(int(np.ceil(np.log2(max(n, 2)))), 4), self.max_degree, n - 1)
        graph = Graph(n)
        for node in range(n):
            choices = rng.choice(n - 1, size=degree, replace=False)
            choices[choices >= node] += 1
            graph.set_neighbors(node, choices)
        return graph

    def _refine_pass(
        self, graph: Graph, alpha: float, rng: np.random.Generator
    ) -> None:
        computer = self.computer
        visited_mask = np.zeros(graph.n, dtype=bool)
        order = rng.permutation(graph.n)
        for node in order:
            node = int(node)
            result = beam_search(
                graph,
                computer,
                computer.data[node],
                [self.medoid],
                k=self.build_beam_width,
                beam_width=self.build_beam_width,
                visited_mask=visited_mask,
            )
            extra = graph.neighbors(node)
            extra_dists = computer.one_to_many(node, extra)
            cand_ids = np.concatenate([result.visited, extra])
            cand_dists = np.concatenate([result.visited_dists, extra_dists])
            keep = cand_ids != node
            cand_ids, cand_dists = cand_ids[keep], cand_dists[keep]
            if cand_ids.size > self.prune_pool_size:
                top = np.argpartition(cand_dists, self.prune_pool_size)[
                    : self.prune_pool_size
                ]
                cand_ids, cand_dists = cand_ids[top], cand_dists[top]
            kept = rrnd(computer, cand_ids, cand_dists, self.max_degree, alpha=alpha)
            graph.set_neighbors(node, kept)
            for nbr in kept:
                nbr = int(nbr)
                merged = np.concatenate([graph.neighbors(nbr), [node]])
                if merged.size > self.max_degree:
                    merged = np.unique(merged)
                    dists = computer.one_to_many(nbr, merged)
                    merged = rnd(computer, merged, dists, self.max_degree)
                graph.set_neighbors(nbr, merged)

    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        n = self.computer.n
        size = min(self.n_query_seeds, n)
        picks = self._query_rng.choice(n, size=size, replace=False)
        return np.unique(np.concatenate([picks, [self.medoid]]))
