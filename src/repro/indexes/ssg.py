"""Satellite System Graph (SSG) — Section 3.6.

SSG follows NSG's pipeline but differs in two ways the paper calls out:
candidates come from a *breadth-first local expansion* on the EFANNA base
graph (two hops) rather than a per-node beam search, and neighborhoods are
pruned with MOND (angle threshold ``theta``) rather than RND.  Connectivity
is repaired with DFS trees from *multiple* random roots instead of NSG's
single medoid tree.
"""

from __future__ import annotations

import numpy as np

from ..core.beam_search import beam_search
from ..core.diversification import get_diversifier
from ..core.graph import Graph
from .base import BaseGraphIndex
from .efanna import EFANNAIndex

__all__ = ["SSGIndex"]


class SSGIndex(BaseGraphIndex):
    """EFANNA base + 2-hop BFS candidates + MOND + multi-root DFS repair."""

    name = "SSG"
    # seed selection is RNG/medoid-only: answers fine from a disk tier
    disk_tier_capable = True

    def __init__(
        self,
        max_degree: int = 24,
        theta_degrees: float = 60.0,
        efanna_k: int = 20,
        efanna_trees: int = 4,
        n_repair_roots: int = 3,
        n_query_seeds: int = 16,
        seed: int = 0,
        default_beam_width: int = 64,
        kernel: str | None = None,
    ):
        super().__init__(seed, default_beam_width)
        self.max_degree = max_degree
        self.theta_degrees = theta_degrees
        self.efanna_k = efanna_k
        self.efanna_trees = efanna_trees
        self.n_repair_roots = n_repair_roots
        self.n_query_seeds = n_query_seeds
        #: construction-kernel backend for the EFANNA base build
        self.kernel = kernel
        self.peak_build_bytes = 0

    def _build(self, rng: np.random.Generator) -> None:
        computer = self.computer
        base = EFANNAIndex(
            k_neighbors=self.efanna_k,
            n_trees=self.efanna_trees,
            seed=self.seed,
            kernel=self.kernel,
        )
        base.computer = computer
        base._build(rng)
        base_graph = base.graph
        self.peak_build_bytes = base.memory_bytes()
        diversifier = get_diversifier("mond", theta_degrees=self.theta_degrees)

        graph = Graph(computer.n)
        for node in range(computer.n):
            # local expansion: direct neighbors plus neighbors-of-neighbors
            one_hop = base_graph.neighbors(node)
            if one_hop.size:
                two_hop = np.concatenate(
                    [base_graph.neighbors(int(nbr)) for nbr in one_hop]
                )
                pool = np.unique(np.concatenate([one_hop, two_hop]))
            else:
                pool = one_hop
            pool = pool[pool != node]
            if pool.size == 0:
                continue
            dists = computer.one_to_many(node, pool)
            graph.set_neighbors(
                node, diversifier(computer, pool, dists, self.max_degree)
            )
        self._add_reverse_edges(graph, diversifier)
        self._repair_connectivity(graph, rng)
        self.graph = graph

    def _add_reverse_edges(self, graph: Graph, diversifier) -> None:
        computer = self.computer
        for node in range(graph.n):
            for nbr in graph.neighbors(node).tolist():
                merged = np.unique(np.concatenate([graph.neighbors(nbr), [node]]))
                if merged.size > self.max_degree:
                    dists = computer.one_to_many(nbr, merged)
                    merged = diversifier(computer, merged, dists, self.max_degree)
                graph.set_neighbors(nbr, merged)

    def _repair_connectivity(self, graph: Graph, rng: np.random.Generator) -> None:
        """DFS trees from several random roots; link stragglers to the graph."""
        computer = self.computer
        n = graph.n
        roots = rng.choice(n, size=min(self.n_repair_roots, n), replace=False)
        reachable = np.zeros(n, dtype=bool)
        for root in roots:
            reachable |= graph.reachable_from(int(root))
        visited_mask = np.zeros(n, dtype=bool)
        for node in np.flatnonzero(~reachable):
            node = int(node)
            result = beam_search(
                graph,
                computer,
                computer.data[node],
                [int(roots[0])],
                k=1,
                beam_width=max(8, self.max_degree),
                visited_mask=visited_mask,
            )
            anchor = int(result.ids[0]) if result.ids.size else int(roots[0])
            graph.add_edge(anchor, node)

    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        n = self.computer.n
        size = min(self.n_query_seeds, n)
        return self._query_rng.choice(n, size=size, replace=False)
