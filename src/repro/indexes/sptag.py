"""SPTAG — divide-and-conquer graph with tree seeds (Section 3.6).

SPTAG clusters the dataset with several randomized TP-tree partitions,
builds an *exact* k-NN graph inside every leaf, merges the per-partition
lists (keeping each node's k best across partitions), and refines the merged
neighborhoods with RND.  Seed selection uses either randomized K-D trees
(SPTAG-KDT) or Balanced K-means Trees (SPTAG-BKT).

The repeated partitioning plus per-leaf exact graphs is why SPTAG's indexing
time is the worst in Figure 7 while its search — especially BKT's
well-targeted seeds — is competitive on small datasets (Figure 12).
"""

from __future__ import annotations

import numpy as np

from ..core.diversification import rnd
from ..core.graph import Graph
from ..trees.bkt import BKForest
from ..trees.kdtree import KDForest
from ..trees.tptree import TPTree
from .base import BaseGraphIndex

__all__ = ["SPTAGIndex"]


class SPTAGIndex(BaseGraphIndex):
    """TP-tree partitions + exact per-leaf k-NN graphs + RND refinement."""

    name = "SPTAG"

    def __init__(
        self,
        tree_type: str = "bkt",
        k_neighbors: int = 16,
        max_degree: int = 24,
        n_partitions: int = 3,
        leaf_size: int = 200,
        n_seed_trees: int = 2,
        seed_leaf_size: int = 32,
        n_query_seeds: int = 24,
        seed: int = 0,
        default_beam_width: int = 64,
    ):
        super().__init__(seed, default_beam_width)
        tree_type = tree_type.lower()
        if tree_type not in ("kdt", "bkt"):
            raise ValueError("tree_type must be 'kdt' or 'bkt'")
        self.tree_type = tree_type
        self.name = f"SPTAG-{tree_type.upper()}"
        self.k_neighbors = k_neighbors
        self.max_degree = max_degree
        self.n_partitions = n_partitions
        self.leaf_size = leaf_size
        self.n_seed_trees = n_seed_trees
        self.seed_leaf_size = seed_leaf_size
        self.n_query_seeds = n_query_seeds
        self._seed_forest: KDForest | BKForest | None = None

    def _build(self, rng: np.random.Generator) -> None:
        computer = self.computer
        n = computer.n
        k = min(self.k_neighbors, n - 1)
        best_ids = [np.empty(0, dtype=np.int64) for _ in range(n)]
        best_dists = [np.empty(0, dtype=np.float64) for _ in range(n)]
        for _ in range(self.n_partitions):
            tree = TPTree.build(computer.data, self.leaf_size, rng)
            for leaf in tree.leaves():
                if leaf.size < 2:
                    continue
                dists = computer.many_to_many(leaf, leaf)
                np.fill_diagonal(dists, np.inf)
                kk = min(k, leaf.size - 1)
                nearest = np.argpartition(dists, kk - 1, axis=1)[:, :kk]
                for row, node in enumerate(leaf):
                    node = int(node)
                    ids = leaf[nearest[row]]
                    merged_ids = np.concatenate([best_ids[node], ids])
                    merged_d = np.concatenate(
                        [best_dists[node], dists[row][nearest[row]]]
                    )
                    uniq, first = np.unique(merged_ids, return_index=True)
                    merged_ids, merged_d = uniq, merged_d[first]
                    order = np.argsort(merged_d, kind="stable")[:k]
                    best_ids[node] = merged_ids[order]
                    best_dists[node] = merged_d[order]
        graph = Graph(n)
        for node in range(n):
            kept = rnd(
                computer, best_ids[node], best_dists[node], self.max_degree
            )
            graph.set_neighbors(node, kept)
        graph.make_undirected()
        self.graph = graph
        if self.tree_type == "kdt":
            self._seed_forest = KDForest.build(
                computer.data, self.n_seed_trees, self.seed_leaf_size, rng
            )
        else:
            self._seed_forest = BKForest.build(
                computer.data,
                self.n_seed_trees,
                self.seed_leaf_size,
                branching=4,
                rng=rng,
            )

    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        cands = self._seed_forest.search_candidates(query, self.n_query_seeds)
        if cands.size == 0:
            return np.asarray([0], dtype=np.int64)
        return cands[: self.n_query_seeds * 2]

    def memory_bytes(self) -> int:
        """Graph plus the seed forest."""
        total = super().memory_bytes()
        if self._seed_forest is not None:
            total += self._seed_forest.memory_bytes()
        return total
