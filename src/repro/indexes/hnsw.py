"""Hierarchical Navigable Small World (HNSW) — Section 3.6.

HNSW = NSW base layer + two additions the paper isolates as paradigms:
RND pruning of every neighborhood (ND) and a stack of sampled NSW layers for
seed selection (SN, Eq. 1).  We compose it from the shared apparatus: the
incremental-insertion builder with RND diversification, driven by
:class:`~repro.core.incremental.StackedNSWBuildSeeds`, whose layer stack is
retained and descended at query time exactly as HNSW does.
"""

from __future__ import annotations

import numpy as np

from ..core.incremental import StackedNSWBuildSeeds, build_ii_graph
from .base import BaseGraphIndex

__all__ = ["HNSWIndex"]


class HNSWIndex(BaseGraphIndex):
    """Incremental insertion + RND pruning + stacked-NSW seed selection."""

    name = "HNSW"

    def __init__(
        self,
        max_degree: int = 24,
        ef_construction: int = 64,
        layer_max_degree: int = 16,
        seed: int = 0,
        default_beam_width: int = 64,
        n_workers: int | None = None,
        kernel: str | None = None,
    ):
        super().__init__(seed, default_beam_width)
        if max_degree < 2:
            raise ValueError("max_degree must be >= 2")
        self.max_degree = max_degree
        self.ef_construction = ef_construction
        self.layer_max_degree = layer_max_degree
        self.n_workers = n_workers
        #: construction-kernel backend (``None`` = ``$REPRO_KERNEL``);
        #: bit-identical graph at every backend
        self.kernel = kernel
        self._stack: StackedNSWBuildSeeds | None = None

    def _build(self, rng: np.random.Generator) -> None:
        stack = StackedNSWBuildSeeds(
            max_degree=self.layer_max_degree,
            ef_construction=max(8, self.ef_construction // 2),
        )
        result = build_ii_graph(
            self.computer,
            max_degree=self.max_degree,
            beam_width=self.ef_construction,
            diversify="rnd",
            rng=rng,
            build_seeds=stack,
            track_pruning=False,
            n_workers=self.n_workers,
            kernel=self.kernel,
        )
        self.graph = result.graph
        self._stack = stack

    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        """Greedy descent through the layer stack; the landing node and its
        base-layer neighbors seed the beam search (SN strategy)."""
        computer = self.computer
        current = self._stack.entry
        if current is None:
            return np.asarray([0], dtype=np.int64)
        current_dist = computer.one_to_query(current, query)
        for layer in reversed(self._stack.layers):
            current, current_dist = StackedNSWBuildSeeds._greedy_in_layer(
                layer, current, current_dist, query, computer
            )
        seeds = np.concatenate([[current], self.graph.neighbors(current)])
        return np.unique(seeds).astype(np.int64)

    def memory_bytes(self) -> int:
        """Padded contiguous base layout plus the hierarchical layer stack.

        The original HNSW code stores every node's edges in one contiguous
        block sized for the *maximum* out-degree — faster to traverse, but
        the footprint grows with ``n * max_degree`` regardless of actual
        degrees (the paper's Figure 8 explanation).  We report that layout.
        """
        if self.graph is None:
            return 0
        padded_base = self.graph.n * self.max_degree * 8
        total = padded_base
        if self._stack is not None:
            total += self._stack.memory_bytes()
        return total
