"""HCNNG — hierarchical-clustering MST graph (Section 3.6).

HCNNG repeats a *random hierarchical clustering* of the dataset several
times; inside every resulting cluster it computes a degree-bounded minimum
spanning tree, and the union of all MST edges (made bi-directional) is the
final graph.  No diversification is applied — HCNNG is the paper's DC+NoND
method.  Query seeds come from randomized K-D trees (KD strategy).

The many overlapping clusterings explain its Figure 8 behaviour: build
memory far exceeds the final (quite sparse) index.
"""

from __future__ import annotations

import numpy as np

from ..clustering.hierarchical import random_bisection_clusters
from ..clustering.mst import degree_bounded_mst
from ..core.graph import Graph
from ..trees.kdtree import KDForest
from .base import BaseGraphIndex

__all__ = ["HCNNGIndex"]


class HCNNGIndex(BaseGraphIndex):
    """Union of per-cluster degree-bounded MSTs over repeated clusterings."""

    name = "HCNNG"

    def __init__(
        self,
        n_clusterings: int = 8,
        min_cluster_size: int = 64,
        mst_max_degree: int = 3,
        n_seed_trees: int = 2,
        seed_leaf_size: int = 32,
        n_query_seeds: int = 24,
        seed: int = 0,
        default_beam_width: int = 64,
    ):
        super().__init__(seed, default_beam_width)
        if n_clusterings < 1:
            raise ValueError("n_clusterings must be >= 1")
        self.n_clusterings = n_clusterings
        self.min_cluster_size = min_cluster_size
        self.mst_max_degree = mst_max_degree
        self.n_seed_trees = n_seed_trees
        self.seed_leaf_size = seed_leaf_size
        self.n_query_seeds = n_query_seeds
        self._forest: KDForest | None = None
        self.peak_build_bytes = 0

    def _build(self, rng: np.random.Generator) -> None:
        computer = self.computer
        n = computer.n
        adjacency: list[set[int]] = [set() for _ in range(n)]
        for _ in range(self.n_clusterings):
            clusters = random_bisection_clusters(
                computer, self.min_cluster_size, rng
            )
            for cluster in clusters:
                for a, b in degree_bounded_mst(
                    computer, cluster, self.mst_max_degree
                ):
                    adjacency[a].add(b)
                    adjacency[b].add(a)
        # edge sets across all clusterings are the build's peak structure
        self.peak_build_bytes = sum(8 * len(s) + 64 for s in adjacency)
        graph = Graph(n)
        for node in range(n):
            graph.set_neighbors(node, np.fromiter(adjacency[node], dtype=np.int64))
        self.graph = graph
        self._forest = KDForest.build(
            computer.data, self.n_seed_trees, self.seed_leaf_size, rng
        )

    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        cands = self._forest.search_candidates(query, self.n_query_seeds)
        if cands.size == 0:
            return np.asarray([0], dtype=np.int64)
        return cands[: self.n_query_seeds * 2]

    def memory_bytes(self) -> int:
        """Graph plus the seed forest."""
        total = super().memory_bytes()
        if self._forest is not None:
            total += self._forest.memory_bytes()
        return total
