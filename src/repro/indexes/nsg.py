"""Navigating Spreading-out Graph (NSG) — Section 3.6.

NSG starts from an EFANNA approximate k-NN graph, then rebuilds every
neighborhood: a beam search from the dataset medoid (the "navigating node")
collects each node's visited list, which is pruned with RND.  Reverse edges
are added under the same pruning, and a DFS tree from the medoid repairs any
disconnected vertices.  Queries start at the medoid enhanced with random
seeds (MD + KS).

Because NSG *contains* an EFANNA build, its indexing time and footprint
inherit EFANNA's — the scalability ceiling the paper highlights.
"""

from __future__ import annotations

import numpy as np

from ..core.beam_search import beam_search
from ..core.diversification import rnd
from ..core.graph import Graph
from ..core.seeds import find_medoid
from .base import BaseGraphIndex
from .efanna import EFANNAIndex

__all__ = ["NSGIndex"]


class NSGIndex(BaseGraphIndex):
    """EFANNA base + per-node beam-search candidates + RND + DFS repair."""

    name = "NSG"
    # seed selection is RNG/medoid-only: answers fine from a disk tier
    disk_tier_capable = True

    def __init__(
        self,
        max_degree: int = 24,
        build_beam_width: int = 64,
        prune_pool_size: int = 64,
        efanna_k: int = 20,
        efanna_trees: int = 4,
        n_query_seeds: int = 16,
        seed: int = 0,
        default_beam_width: int = 64,
        kernel: str | None = None,
    ):
        super().__init__(seed, default_beam_width)
        self.max_degree = max_degree
        self.build_beam_width = build_beam_width
        self.prune_pool_size = prune_pool_size
        self.efanna_k = efanna_k
        self.efanna_trees = efanna_trees
        self.n_query_seeds = n_query_seeds
        #: construction-kernel backend for the EFANNA base build
        self.kernel = kernel
        self.medoid: int | None = None
        self._base_index: EFANNAIndex | None = None
        #: peak auxiliary bytes held during construction (Figure 8's gap
        #: between build footprint and final index size)
        self.peak_build_bytes = 0

    def _build(self, rng: np.random.Generator) -> None:
        computer = self.computer
        base = EFANNAIndex(
            k_neighbors=self.efanna_k,
            n_trees=self.efanna_trees,
            seed=self.seed,
            kernel=self.kernel,
        )
        # share the computer so base-graph work is charged to this build
        base.computer = computer
        base._build(rng)
        self._base_index = base
        base_graph = base.graph
        self.peak_build_bytes = base.memory_bytes()
        self.medoid = find_medoid(computer)

        graph = Graph(computer.n)
        visited_mask = np.zeros(computer.n, dtype=bool)
        for node in range(computer.n):
            result = beam_search(
                base_graph,
                computer,
                computer.data[node],
                [self.medoid],
                k=self.build_beam_width,
                beam_width=self.build_beam_width,
                visited_mask=visited_mask,
            )
            extra = base_graph.neighbors(node)
            extra_dists = computer.one_to_many(node, extra)
            cand_ids = np.concatenate([result.visited, extra])
            cand_dists = np.concatenate([result.visited_dists, extra_dists])
            keep = cand_ids != node
            cand_ids, cand_dists = cand_ids[keep], cand_dists[keep]
            # cap the pruning pool to the closest candidates (rnd sorts and
            # dedupes internally; the cap bounds per-node pruning cost)
            if cand_ids.size > self.prune_pool_size:
                top = np.argpartition(cand_dists, self.prune_pool_size)[
                    : self.prune_pool_size
                ]
                cand_ids, cand_dists = cand_ids[top], cand_dists[top]
            graph.set_neighbors(
                node, rnd(computer, cand_ids, cand_dists, self.max_degree)
            )
        self._add_reverse_edges(graph)
        self._repair_connectivity(graph)
        self.graph = graph

    def _add_reverse_edges(self, graph: Graph) -> None:
        """Insert reverse edges, re-pruning overflowing lists with RND."""
        computer = self.computer
        for node in range(graph.n):
            for nbr in graph.neighbors(node).tolist():
                merged = np.concatenate([graph.neighbors(nbr), [node]])
                if merged.size > self.max_degree:
                    dists = computer.one_to_many(nbr, np.unique(merged))
                    merged = rnd(computer, np.unique(merged), dists, self.max_degree)
                graph.set_neighbors(nbr, merged)

    def _repair_connectivity(self, graph: Graph) -> None:
        """NSG's DFS-tree repair: link unreachable nodes from their nearest
        reachable neighbor (found by a beam search on the partial graph)."""
        computer = self.computer
        reachable = graph.reachable_from(self.medoid)
        unreachable = np.flatnonzero(~reachable)
        visited_mask = np.zeros(graph.n, dtype=bool)
        for node in unreachable:
            node = int(node)
            result = beam_search(
                graph,
                computer,
                computer.data[node],
                [self.medoid],
                k=1,
                beam_width=max(8, self.max_degree),
                visited_mask=visited_mask,
            )
            anchor = int(result.ids[0]) if result.ids.size else self.medoid
            graph.add_edge(anchor, node)

    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        n = self.computer.n
        size = min(self.n_query_seeds, n)
        picks = self._query_rng.choice(n, size=size, replace=False)
        return np.unique(np.concatenate([picks, [self.medoid]]))

    def memory_bytes(self) -> int:
        """Final NSG adjacency only; the EFANNA base is build scaffolding."""
        return super().memory_bytes()
