"""Navigable Small World (NSW) graph — Section 3.6.

The original incremental-insertion method (Ponomarenko et al. / Malkov et
al.): vertices are inserted in random order and connected with bi-directional
edges to the ``m`` nearest nodes found by a beam search on the partial graph.
Early-inserted edges survive as long-range links, giving the navigable
small-world property.  NSW applies *no* diversification — it is the II+NoND
point in the paper's taxonomy.
"""

from __future__ import annotations

import numpy as np

from ..core.incremental import build_ii_graph
from .base import BaseGraphIndex

__all__ = ["NSWIndex"]


class NSWIndex(BaseGraphIndex):
    """Incrementally built small-world graph without neighborhood pruning."""

    name = "NSW"
    # seed selection is RNG/medoid-only: answers fine from a disk tier
    disk_tier_capable = True

    def __init__(
        self,
        m_connections: int = 16,
        ef_construction: int = 64,
        n_query_seeds: int = 4,
        seed: int = 0,
        default_beam_width: int = 64,
        n_workers: int | None = None,
        kernel: str | None = None,
    ):
        super().__init__(seed, default_beam_width)
        if m_connections < 1:
            raise ValueError("m_connections must be >= 1")
        self.m_connections = m_connections
        self.ef_construction = ef_construction
        self.n_query_seeds = n_query_seeds
        self.n_workers = n_workers
        #: construction-kernel backend (``None`` = ``$REPRO_KERNEL``)
        self.kernel = kernel

    def _build(self, rng: np.random.Generator) -> None:
        # NSW never prunes: reverse edges accumulate and early edges
        # persist as the long-range links of the small-world topology
        result = build_ii_graph(
            self.computer,
            max_degree=self.m_connections,
            beam_width=self.ef_construction,
            diversify="nond",
            rng=rng,
            track_pruning=False,
            prune_overflow=False,
            n_workers=self.n_workers,
            kernel=self.kernel,
        )
        self.graph = result.graph

    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        n = self.computer.n
        size = min(self.n_query_seeds, n)
        return self._query_rng.choice(n, size=size, replace=False)
