"""KGraph — approximate k-NN graph via NNDescent (Section 3.6).

KGraph refines a random initial graph with neighborhood propagation and
answers queries with beam search seeded by random samples (the KS strategy).
It is the paper's archetypal NP-based method: cheap conceptually, but its
dense undiversified neighborhoods make searches long and its all-pairs-ish
refinement makes indexing memory-hungry — both visible in Figures 7-9.
"""

from __future__ import annotations

import numpy as np

from ..core.nndescent import knn_graph_to_graph, nn_descent
from .base import BaseGraphIndex

__all__ = ["KGraphIndex"]


class KGraphIndex(BaseGraphIndex):
    """NNDescent-refined random k-NN graph with KS query seeds."""

    name = "KGraph"
    # seed selection is RNG/medoid-only: answers fine from a disk tier
    disk_tier_capable = True

    def __init__(
        self,
        k_neighbors: int = 20,
        max_iterations: int = 8,
        sample_rate: float = 1.0,
        n_query_seeds: int = 16,
        seed: int = 0,
        default_beam_width: int = 64,
        kernel: str | None = None,
    ):
        super().__init__(seed, default_beam_width)
        if k_neighbors < 1:
            raise ValueError("k_neighbors must be >= 1")
        self.k_neighbors = k_neighbors
        self.max_iterations = max_iterations
        self.sample_rate = sample_rate
        self.n_query_seeds = n_query_seeds
        #: construction-kernel backend (``None`` = ``$REPRO_KERNEL``);
        #: bit-identical graph at every backend
        self.kernel = kernel

    def _build(self, rng: np.random.Generator) -> None:
        result = nn_descent(
            self.computer,
            k=min(self.k_neighbors, self.computer.n - 1),
            rng=rng,
            max_iterations=self.max_iterations,
            sample_rate=self.sample_rate,
            backend=self.kernel,
        )
        self.graph = knn_graph_to_graph(result.ids)

    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        n = self.computer.n
        size = min(self.n_query_seeds, n)
        return self._query_rng.choice(n, size=size, replace=False)
