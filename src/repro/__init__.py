"""repro — graph-based vector search, reproduced.

A from-scratch Python implementation of the systems evaluated in
*"Graph-Based Vector Search: An Experimental Evaluation of the
State-of-the-Art"* (Azizi, Echihabi, Palpanas; SIGMOD 2025): the beam-search
core, the five design paradigms (seed selection, neighborhood propagation,
incremental insertion, neighborhood diversification, divide-and-conquer),
the twelve state-of-the-art methods, their substrates, and the evaluation
harness regenerating every table and figure of the paper.

Quickstart
----------
>>> import numpy as np
>>> from repro import create_index, generate
>>> data = generate("deep", 2000)
>>> index = create_index("HNSW").build(data)
>>> result = index.search(data[0], k=10)
>>> int(result.ids[0])
0
"""

from __future__ import annotations

from .core.beam_search import SearchResult, beam_search
from .core.distances import DistanceComputer
from .core.diversification import DIVERSIFIERS, get_diversifier
from .core.graph import CSRGraph, Graph
from .core.incremental import build_ii_graph
from .core.seeds import SEED_STRATEGIES, get_seed_strategy
from .datasets.complexity import dataset_complexity
from .datasets.synthetic import DATASET_GENERATORS, generate, tier_size
from .eval.metrics import ground_truth, recall
from .eval.parallel import run_batch
from .eval.recommend import recommend
from .eval.runner import run_workload, sweep_beam_widths
from .indexes import METHOD_REGISTRY, create_index

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "DistanceComputer",
    "Graph",
    "SearchResult",
    "beam_search",
    "build_ii_graph",
    "get_diversifier",
    "DIVERSIFIERS",
    "get_seed_strategy",
    "SEED_STRATEGIES",
    "generate",
    "tier_size",
    "DATASET_GENERATORS",
    "dataset_complexity",
    "recall",
    "ground_truth",
    "run_batch",
    "run_workload",
    "sweep_beam_widths",
    "recommend",
    "create_index",
    "METHOD_REGISTRY",
    "__version__",
]
