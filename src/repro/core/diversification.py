"""Neighborhood diversification (ND) strategies — Section 3.4.

Given a node ``x_q`` and a candidate neighbor list sorted by distance to
``x_q``, each strategy selects a subset of at most ``max_degree`` neighbors:

* :func:`nond` — no diversification: keep the closest ``max_degree``.
* :func:`rnd` — Relative Neighborhood Diversification (Definition 3),
  used by HNSW, NSG, SPTAG, ELPIS.
* :func:`rrnd` — Relaxed RND with factor ``alpha`` (Definition 4), used by
  Vamana; ``alpha = 1`` reduces to RND.
* :func:`mond` — Maximum-Oriented ND with angle threshold ``theta``
  (Definition 5), used by DPG and SSG.

All candidate-to-selected distances are evaluated through the
:class:`~repro.core.distances.DistanceComputer` so that pruning work is
charged to the index build, exactly as the paper accounts it.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from .distances import DistanceComputer

__all__ = [
    "nond",
    "rnd",
    "rrnd",
    "mond",
    "get_diversifier",
    "DIVERSIFIERS",
    "pruning_ratio",
    "PruneCounter",
]

#: Signature shared by every strategy.
Diversifier = Callable[
    [DistanceComputer, np.ndarray, np.ndarray, int], np.ndarray
]


class PruneCounter:
    """Accumulates how many examined candidates each strategy rejected.

    Table 1 of the paper reports the *pruning ratio*: the fraction of
    candidates removed by the diversification predicate itself (not by the
    out-degree cap), averaged over all pruning invocations during a build.
    """

    __slots__ = ("examined", "rejected")

    def __init__(self):
        self.examined = 0
        self.rejected = 0

    def ratio(self) -> float:
        """Overall fraction of examined candidates that were rejected."""
        if self.examined == 0:
            return 0.0
        return self.rejected / self.examined


def _sorted_candidates(
    cand_ids: np.ndarray, cand_dists: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    cand_ids = np.asarray(cand_ids, dtype=np.int64)
    cand_dists = np.asarray(cand_dists, dtype=np.float64)
    if cand_ids.size != cand_dists.size:
        raise ValueError("candidate ids and distances must align")
    order = np.argsort(cand_dists, kind="stable")
    ids = cand_ids[order]
    dists = cand_dists[order]
    _, first = np.unique(ids, return_index=True)
    keep = np.sort(first)
    return ids[keep], dists[keep]


def nond(
    computer: DistanceComputer,
    cand_ids: np.ndarray,
    cand_dists: np.ndarray,
    max_degree: int,
    stats: PruneCounter | None = None,
) -> np.ndarray:
    """Keep the ``max_degree`` closest candidates, no pruning (baseline)."""
    ids, _ = _sorted_candidates(cand_ids, cand_dists)
    if stats is not None:
        stats.examined += min(len(ids), max_degree)
    return ids[:max_degree]


def rnd(
    computer: DistanceComputer,
    cand_ids: np.ndarray,
    cand_dists: np.ndarray,
    max_degree: int,
    stats: PruneCounter | None = None,
) -> np.ndarray:
    """Relative Neighborhood Diversification (Definition 3, Eq. 2).

    A candidate ``x_j`` survives iff for every already-selected neighbor
    ``x_i``: ``dist(x_q, x_j) < dist(x_i, x_j)``.
    """
    return rrnd(computer, cand_ids, cand_dists, max_degree, alpha=1.0, stats=stats)


def rrnd(
    computer: DistanceComputer,
    cand_ids: np.ndarray,
    cand_dists: np.ndarray,
    max_degree: int,
    alpha: float = 1.3,
    stats: PruneCounter | None = None,
) -> np.ndarray:
    """Relaxed RND (Definition 4, Eq. 3) with relaxation factor ``alpha``.

    A candidate ``x_j`` survives iff for every selected ``x_i``:
    ``dist(x_q, x_j) < alpha * dist(x_i, x_j)``.
    """
    if alpha < 1.0:
        raise ValueError("alpha must be >= 1")
    ids, dists = _sorted_candidates(cand_ids, cand_dists)
    selected = np.empty(max_degree, dtype=np.int64)
    n_selected = 0
    for cand, dist_q in zip(ids.tolist(), dists.tolist()):
        if n_selected >= max_degree:
            break
        if stats is not None:
            stats.examined += 1
        if n_selected == 0:
            selected[0] = cand
            n_selected = 1
            continue
        to_selected = computer.one_to_many(cand, selected[:n_selected])
        if (dist_q < alpha * to_selected).all():
            selected[n_selected] = cand
            n_selected += 1
        elif stats is not None:
            stats.rejected += 1
    return selected[:n_selected].copy()


def mond(
    computer: DistanceComputer,
    cand_ids: np.ndarray,
    cand_dists: np.ndarray,
    max_degree: int,
    theta_degrees: float = 60.0,
    stats: PruneCounter | None = None,
) -> np.ndarray:
    """Maximum-Oriented ND (Definition 5, Eq. 4) with threshold ``theta``.

    A candidate ``x_j`` survives iff the angle at ``x_q`` between ``x_j``
    and every selected ``x_i`` exceeds ``theta``.  The angle is recovered
    from the three pairwise distances by the law of cosines, so the pruning
    work is still counted as distance calculations.
    """
    if theta_degrees < 0 or theta_degrees >= 180:
        raise ValueError("theta must be in [0, 180) degrees")
    cos_theta = math.cos(math.radians(theta_degrees))
    ids, dists = _sorted_candidates(cand_ids, cand_dists)
    selected = np.empty(max_degree, dtype=np.int64)
    selected_dists = np.empty(max_degree, dtype=np.float64)
    n_selected = 0
    for cand, dist_q in zip(ids.tolist(), dists.tolist()):
        if n_selected >= max_degree:
            break
        if stats is not None:
            stats.examined += 1
        if n_selected == 0:
            selected[0] = cand
            selected_dists[0] = dist_q
            n_selected = 1
            continue
        if dist_q == 0.0:
            if stats is not None:
                stats.rejected += 1
            continue
        d_ij = computer.one_to_many(cand, selected[:n_selected])
        d_qi = selected_dists[:n_selected]
        # angle(x_i, x_q, x_j) > theta  <=>  cos(angle) < cos(theta)
        denom = 2.0 * d_qi * dist_q
        with np.errstate(divide="ignore", invalid="ignore"):
            cos_angle = (d_qi**2 + dist_q**2 - d_ij**2) / denom
        cos_angle = np.nan_to_num(cos_angle, nan=1.0, posinf=1.0, neginf=-1.0)
        if (cos_angle < cos_theta).all():
            selected[n_selected] = cand
            selected_dists[n_selected] = dist_q
            n_selected += 1
        elif stats is not None:
            stats.rejected += 1
    return selected[:n_selected].copy()


DIVERSIFIERS: dict[str, Diversifier] = {
    "nond": nond,
    "rnd": rnd,
    "rrnd": rrnd,
    "mond": mond,
}


def get_diversifier(name: str, **params) -> Diversifier:
    """Look up a strategy by name, binding optional parameters.

    ``get_diversifier("rrnd", alpha=1.3)`` returns a callable with the
    standard four-argument signature.
    """
    key = name.lower()
    if key not in DIVERSIFIERS:
        raise KeyError(
            f"unknown diversifier {name!r}; choose from {sorted(DIVERSIFIERS)}"
        )
    base = DIVERSIFIERS[key]
    if not params:
        return base

    def bound(computer, cand_ids, cand_dists, max_degree, stats=None):
        """The strategy with its extra parameters pre-bound."""
        return base(
            computer, cand_ids, cand_dists, max_degree, stats=stats, **params
        )

    bound.__name__ = f"{key}_bound"
    return bound


def pruning_ratio(n_candidates: int, n_kept: int) -> float:
    """Fraction of the candidate list removed by diversification (Table 1)."""
    if n_candidates <= 0:
        return 0.0
    return 1.0 - n_kept / n_candidates
