"""Deterministic parallel batch construction of the II graph (ParlayANN-style).

The sequential II apparatus (:func:`~repro.core.incremental.build_ii_graph`)
inserts one node at a time: each insertion's beam search sees every edge the
previous insertion created.  That data dependence is what serializes
construction.  This module breaks it the way ParlayANN does — with
**prefix-doubling rounds**:

* the insertion order is fixed up front and split into rounds of doubling
  size (1, 1, 2, 4, 8, ... — round ``r`` inserts as many nodes as the prefix
  already holds, optionally capped by ``max_round_size``);
* within a round, every node's candidate beam search runs against the
  *frozen* graph over the preceding prefix, so the searches share no state
  and are embarrassingly parallel across a worker pool;
* the round's edges — forward lists from each node's diversified candidates,
  plus reverse edges with overflow re-pruning — are then merged in a single
  sequential pass ordered by insertion rank.

Three mechanisms make the result **bit-identical at any worker count**
(including ``n_workers=1``, which runs the same round loop in-process):

* all per-node randomness (seed sampling, SN level draws) comes from a
  generator derived only from ``(base_seed, insertion_rank)``, never from
  which worker ran the node or how many nodes it saw before;
* each worker attaches zero-copy to the parent's dataset
  (:meth:`DistanceComputer.from_shared`) and to a CSR snapshot of the round's
  frozen graph, whose neighbor lists are byte-for-byte the adjacency lists
  the in-process path reads — so a node's search is the same computation
  wherever it runs;
* workers report distance work as per-node counter *deltas*, which the
  parent folds back into its own counter; integer sums are order-independent,
  so the aggregate count matches the in-process run exactly.

The batched build is **not** the paper's protocol: a round's searches cannot
see edges created earlier in the same round, so the graph differs from the
strictly sequential one (ParlayANN reports — and our benchmarks confirm —
the quality difference is negligible).  Figures that assert the paper's
exact sequential accounting (e.g. Table 2) must keep ``n_workers=None``.
"""

from __future__ import annotations

import numpy as np

from .beam_search import batch_point_beam_search
from .distances import DistanceComputer
from .diversification import Diversifier, PruneCounter, get_diversifier
from .graph import CSRGraph, Graph
from .shared import SharedArrayPack

__all__ = ["plan_rounds", "build_ii_graph_batched"]


def plan_rounds(
    n: int, max_round_size: int | None = None
) -> list[tuple[int, int]]:
    """Prefix-doubling round boundaries over insertion ranks ``[1, n)``.

    Rank 0 is inserted alone (there is no graph to search yet); each
    subsequent round inserts as many nodes as are already inserted, so the
    prefix doubles per round and the build finishes in ``O(log n)`` rounds.
    ``max_round_size`` caps the batch (smaller rounds see a fresher graph at
    the cost of more synchronization points).

    Returns ``(start, stop)`` rank pairs.
    """
    if max_round_size is not None and max_round_size < 1:
        raise ValueError("max_round_size must be >= 1")
    rounds: list[tuple[int, int]] = []
    start = 1
    while start < n:
        size = start
        if max_round_size is not None:
            size = min(size, max_round_size)
        stop = min(start + size, n)
        rounds.append((start, stop))
        start = stop
    return rounds


# ----------------------------------------------------------------------
# worker process state and entry points
# ----------------------------------------------------------------------
_BUILD_WORKER: dict = {}


def _build_worker_init(data_specs: dict) -> None:
    """Pool initializer: attach the dataset once per worker process."""
    arrays, segments = SharedArrayPack.attach(data_specs)
    computer = DistanceComputer.from_shared(
        arrays["data"], arrays["data64"], arrays["sq_norms"]
    )
    _BUILD_WORKER.update(computer=computer, segments=segments)


def _build_worker_search_chunk(payload: tuple) -> list[tuple]:
    """Run one chunk of a round's candidate searches on the frozen graph.

    The CSR snapshot arrives as shared-memory specs (one pack per round,
    shared by every chunk); the chunk itself is ``(points, seeds_per_point)``
    plus the round's ``k``/``beam_width`` and kernel backend.  Returns
    per-node ``(ids, dists, distance_call_delta)`` tuples in chunk order.
    """
    csr_specs, points, seeds_per_point, k, beam_width, kernel = payload
    arrays, segments = SharedArrayPack.attach(csr_specs)
    try:
        frozen = CSRGraph(arrays["indptr"], arrays["indices"], validate=False)
        computer = _BUILD_WORKER["computer"]
        results = _round_point_searches(
            frozen, computer, points, seeds_per_point, k, beam_width, kernel,
            exclude_mask=arrays.get("exclude"),
        )
        return [(r.ids, r.dists, r.distance_calls) for r in results]
    finally:
        for segment in segments:
            segment.close()


def _round_point_searches(
    graph, computer, points, seeds_per_point, k, beam_width, kernel,
    visited_mask=None, exclude_mask=None,
):
    """One round's candidate searches through the selected beam kernel.

    The vectorized multi-query kernel and the scalar
    :func:`batch_point_beam_search` reference are bit-identical per point,
    so the constructed graph and its distance accounting do not depend on
    the backend (or on whether a chunk ran in-process or in a worker).
    ``exclude_mask`` carries the streaming tier's tombstones into insert /
    consolidation rounds: flagged nodes route but never become candidates.
    """
    from .kernels import batch_point_search, resolve_backend

    if resolve_backend(kernel) == "scalar":
        return batch_point_beam_search(
            graph, computer, points, seeds_per_point, k, beam_width,
            visited_mask=visited_mask, exclude_mask=exclude_mask,
        )
    return batch_point_search(
        graph, computer, points, seeds_per_point, k, beam_width, backend=kernel,
        exclude_mask=exclude_mask,
    )


def build_ii_graph_batched(
    computer: DistanceComputer,
    max_degree: int = 24,
    beam_width: int = 128,
    diversify: str | Diversifier = "rnd",
    rng: np.random.Generator | None = None,
    build_seeds=None,
    insertion_order: np.ndarray | None = None,
    diversify_params: dict | None = None,
    track_pruning: bool = True,
    prune_overflow: bool = True,
    n_workers: int = 1,
    max_round_size: int | None = None,
    min_parallel_round: int = 32,
    kernel: str | None = None,
    phase_times: dict | None = None,
):
    """Build the II graph in prefix-doubling rounds, optionally in parallel.

    Parameters mirror :func:`~repro.core.incremental.build_ii_graph`; the
    additions are:

    n_workers:
        Worker processes for the per-round candidate searches.  ``1`` runs
        the identical round loop in-process (no pool, no shared memory).
        The constructed graph and the aggregate distance-call count are
        bit-identical for every value.
    max_round_size:
        Cap on nodes per round (default: uncapped prefix doubling).
    min_parallel_round:
        Rounds smaller than this run in-process even when a pool is
        available — fan-out overhead dominates tiny rounds, and the result
        is identical either way.
    kernel:
        Construction-kernel backend (``scalar`` / ``python`` / ``numba`` /
        ``auto``; ``None`` defers to ``$REPRO_KERNEL``).  Selects both the
        beam kernel of the per-round candidate searches and the batched
        diversification kernels (:mod:`repro.core.build_kernels`) used for
        the round's primary prunes and overflow re-prunes.  Backends are
        bit-identical, so the constructed graph, prune stats, and distance
        accounting do not depend on this choice.
    phase_times:
        Optional dict the builder fills with cumulative wall-clock seconds
        per phase: ``search`` (candidate beam searches), ``prune``
        (diversification + overflow re-prunes), ``merge`` (edge merging and
        seed-provider upkeep).  This is the per-phase breakdown
        ``bench_parallel_build.py`` reports.

    Returns an :class:`~repro.core.incremental.IIBuildResult`.
    """
    from time import perf_counter

    from .incremental import IIBuildResult, RandomBuildSeeds, _prune_with_stats
    from .kernels import resolve_backend

    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if rng is None:
        rng = np.random.default_rng(0)
    n = computer.n
    graph = Graph(n)
    prune_stats = PruneCounter()
    params = diversify_params or {}
    if isinstance(diversify, str):
        diversifier = get_diversifier(diversify, **params)
        bare = get_diversifier(diversify)
    else:
        diversifier = diversify
        bare = None
    if build_seeds is None:
        build_seeds = RandomBuildSeeds()
    use_batched = bare is not None and resolve_backend(kernel) != "scalar"
    if use_batched:
        from .build_kernels import diversify_many, prune_merged_many
    if phase_times is not None:
        for key in ("search", "prune", "merge"):
            phase_times.setdefault(key, 0.0)
    t_search = t_prune = t_merge = 0.0
    mark = computer.checkpoint()
    if insertion_order is None:
        insertion_order = rng.permutation(n)
    insertion_order = np.asarray(insertion_order, dtype=np.int64)
    # one base seed drawn from the caller's stream: every per-node generator
    # derives from (base_seed, rank), so randomness is a pure function of the
    # insertion rank — the first determinism mechanism
    base_seed = int(rng.integers(np.iinfo(np.int64).max))
    result = IIBuildResult(
        graph=graph,
        distance_calls=0,
        prune_stats=prune_stats,
        seed_provider=build_seeds,
    )
    if n == 0:
        return result

    inserted: list[int] = [int(insertion_order[0])]
    build_seeds.on_insert(
        inserted[0], computer, np.random.default_rng((base_seed, 0))
    )
    scratch = np.zeros(n, dtype=bool)
    pool = None
    data_pack = None
    try:
        for start, stop in plan_rounds(n, max_round_size):
            nodes = [int(insertion_order[rank]) for rank in range(start, stop)]
            rngs = [
                np.random.default_rng((base_seed, rank))
                for rank in range(start, stop)
            ]
            # seed selection reads the frozen prefix state (graph, SN stack),
            # so it runs in the parent before any of the round's merges
            seeds_per_node = [
                build_seeds.seeds_for(node, inserted, computer, node_rng)
                for node, node_rng in zip(nodes, rngs)
            ]
            prefix = start
            width = min(beam_width, max(8, prefix))
            k = min(width, prefix)

            t0 = perf_counter()
            if n_workers > 1 and len(nodes) >= min_parallel_round:
                if pool is None:
                    pool, data_pack = _start_pool(computer, n_workers)
                searches = _run_round_in_pool(
                    pool, graph, computer, nodes, seeds_per_node, k, width,
                    n_workers, kernel,
                )
            else:
                searches = [
                    (r.ids, r.dists)
                    for r in _round_point_searches(
                        graph, computer, nodes, seeds_per_node, k, width,
                        kernel, visited_mask=scratch,
                    )
                ]
            t_search += perf_counter() - t0

            # primary diversifications depend only on the round's frozen
            # searches, never on the merge state, so the whole round prunes
            # in one batched call (counter sums commute: same totals as the
            # interleaved per-node order)
            t0 = perf_counter()
            if use_batched:
                kept_per_node = diversify_many(
                    computer, searches, max_degree, diversify,
                    params=params, backend=kernel,
                )
            else:
                kept_per_node = [
                    diversifier(computer, cand_ids, cand_dists, max_degree)
                    for cand_ids, cand_dists in searches
                ]
            t_prune += perf_counter() - t0

            # deterministic merge: one sequential pass in insertion-rank order
            # (overflow-prune time inside the loop is charged to the prune
            # phase, not the merge phase)
            t0 = perf_counter()
            t_overflow = 0.0
            for node, node_rng, kept in zip(nodes, rngs, kept_per_node):
                graph.set_neighbors(node, kept)
                if use_batched:
                    overflow_owners: list[int] = []
                    overflow_merged: list[np.ndarray] = []
                    for nbr in kept:
                        nbr = int(nbr)
                        merged = np.concatenate([graph.neighbors(nbr), [node]])
                        if prune_overflow and merged.size > max_degree:
                            overflow_owners.append(nbr)
                            overflow_merged.append(merged)
                        else:
                            graph.set_neighbors(nbr, merged)
                    if overflow_owners:
                        tp = perf_counter()
                        pruned = prune_merged_many(
                            computer, overflow_owners, overflow_merged,
                            max_degree, diversify, params=params,
                            stats=prune_stats if track_pruning else None,
                            backend=kernel,
                        )
                        t_overflow += perf_counter() - tp
                        for nbr, kept_nbr in zip(overflow_owners, pruned):
                            graph.set_neighbors(nbr, kept_nbr)
                else:
                    for nbr in kept:
                        nbr = int(nbr)
                        merged = np.concatenate([graph.neighbors(nbr), [node]])
                        if prune_overflow and merged.size > max_degree:
                            tp = perf_counter()
                            dists_nbr = computer.one_to_many(nbr, merged)
                            if track_pruning:
                                merged = _prune_with_stats(
                                    diversifier, bare, params, computer,
                                    merged, dists_nbr, max_degree, prune_stats,
                                )
                            else:
                                merged = diversifier(
                                    computer, merged, dists_nbr, max_degree
                                )
                            t_overflow += perf_counter() - tp
                        graph.set_neighbors(nbr, merged)
                inserted.append(node)
                build_seeds.on_insert(node, computer, node_rng)
            t_prune += t_overflow
            t_merge += perf_counter() - t0 - t_overflow
    finally:
        if pool is not None:
            pool.close()
            pool.join()
        if data_pack is not None:
            data_pack.unlink()
    if phase_times is not None:
        phase_times["search"] += t_search
        phase_times["prune"] += t_prune
        phase_times["merge"] += t_merge
    result.distance_calls = computer.since(mark)
    return result


def _start_pool(computer: DistanceComputer, n_workers: int):
    """Share the dataset once and start the build worker pool."""
    from multiprocessing import get_context

    data_pack = SharedArrayPack(
        {
            "data": computer.data,
            "data64": computer._data64,
            "sq_norms": computer._sq_norms,
        }
    )
    try:
        try:
            # fork shares the parent's modules; platforms without it spawn
            context = get_context("fork")
        except ValueError:
            context = get_context("spawn")
        pool = context.Pool(
            processes=n_workers,
            initializer=_build_worker_init,
            initargs=(data_pack.specs,),
        )
    except BaseException:
        data_pack.unlink()
        raise
    return pool, data_pack


def _run_round_in_pool(
    pool,
    graph: Graph,
    computer: DistanceComputer,
    nodes: list[int],
    seeds_per_node: list,
    k: int,
    width: int,
    n_workers: int,
    kernel: str | None,
    exclude_mask: np.ndarray | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Fan one round's searches over the pool against a frozen CSR snapshot.

    Folds the workers' distance-call deltas into the parent counter and
    returns ``(cand_ids, cand_dists)`` per node, in insertion-rank order.
    ``exclude_mask`` (tombstones) rides in the round's shared-memory pack so
    every worker filters candidates identically to the in-process path.
    """
    indptr, indices = graph.to_csr()
    shared = {"indptr": indptr, "indices": indices}
    if exclude_mask is not None:
        shared["exclude"] = exclude_mask
    csr_pack = SharedArrayPack(shared)
    try:
        bounds = np.array_split(
            np.arange(len(nodes)), min(len(nodes), n_workers * 4)
        )
        payloads = [
            (
                csr_pack.specs,
                [nodes[i] for i in chunk],
                [seeds_per_node[i] for i in chunk],
                k,
                width,
                kernel,
            )
            for chunk in bounds
            if chunk.size
        ]
        chunk_results = pool.map(_build_worker_search_chunk, payloads)
    finally:
        csr_pack.unlink()
    searches: list[tuple[np.ndarray, np.ndarray]] = []
    delta_total = 0
    for chunk in chunk_results:
        for cand_ids, cand_dists, delta in chunk:
            searches.append((cand_ids, cand_dists))
            delta_total += delta
    computer.count += delta_total
    return searches
