"""Euclidean distance engine with exact distance-calculation accounting.

The paper's primary hardware-independent metric is the *number of distance
calculations* performed during index construction and query answering
(Section 4.1, "Measures").  Every distance evaluated anywhere in this library
goes through a :class:`DistanceComputer`, which keeps an exact running count.

The computer owns the dataset matrix and pre-computes squared norms (plus a
float64 working copy) so that batched point-to-query distances reduce to one
GEMV plus elementwise work, mirroring the SIMD-vectorized kernels used by
the C++ implementations the paper evaluates.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DistanceComputer", "euclidean", "pairwise_euclidean"]


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two vectors (no accounting)."""
    diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return float(np.sqrt(np.dot(diff, diff)))


def pairwise_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense (len(a), len(b)) Euclidean distance matrix (no accounting).

    Uses the ``|x|^2 - 2 x.y + |y|^2`` expansion; negative round-off is
    clamped to zero before the square root.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    sq = (
        (a * a).sum(axis=1)[:, None]
        - 2.0 * (a @ b.T)
        + (b * b).sum(axis=1)[None, :]
    )
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


class DistanceComputer:
    """Counts every Euclidean distance evaluated against a dataset.

    Parameters
    ----------
    data:
        ``(n, d)`` array of dataset vectors.  A float32 copy is stored for
        footprint accounting, plus a float64 working copy for the kernels.

    Notes
    -----
    One "distance calculation" is one vector-to-vector Euclidean distance,
    matching the accounting used by the paper regardless of whether the
    evaluation happened in a batch.
    """

    __slots__ = ("data", "_data64", "_sq_norms", "count", "n", "dim")

    def __init__(self, data: np.ndarray):
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        self.data = data
        self.n, self.dim = data.shape
        self._data64 = data.astype(np.float64)
        self._sq_norms = (self._data64 * self._data64).sum(axis=1)
        self.count = 0

    @classmethod
    def from_shared(
        cls, data: np.ndarray, data64: np.ndarray, sq_norms: np.ndarray
    ) -> "DistanceComputer":
        """Wrap pre-computed arrays without copying them.

        This is the worker-side constructor of the parallel batch-query
        engine: ``data`` (float32), ``data64`` (the float64 working copy) and
        ``sq_norms`` are views onto ``multiprocessing.shared_memory`` buffers
        owned by the parent process, so every worker shares one physical copy
        of the dataset while keeping its own independent distance counter.
        """
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if data64.shape != data.shape or sq_norms.shape != (data.shape[0],):
            raise ValueError(
                f"shared array shapes disagree: data {data.shape}, "
                f"data64 {data64.shape}, sq_norms {sq_norms.shape}"
            )
        computer = cls.__new__(cls)
        computer.data = data
        computer.n, computer.dim = data.shape
        computer._data64 = data64
        computer._sq_norms = sq_norms
        computer.count = 0
        return computer

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero the distance-calculation counter."""
        self.count = 0

    def checkpoint(self) -> int:
        """Return the current counter value (use with :meth:`since`)."""
        return self.count

    def since(self, mark: int) -> int:
        """Distance calculations performed since ``mark``."""
        return self.count - mark

    # ------------------------------------------------------------------
    # distances against an external query vector
    # ------------------------------------------------------------------
    def prepare_query(self, query: np.ndarray) -> tuple[np.ndarray, float]:
        """Pre-convert a query for repeated :meth:`to_query_prepared` calls."""
        q = np.asarray(query, dtype=np.float64).ravel()
        return q, float(q @ q)

    def to_query_prepared(
        self, ids: np.ndarray, q: np.ndarray, q_sq: float
    ) -> np.ndarray:
        """Distances from dataset points ``ids`` to a prepared query (counted)."""
        ids = np.asarray(ids, dtype=np.intp)
        self.count += len(ids)
        sq = self._sq_norms[ids] - 2.0 * (self._data64[ids] @ q) + q_sq
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq)

    def to_query(self, ids: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Distances from dataset points ``ids`` to ``query`` (counted)."""
        ids = np.asarray(ids, dtype=np.intp)
        q, q_sq = self.prepare_query(query)
        return self.to_query_prepared(ids, q, q_sq)

    def to_queries_segmented(
        self,
        ids: np.ndarray,
        seg_starts: np.ndarray,
        seg_stops: np.ndarray,
        queries64,
        q_sqs,
    ) -> np.ndarray:
        """Distances for a batch of queries' candidate segments (counted once).

        ``ids`` holds the concatenated candidate ids of every query in the
        batch; segment ``j`` (``ids[seg_starts[j]:seg_stops[j]]``) belongs to
        query ``j``, whose prepared float64 vector and squared norm are
        ``queries64[j]`` / ``q_sqs[j]``.  This is the one batched distance
        call of the vectorized multi-query beam kernel.

        Each segment is evaluated with the *same* expression — and thus
        bit-identical results — as a per-query :meth:`to_query_prepared`
        call: one GEMV per segment (column-blocked GEMM kernels round
        differently, which would break the kernel's bit-identity contract
        with the scalar reference path), with the elementwise norm algebra
        applied across the whole concatenation.
        """
        ids = np.asarray(ids, dtype=np.intp)
        self.count += ids.size
        # one gather for the whole batch: a contiguous slice of the gathered
        # rows feeds each segment's GEMV with bitwise-identical results to a
        # fresh per-segment gather, at a fraction of the indexing overhead
        rows = self._data64[ids]
        gemv = np.empty(ids.size, dtype=np.float64)
        starts = np.asarray(seg_starts).tolist()
        stops = np.asarray(seg_stops).tolist()
        for j, (start, stop) in enumerate(zip(starts, stops)):
            if start < stop:
                np.dot(rows[start:stop], queries64[j], out=gemv[start:stop])
        if not starts or (
            starts[0] == 0 and stops[-1] == ids.size and starts[1:] == stops[:-1]
        ):
            # segments tile ids contiguously (the kernel's layout): one repeat
            lens = np.asarray(stops, dtype=np.int64) - np.asarray(starts, dtype=np.int64)
            q_sq_rep = np.repeat(q_sqs, lens)
        else:
            q_sq_rep = np.empty(ids.size, dtype=np.float64)
            for j, (start, stop) in enumerate(zip(starts, stops)):
                q_sq_rep[start:stop] = q_sqs[j]
        # in-place (sq_norms - 2*gemv) + q_sq, bitwise-equal regrouping
        gemv *= -2.0
        gemv += self._sq_norms[ids]
        gemv += q_sq_rep
        np.maximum(gemv, 0.0, out=gemv)
        return np.sqrt(gemv, out=gemv)

    def points_to_many_segmented(
        self,
        point_ids: np.ndarray,
        ids: np.ndarray,
        seg_starts: np.ndarray,
        seg_stops: np.ndarray,
    ) -> np.ndarray:
        """Segmented :meth:`one_to_many`: batch variant for dataset-point queries.

        Segment ``j`` of ``ids`` is scored against dataset point
        ``point_ids[j]``, with cached squared norms covering both sides.
        Bit-identical per segment to ``one_to_many(point_ids[j], segment)``.
        """
        point_ids = np.asarray(point_ids, dtype=np.intp)
        return self.to_queries_segmented(
            ids,
            seg_starts,
            seg_stops,
            self._data64[point_ids],
            self._sq_norms[point_ids],
        )

    def one_to_query(self, i: int, query: np.ndarray) -> float:
        """Distance from dataset point ``i`` to ``query`` (counted)."""
        self.count += 1
        diff = self._data64[i] - np.asarray(query, dtype=np.float64).ravel()
        return float(np.sqrt(np.dot(diff, diff)))

    # ------------------------------------------------------------------
    # distances between dataset points
    # ------------------------------------------------------------------
    def between(self, i: int, j: int) -> float:
        """Distance between dataset points ``i`` and ``j`` (counted)."""
        self.count += 1
        diff = self._data64[i] - self._data64[j]
        return float(np.sqrt(np.dot(diff, diff)))

    def one_to_many(self, i: int, ids: np.ndarray) -> np.ndarray:
        """Distances from dataset point ``i`` to dataset points ``ids``."""
        ids = np.asarray(ids, dtype=np.intp)
        self.count += ids.size
        row = self._data64[i]
        sq = self._sq_norms[ids] - 2.0 * (self._data64[ids] @ row) + self._sq_norms[i]
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq)

    def many_to_many(self, ids_a: np.ndarray, ids_b: np.ndarray) -> np.ndarray:
        """Dense distance matrix between two id sets (counted)."""
        ids_a = np.asarray(ids_a, dtype=np.intp)
        ids_b = np.asarray(ids_b, dtype=np.intp)
        self.count += ids_a.size * ids_b.size
        a = self._data64[ids_a]
        b = self._data64[ids_b]
        sq = (
            self._sq_norms[ids_a][:, None]
            - 2.0 * (a @ b.T)
            + self._sq_norms[ids_b][None, :]
        )
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq)

    # ------------------------------------------------------------------
    def exact_knn(
        self, query: np.ndarray, k: int, chunk_size: int = 262_144
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact k-NN of ``query`` by chunked brute-force scan (counted).

        The dataset is scanned in fixed-size chunks against a running top-k,
        so peak ancillary memory is ``O(chunk_size + k)`` instead of the
        ``O(n)`` index/distance arrays a one-shot scan materializes — the
        difference between fitting and not fitting ground-truth generation
        for the 25GB/100GB configurations.  Ties at the k-th distance are
        broken by ascending id, independent of ``chunk_size``.

        Returns ``(ids, dists)`` sorted by ascending distance.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        k = min(k, self.n)
        if k == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        q, q_sq = self.prepare_query(query)
        best_ids = np.empty(0, dtype=np.int64)
        best_dists = np.empty(0, dtype=np.float64)
        for start in range(0, self.n, chunk_size):
            stop = min(start + chunk_size, self.n)
            self.count += stop - start
            sq = self._sq_norms[start:stop] - 2.0 * (self._data64[start:stop] @ q) + q_sq
            np.maximum(sq, 0.0, out=sq)
            cand_dists = np.concatenate([best_dists, np.sqrt(sq)])
            cand_ids = np.concatenate(
                [best_ids, np.arange(start, stop, dtype=np.int64)]
            )
            keep = np.lexsort((cand_ids, cand_dists))[:k]
            best_ids = cand_ids[keep]
            best_dists = cand_dists[keep]
        return best_ids, best_dists

    def memory_bytes(self) -> int:
        """Bytes held by the raw data plus cached norms (float64 copy included)."""
        return self.data.nbytes + self._data64.nbytes + self._sq_norms.nbytes
