"""Euclidean distance engine with exact distance-calculation accounting.

The paper's primary hardware-independent metric is the *number of distance
calculations* performed during index construction and query answering
(Section 4.1, "Measures").  Every distance evaluated anywhere in this library
goes through a :class:`DistanceComputer`, which keeps an exact running count.

The computer owns the dataset matrix and pre-computes squared norms (plus a
float64 working copy) so that batched point-to-query distances reduce to one
GEMV plus elementwise work, mirroring the SIMD-vectorized kernels used by
the C++ implementations the paper evaluates.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DistanceComputer",
    "PQDistanceComputer",
    "euclidean",
    "pairwise_euclidean",
]


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two vectors (no accounting)."""
    diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return float(np.sqrt(np.dot(diff, diff)))


def pairwise_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense (len(a), len(b)) Euclidean distance matrix (no accounting).

    Uses the ``|x|^2 - 2 x.y + |y|^2`` expansion; negative round-off is
    clamped to zero before the square root.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    sq = (
        (a * a).sum(axis=1)[:, None]
        - 2.0 * (a @ b.T)
        + (b * b).sum(axis=1)[None, :]
    )
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


class DistanceComputer:
    """Counts every Euclidean distance evaluated against a dataset.

    Parameters
    ----------
    data:
        ``(n, d)`` array of dataset vectors.  A float32 copy is stored for
        footprint accounting, plus a float64 working copy for the kernels.

    Notes
    -----
    One "distance calculation" is one vector-to-vector Euclidean distance,
    matching the accounting used by the paper regardless of whether the
    evaluation happened in a batch.
    """

    __slots__ = ("data", "_data64", "_sq_norms", "count", "n", "dim")

    def __init__(self, data: np.ndarray):
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        self.data = data
        self.n, self.dim = data.shape
        self._data64 = data.astype(np.float64)
        self._sq_norms = (self._data64 * self._data64).sum(axis=1)
        self.count = 0

    @classmethod
    def from_shared(
        cls, data: np.ndarray, data64: np.ndarray, sq_norms: np.ndarray
    ) -> "DistanceComputer":
        """Wrap pre-computed arrays without copying them.

        This is the worker-side constructor of the parallel batch-query
        engine: ``data`` (float32), ``data64`` (the float64 working copy) and
        ``sq_norms`` are views onto ``multiprocessing.shared_memory`` buffers
        owned by the parent process, so every worker shares one physical copy
        of the dataset while keeping its own independent distance counter.
        """
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if data64.shape != data.shape or sq_norms.shape != (data.shape[0],):
            raise ValueError(
                f"shared array shapes disagree: data {data.shape}, "
                f"data64 {data64.shape}, sq_norms {sq_norms.shape}"
            )
        computer = cls.__new__(cls)
        computer.data = data
        computer.n, computer.dim = data.shape
        computer._data64 = data64
        computer._sq_norms = sq_norms
        computer.count = 0
        return computer

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero the distance-calculation counter."""
        self.count = 0

    def checkpoint(self) -> int:
        """Return the current counter value (use with :meth:`since`)."""
        return self.count

    def since(self, mark: int) -> int:
        """Distance calculations performed since ``mark``."""
        return self.count - mark

    # ------------------------------------------------------------------
    # distances against an external query vector
    # ------------------------------------------------------------------
    def prepare_query(self, query: np.ndarray) -> tuple[np.ndarray, float]:
        """Pre-convert a query for repeated :meth:`to_query_prepared` calls."""
        q = np.asarray(query, dtype=np.float64).ravel()
        return q, float(q @ q)

    def to_query_prepared(
        self, ids: np.ndarray, q: np.ndarray, q_sq: float
    ) -> np.ndarray:
        """Distances from dataset points ``ids`` to a prepared query (counted)."""
        ids = np.asarray(ids, dtype=np.intp)
        self.count += len(ids)
        sq = self._sq_norms[ids] - 2.0 * (self._data64[ids] @ q) + q_sq
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq)

    def to_query(self, ids: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Distances from dataset points ``ids`` to ``query`` (counted)."""
        ids = np.asarray(ids, dtype=np.intp)
        q, q_sq = self.prepare_query(query)
        return self.to_query_prepared(ids, q, q_sq)

    def to_queries_segmented(
        self,
        ids: np.ndarray,
        seg_starts: np.ndarray,
        seg_stops: np.ndarray,
        queries64,
        q_sqs,
        count: bool = True,
    ) -> np.ndarray:
        """Distances for a batch of queries' candidate segments (counted once).

        ``ids`` holds the concatenated candidate ids of every query in the
        batch; segment ``j`` (``ids[seg_starts[j]:seg_stops[j]]``) belongs to
        query ``j``, whose prepared float64 vector and squared norm are
        ``queries64[j]`` / ``q_sqs[j]``.  This is the one batched distance
        call of the vectorized multi-query beam kernel.

        Each segment is evaluated with the *same* expression — and thus
        bit-identical results — as a per-query :meth:`to_query_prepared`
        call: one GEMV per segment (column-blocked GEMM kernels round
        differently, which would break the kernel's bit-identity contract
        with the scalar reference path), with the elementwise norm algebra
        applied across the whole concatenation.

        ``count=False`` skips the accounting without changing a single bit of
        the arithmetic.  The batched construction kernels use it to precompute
        candidate-pair distance matrices *speculatively*, then charge the
        counter during replay for exactly the entries the scalar selection
        loop would have inspected — so the paper's distance accounting stays
        exact even though more distances were physically evaluated.
        """
        ids = np.asarray(ids, dtype=np.intp)
        if count:
            self.count += ids.size
        # one gather for the whole batch: a contiguous slice of the gathered
        # rows feeds each segment's GEMV with bitwise-identical results to a
        # fresh per-segment gather, at a fraction of the indexing overhead
        rows = self._data64[ids]
        gemv = np.empty(ids.size, dtype=np.float64)
        starts = np.asarray(seg_starts).tolist()
        stops = np.asarray(seg_stops).tolist()
        for j, (start, stop) in enumerate(zip(starts, stops)):
            if start < stop:
                np.dot(rows[start:stop], queries64[j], out=gemv[start:stop])
        if not starts or (
            starts[0] == 0 and stops[-1] == ids.size and starts[1:] == stops[:-1]
        ):
            # segments tile ids contiguously (the kernel's layout): one repeat
            lens = np.asarray(stops, dtype=np.int64) - np.asarray(starts, dtype=np.int64)
            q_sq_rep = np.repeat(q_sqs, lens)
        else:
            q_sq_rep = np.empty(ids.size, dtype=np.float64)
            for j, (start, stop) in enumerate(zip(starts, stops)):
                q_sq_rep[start:stop] = q_sqs[j]
        # in-place (sq_norms - 2*gemv) + q_sq, bitwise-equal regrouping
        gemv *= -2.0
        gemv += self._sq_norms[ids]
        gemv += q_sq_rep
        np.maximum(gemv, 0.0, out=gemv)
        return np.sqrt(gemv, out=gemv)

    def points_to_many_segmented(
        self,
        point_ids: np.ndarray,
        ids: np.ndarray,
        seg_starts: np.ndarray,
        seg_stops: np.ndarray,
        count: bool = True,
    ) -> np.ndarray:
        """Segmented :meth:`one_to_many`: batch variant for dataset-point queries.

        Segment ``j`` of ``ids`` is scored against dataset point
        ``point_ids[j]``, with cached squared norms covering both sides.
        Bit-identical per segment to ``one_to_many(point_ids[j], segment)``.
        ``count=False`` is the speculative-precompute mode (see
        :meth:`to_queries_segmented`).
        """
        point_ids = np.asarray(point_ids, dtype=np.intp)
        return self.to_queries_segmented(
            ids,
            seg_starts,
            seg_stops,
            self._data64[point_ids],
            self._sq_norms[point_ids],
            count=count,
        )

    def one_to_query(self, i: int, query: np.ndarray) -> float:
        """Distance from dataset point ``i`` to ``query`` (counted)."""
        self.count += 1
        diff = self._data64[i] - np.asarray(query, dtype=np.float64).ravel()
        return float(np.sqrt(np.dot(diff, diff)))

    # ------------------------------------------------------------------
    # distances between dataset points
    # ------------------------------------------------------------------
    def between(self, i: int, j: int) -> float:
        """Distance between dataset points ``i`` and ``j`` (counted)."""
        self.count += 1
        diff = self._data64[i] - self._data64[j]
        return float(np.sqrt(np.dot(diff, diff)))

    def one_to_many(self, i: int, ids: np.ndarray) -> np.ndarray:
        """Distances from dataset point ``i`` to dataset points ``ids``."""
        ids = np.asarray(ids, dtype=np.intp)
        self.count += ids.size
        row = self._data64[i]
        sq = self._sq_norms[ids] - 2.0 * (self._data64[ids] @ row) + self._sq_norms[i]
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq)

    def many_to_many(self, ids_a: np.ndarray, ids_b: np.ndarray) -> np.ndarray:
        """Dense distance matrix between two id sets (counted)."""
        ids_a = np.asarray(ids_a, dtype=np.intp)
        ids_b = np.asarray(ids_b, dtype=np.intp)
        self.count += ids_a.size * ids_b.size
        a = self._data64[ids_a]
        b = self._data64[ids_b]
        sq = (
            self._sq_norms[ids_a][:, None]
            - 2.0 * (a @ b.T)
            + self._sq_norms[ids_b][None, :]
        )
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq)

    # ------------------------------------------------------------------
    def exact_knn(
        self, query: np.ndarray, k: int, chunk_size: int = 262_144
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact k-NN of ``query`` by chunked brute-force scan (counted).

        The dataset is scanned in fixed-size chunks against a running top-k,
        so peak ancillary memory is ``O(chunk_size + k)`` instead of the
        ``O(n)`` index/distance arrays a one-shot scan materializes — the
        difference between fitting and not fitting ground-truth generation
        for the 25GB/100GB configurations.  Ties at the k-th distance are
        broken by ascending id, independent of ``chunk_size``.

        Returns ``(ids, dists)`` sorted by ascending distance.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        k = min(k, self.n)
        if k == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        q, q_sq = self.prepare_query(query)
        best_ids = np.empty(0, dtype=np.int64)
        best_dists = np.empty(0, dtype=np.float64)
        for start in range(0, self.n, chunk_size):
            stop = min(start + chunk_size, self.n)
            self.count += stop - start
            sq = self._sq_norms[start:stop] - 2.0 * (self._data64[start:stop] @ q) + q_sq
            np.maximum(sq, 0.0, out=sq)
            cand_dists = np.concatenate([best_dists, np.sqrt(sq)])
            cand_ids = np.concatenate(
                [best_ids, np.arange(start, stop, dtype=np.int64)]
            )
            keep = np.lexsort((cand_ids, cand_dists))[:k]
            best_ids = cand_ids[keep]
            best_dists = cand_dists[keep]
        return best_ids, best_dists

    def exact_knn_batch(
        self, queries: np.ndarray, k: int, chunk_size: int = 262_144
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact k-NN of a query batch in one chunked dataset scan (counted).

        Bit-identical per query to :meth:`exact_knn` — the same chunk
        boundaries, one GEMV per query per chunk (never a GEMM, whose
        column-blocked kernels round differently), and the same elementwise
        norm algebra — but the dataset is sliced once per chunk for the whole
        batch and the running top-k merge is one stable row-wise argsort
        instead of a per-query lexsort.  The stable argsort reproduces the
        lexsort tie-break exactly: within a row, candidate columns are laid
        out in ascending-id order among equal distances (the running top-k
        keeps ties id-sorted, and fresh chunk ids all exceed the previous
        chunks'), so "stable on distance" equals "ascending id on ties".

        Returns ``(ids, dists)`` of shape ``(n_queries, k)``, each row sorted
        by ascending distance.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(
                f"queries must be (n_queries, {self.dim}), got {queries.shape}"
            )
        n_queries = queries.shape[0]
        k = min(k, self.n)
        if k == 0 or n_queries == 0:
            return (
                np.empty((n_queries, k), dtype=np.int64),
                np.empty((n_queries, k), dtype=np.float64),
            )
        q_sqs = np.array([float(q @ q) for q in queries])
        best_ids = np.empty((n_queries, 0), dtype=np.int64)
        best_dists = np.empty((n_queries, 0), dtype=np.float64)
        row_sel = np.arange(n_queries)[:, None]
        for start in range(0, self.n, chunk_size):
            stop = min(start + chunk_size, self.n)
            self.count += (stop - start) * n_queries
            chunk = self._data64[start:stop]
            gemv = np.empty((n_queries, stop - start), dtype=np.float64)
            for j in range(n_queries):
                np.dot(chunk, queries[j], out=gemv[j])
            sq = self._sq_norms[start:stop][None, :] - 2.0 * gemv + q_sqs[:, None]
            np.maximum(sq, 0.0, out=sq)
            np.sqrt(sq, out=sq)
            cand_dists = np.concatenate([best_dists, sq], axis=1)
            cand_ids = np.concatenate(
                [
                    best_ids,
                    np.broadcast_to(
                        np.arange(start, stop, dtype=np.int64),
                        (n_queries, stop - start),
                    ),
                ],
                axis=1,
            )
            keep = np.argsort(cand_dists, axis=1, kind="stable")[:, :k]
            best_dists = cand_dists[row_sel, keep]
            best_ids = cand_ids[row_sel, keep]
        return best_ids, best_dists

    def memory_bytes(self) -> int:
        """Bytes held by the raw data plus cached norms (float64 copy included)."""
        return self.data.nbytes + self._data64.nbytes + self._sq_norms.nbytes


class PQDistanceComputer:
    """Approximate-distance engine for the beyond-RAM tier.

    Keeps only the product-quantization codes (plus the small codebooks)
    resident; the raw float32 vectors live in a memory-mapped file and are
    touched exactly once per query, for the final exact re-rank.  This is the
    DiskANN-style split: beam traversal is driven by cheap asymmetric-distance
    (ADC) estimates against resident codes, and correctness is restored by
    re-ranking the surviving beam with exact distances read from disk.

    Accounting extends the paper's distance-call contract with two more
    deterministic counters:

    ``count``
        Exact vector-to-vector Euclidean distances, same semantics as
        :class:`DistanceComputer.count` — here only the re-rank pays it.
    ``approx_calls``
        ADC estimates computed against PQ codes (one per scored code; LUT
        construction is free, matching how the literature reports it).
    ``page_reads``
        *Logical* disk rows fetched: one per graph adjacency row expanded
        during traversal plus one per raw vector row read at re-rank.  This
        is a deterministic model-level proxy for I/O — not OS page faults,
        which depend on cache state — so it is bit-identical at any worker
        count, chunk size, or kernel backend.

    ``checkpoint``/``since`` mirror the :class:`DistanceComputer` protocol
    but carry the full ``(count, approx_calls, page_reads)`` triple.
    """

    __slots__ = ("pq", "codes", "vectors", "n", "dim", "count", "approx_calls", "page_reads")

    def __init__(self, pq, codes: np.ndarray, vectors: np.ndarray):
        codes = np.ascontiguousarray(codes)
        if codes.ndim != 2 or codes.shape[1] != pq.n_subspaces:
            raise ValueError(
                f"codes must be (n, {pq.n_subspaces}), got shape {codes.shape}"
            )
        if vectors.ndim != 2 or vectors.shape != (codes.shape[0], pq.dim):
            raise ValueError(
                f"vectors must be ({codes.shape[0]}, {pq.dim}), "
                f"got shape {vectors.shape}"
            )
        self.pq = pq
        self.codes = codes
        self.vectors = vectors
        self.n = codes.shape[0]
        self.dim = pq.dim
        self.count = 0
        self.approx_calls = 0
        self.page_reads = 0

    # ------------------------------------------------------------------
    # accounting helpers (triple-counter variants of the exact protocol)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero all three counters."""
        self.count = 0
        self.approx_calls = 0
        self.page_reads = 0

    def checkpoint(self) -> tuple[int, int, int]:
        """Current ``(count, approx_calls, page_reads)`` (use with :meth:`since`)."""
        return (self.count, self.approx_calls, self.page_reads)

    def since(self, mark: tuple[int, int, int]) -> tuple[int, int, int]:
        """Per-counter deltas accumulated since ``mark``."""
        return (
            self.count - mark[0],
            self.approx_calls - mark[1],
            self.page_reads - mark[2],
        )

    def note_graph_reads(self, rows: int) -> None:
        """Charge ``rows`` graph adjacency-row fetches to ``page_reads``.

        The traversal driver calls this once per query with its hop count so
        the global counter reconciles exactly with the per-query sums.
        """
        self.page_reads += int(rows)

    # ------------------------------------------------------------------
    # approximate (ADC) scoring against resident codes
    # ------------------------------------------------------------------
    def build_lut(self, query: np.ndarray) -> np.ndarray:
        """Per-query ADC lookup table (uncounted; built once per query)."""
        return self.pq.build_lut(query)

    def lut_to_ids(self, lut: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """ADC distance estimates of dataset rows ``ids`` (counted as approx).

        This is the scalar reference path; :meth:`lut_segmented` is the
        batched multi-query equivalent and is bitwise identical per element.
        """
        ids = np.asarray(ids, dtype=np.intp)
        self.approx_calls += ids.size
        return self.pq.lut_distances(lut, self.codes[ids])

    def lut_segmented(
        self,
        ids: np.ndarray,
        seg_starts: np.ndarray,
        seg_stops: np.ndarray,
        luts: np.ndarray,
        lanes: np.ndarray | None = None,
    ) -> np.ndarray:
        """ADC estimates for a batch of queries' candidate segments.

        ``ids`` holds the concatenated candidate ids of every query in the
        batch; segment ``j`` (``ids[seg_starts[j]:seg_stops[j]]``) is scored
        against LUT ``luts[lanes[j]]`` (``luts[j]`` when ``lanes`` is None).
        The per-element accumulation order — one add per subspace, ascending
        — matches :meth:`lut_to_ids` exactly, so the vectorized kernel path
        is bitwise identical to the scalar reference at any batch size.
        """
        ids = np.asarray(ids, dtype=np.intp)
        self.approx_calls += ids.size
        starts = np.asarray(seg_starts, dtype=np.int64)
        stops = np.asarray(seg_stops, dtype=np.int64)
        if lanes is None:
            lanes = np.arange(starts.shape[0], dtype=np.int64)
        else:
            lanes = np.asarray(lanes, dtype=np.int64)
        if starts.size and starts[0] == 0 and stops[-1] == ids.size and np.array_equal(
            starts[1:], stops[:-1]
        ):
            # segments tile ids contiguously (the kernel's layout): one repeat
            lane_rep = np.repeat(lanes, stops - starts)
        else:
            lane_rep = np.empty(ids.size, dtype=np.int64)
            for j in range(starts.shape[0]):
                lane_rep[starts[j] : stops[j]] = lanes[j]
        codes_sel = self.codes[ids].astype(np.int64, copy=False)
        total = np.zeros(ids.size, dtype=np.float64)
        for sub in range(self.pq.n_subspaces):
            total += luts[lane_rep, sub, codes_sel[:, sub]]
        np.maximum(total, 0.0, out=total)
        return np.sqrt(total)

    # ------------------------------------------------------------------
    # exact re-rank against the memory-mapped raw vectors
    # ------------------------------------------------------------------
    def rerank(self, ids: np.ndarray, query: np.ndarray) -> np.ndarray:
        """Exact distances of rows ``ids`` to ``query`` (counted + paged).

        The one place a query touches the raw-vector file: each row fetched
        costs one exact distance call and one logical page read.  Uses the
        diff-based float64 expression (not the norm expansion) so results do
        not depend on any cached norm state — identical everywhere it runs.
        """
        ids = np.asarray(ids, dtype=np.intp)
        self.count += ids.size
        self.page_reads += ids.size
        rows = np.asarray(self.vectors[ids], dtype=np.float64)
        q = np.asarray(query, dtype=np.float64).ravel()
        diff = rows - q
        sq = (diff * diff).sum(axis=1)
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq)

    def memory_bytes(self) -> int:
        """Resident bytes: PQ codes plus codebooks (the mmap is excluded)."""
        return int(self.codes.nbytes) + int(self.pq.memory_bytes())
