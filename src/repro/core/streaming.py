"""Streaming index tier: tombstone deletes, live inserts, batch consolidation.

The paper's protocol is build-then-freeze; production traffic is not.  This
module turns the incremental-insertion apparatus into an online engine the
way FreshDiskANN does:

* ``delete(ids)`` only *tombstones* nodes.  A tombstoned node keeps routing —
  beam search traverses it exactly as before (hops and distance calls are
  unchanged), it just never appears in an answer (the finished beam is
  filtered through the ``exclude_mask`` wired into
  :func:`~repro.core.beam_search.beam_search` and the vectorized kernel).
  Deleting is therefore O(batch) and recall degrades only gradually as dead
  nodes crowd the beam.

* ``insert(vectors)`` appends rows to growable dataset buffers and links the
  new nodes with the incremental-insertion protocol against the *frozen*
  pre-insert graph — one ParlayANN-style round: every new node's candidate
  beam search is independent (and fans out over the batched builder's worker
  pool), then edges are merged in one sequential pass ordered by insertion
  rank.  Tombstoned nodes route during these searches but never become
  candidates, so new edges only target live nodes.

* ``consolidate()`` is FreshDiskANN's batch delete-consolidation: every live
  node that points at a tombstoned neighbor rebuilds its out-list from the
  union of its live neighbors and its dead neighbors' live neighbors
  (re-pruned by the configured ND strategy), computed against the frozen
  pre-consolidation graph so repairs are order-free; dead nodes' adjacency
  is then cleared.  Dead ids are never reused.

**Determinism contract.**  All mutation randomness derives from
``(mutation_seed, insertion_rank)``; candidate searches are bit-identical
across kernel backends and across in-process vs. worker-pool execution; the
merge/repair passes are sequential in rank/node order; distance work done in
workers is folded back as order-independent counter deltas.  Graph bytes and
the aggregate distance-call count after any insert/delete/consolidate
schedule are therefore bit-identical at every ``n_workers`` and every
``REPRO_KERNEL`` backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..indexes.base import BaseGraphIndex, BuildReport
from .batch_build import (
    _round_point_searches,
    _run_round_in_pool,
    _start_pool,
    build_ii_graph_batched,
)
from .beam_search import SearchResult, beam_search
from .distances import DistanceComputer
from .diversification import PruneCounter, get_diversifier
from .graph import CSRGraph
from .kernels import resolve_backend
from .shared import SharedArrayPack

__all__ = ["StreamingIndex", "ConsolidationReport"]


@dataclass
class ConsolidationReport:
    """Accounting for one :meth:`StreamingIndex.consolidate` pass."""

    n_dead: int
    n_repaired: int
    distance_calls: int
    wall_time_s: float


def _repair_candidates(graph, tombstone: np.ndarray, node: int) -> np.ndarray:
    """FreshDiskANN repair candidates for a live node with dead neighbors.

    The union of the node's live out-neighbors and, for each tombstoned
    out-neighbor ``d``, the live out-neighbors of ``d`` (minus the node
    itself) — the edges that kept routing *through* ``d`` now route around
    it.  Order (live neighbors first, then each dead neighbor's list in
    adjacency order) is deterministic; the ND pruner dedupes.
    """
    nbrs = graph.neighbors(node)
    dead = tombstone[nbrs]
    parts = [nbrs[~dead]]
    for d in nbrs[dead]:
        through = graph.neighbors(int(d))
        if through.size:
            through = through[~tombstone[through]]
            parts.append(through[through != node])
    cand = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    if cand.size:
        _, first = np.unique(cand, return_index=True)
        cand = cand[np.sort(first)]
    return cand


def _consolidate_worker_chunk(payload: tuple) -> list[tuple]:
    """Worker entry: repair one chunk of affected nodes on the frozen graph.

    Runs inside the batched builder's pool (the dataset computer is already
    attached by ``_build_worker_init``); the frozen CSR snapshot and the
    tombstone mask arrive as one shared-memory pack per consolidation pass.
    Returns ``((node, kept_ids) pairs, distance_call_delta)`` — per-chunk
    deltas sum order-independently, so the parent's aggregate counter
    matches the in-process pass exactly.  Non-scalar kernels run the whole
    chunk through the batched construction kernels (bit-identical repairs).
    """
    from .batch_build import _BUILD_WORKER

    csr_specs, nodes, max_degree, diversify, params, kernel = payload
    arrays, segments = SharedArrayPack.attach(csr_specs)
    try:
        frozen = CSRGraph(arrays["indptr"], arrays["indices"], validate=False)
        tombstone = arrays["tombstone"]
        computer = _BUILD_WORKER["computer"]
        mark = computer.checkpoint()
        if resolve_backend(kernel) != "scalar":
            from .build_kernels import prune_merged_many

            cands = [_repair_candidates(frozen, tombstone, n) for n in nodes]
            kepts = prune_merged_many(
                computer, list(nodes), cands, max_degree, diversify,
                params=params, backend=kernel,
            )
        else:
            diversifier = get_diversifier(diversify, **params)
            kepts = [
                _repair_node(
                    frozen, computer, tombstone, node, max_degree, diversifier
                )
                for node in nodes
            ]
        return list(zip(nodes, kepts)), computer.since(mark)
    finally:
        for segment in segments:
            segment.close()


def _repair_node(graph, computer, tombstone, node, max_degree, diversifier):
    """One node's repaired out-list (pure function of the frozen graph)."""
    cand = _repair_candidates(graph, tombstone, node)
    if cand.size == 0:
        return cand
    dists = computer.one_to_many(node, cand)
    return diversifier(computer, cand, dists, max_degree)


class StreamingIndex(BaseGraphIndex):
    """Online II-graph index: live inserts, tombstone deletes, consolidation.

    Parameters
    ----------
    max_degree, build_beam_width, diversify, diversify_params:
        The II apparatus knobs (out-degree cap, construction beam width, ND
        strategy) — used by the initial build, by every insert's linking
        pass, and by consolidation's re-prune.  The default is RRND with
        ``alpha=1.2`` (Vamana's relaxed prune, which FreshDiskANN builds
        on): consolidation repairs under plain RND prune too aggressively
        and lose several recall points relative to a from-scratch build,
        while the alpha slack keeps the repaired graph within tolerance.
    n_build_seeds, n_query_seeds:
        Random live seeds per insert-time / query-time beam search.
    growth_factor:
        Dataset buffers over-allocate by this factor so most inserts append
        in place instead of reallocating.
    n_workers:
        Worker processes for the initial build, insert-batch searches, and
        consolidation repairs.  Results are bit-identical at every count
        (``1`` runs in-process).
    min_parallel_batch:
        Mutation batches smaller than this run in-process even when
        ``n_workers > 1`` — pool startup dominates tiny batches and the
        result is identical either way.
    kernel:
        Beam backend for batched searches (``None`` = ``$REPRO_KERNEL``).
        Bit-identical across backends.
    """

    name = "Streaming-II"

    def __init__(
        self,
        max_degree: int = 16,
        build_beam_width: int = 64,
        diversify: str = "rrnd",
        diversify_params: dict | None = None,
        n_build_seeds: int = 4,
        n_query_seeds: int = 8,
        growth_factor: float = 1.5,
        seed: int = 0,
        default_beam_width: int = 64,
        n_workers: int = 1,
        min_parallel_batch: int = 32,
        kernel: str | None = None,
    ):
        super().__init__(seed, default_beam_width)
        if max_degree < 2:
            raise ValueError("max_degree must be >= 2")
        if n_build_seeds < 1 or n_query_seeds < 1:
            raise ValueError("seed counts must be >= 1")
        if growth_factor < 1.0:
            raise ValueError("growth_factor must be >= 1.0")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if not isinstance(diversify, str):
            raise TypeError(
                "StreamingIndex needs the ND strategy by name (it must be "
                "re-instantiable inside worker processes)"
            )
        self.max_degree = max_degree
        self.build_beam_width = build_beam_width
        self.diversify = diversify
        if diversify_params is None:
            # FreshDiskANN's repair slack: alpha-relaxed prune by default
            diversify_params = {"alpha": 1.2} if diversify == "rrnd" else {}
        self.diversify_params = dict(diversify_params)
        self.n_build_seeds = n_build_seeds
        self.n_query_seeds = n_query_seeds
        self.growth_factor = growth_factor
        self.n_workers = n_workers
        self.min_parallel_batch = min_parallel_batch
        self.kernel = kernel
        self.prune_stats = PruneCounter()
        #: monotonically increasing graph version; bumped by every mutation.
        #: Serving-layer caches key on it, so any cached answer computed
        #: against an older graph state becomes unreachable.
        self.version = 0
        self._buf32: np.ndarray | None = None
        self._buf64: np.ndarray | None = None
        self._buf_sq: np.ndarray | None = None
        self._n_total = 0
        self._capacity = 0
        self._tombstone: np.ndarray | None = None
        self._alive_ids: np.ndarray | None = None
        self._mutation_seed = 0
        self._mutation_rank = 0
        self._diversifier = get_diversifier(diversify, **self.diversify_params)
        self._bare_diversifier = get_diversifier(diversify)

    # ------------------------------------------------------------------
    # growable dataset storage
    # ------------------------------------------------------------------
    def _alloc(self, capacity: int, dim: int) -> None:
        new32 = np.zeros((capacity, dim), dtype=np.float32)
        new64 = np.zeros((capacity, dim), dtype=np.float64)
        new_sq = np.zeros(capacity, dtype=np.float64)
        if self._n_total:
            new32[: self._n_total] = self._buf32[: self._n_total]
            new64[: self._n_total] = self._buf64[: self._n_total]
            new_sq[: self._n_total] = self._buf_sq[: self._n_total]
        self._buf32, self._buf64, self._buf_sq = new32, new64, new_sq
        self._capacity = capacity

    def _ensure_capacity(self, need: int) -> None:
        if need > self._capacity:
            grown = int(np.ceil(self._capacity * self.growth_factor))
            self._alloc(max(need, grown), self._buf32.shape[1])

    def _rebind_computer(self, preserve_count: bool = True) -> None:
        """Re-slice the computer's views after the id space grows.

        :meth:`DistanceComputer.from_shared` wraps the buffer prefixes
        without copying; the running distance counter survives the rebind.
        """
        count = (
            self.computer.count
            if (preserve_count and self.computer is not None)
            else 0
        )
        self.computer = DistanceComputer.from_shared(
            self._buf32[: self._n_total],
            self._buf64[: self._n_total],
            self._buf_sq[: self._n_total],
        )
        self.computer.count = count

    def _append_rows(self, vectors: np.ndarray) -> None:
        m = vectors.shape[0]
        self._ensure_capacity(self._n_total + m)
        lo, hi = self._n_total, self._n_total + m
        v64 = vectors.astype(np.float64)
        self._buf32[lo:hi] = vectors
        self._buf64[lo:hi] = v64
        self._buf_sq[lo:hi] = (v64 * v64).sum(axis=1)
        self._n_total = hi
        self._rebind_computer()

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def build(self, data: np.ndarray) -> "StreamingIndex":
        """Initial build: the batched II protocol over growable storage.

        Always the prefix-doubling batched builder (never the sequential
        protocol), so the starting graph — like every later mutation — is
        bit-identical at any worker count.
        """
        data = np.ascontiguousarray(np.atleast_2d(data), dtype=np.float32)
        if data.ndim != 2 or data.shape[0] < 1:
            raise ValueError(f"data must be a non-empty 2-D array, got {data.shape}")
        n, dim = data.shape
        self._n_total = 0
        self._alloc(max(int(np.ceil(n * self.growth_factor)), n), dim)
        start = time.perf_counter()
        self._append_rows(data)
        self.computer.count = 0
        rng = np.random.default_rng(self.seed)
        mark = self.computer.checkpoint()
        result = build_ii_graph_batched(
            self.computer,
            max_degree=self.max_degree,
            beam_width=self.build_beam_width,
            diversify=self.diversify,
            rng=rng,
            diversify_params=self.diversify_params or None,
            track_pruning=True,
            n_workers=self.n_workers,
            kernel=self.kernel,
        )
        # drawn after the builder consumed its share of the stream: a pure
        # function of self.seed, independent of n_workers and kernel
        self._mutation_seed = int(rng.integers(np.iinfo(np.int64).max))
        self._mutation_rank = n
        self.graph = result.graph
        self.prune_stats = result.prune_stats
        self._tombstone = np.zeros(n, dtype=bool)
        self._on_mutation()
        self.version = 0
        self.build_report = BuildReport(
            distance_calls=self.computer.since(mark),
            wall_time_s=time.perf_counter() - start,
        )
        return self

    def _build(self, rng: np.random.Generator) -> None:  # pragma: no cover
        raise NotImplementedError("StreamingIndex overrides build() directly")

    # ------------------------------------------------------------------
    # mutation bookkeeping
    # ------------------------------------------------------------------
    def _on_mutation(self) -> None:
        self.version += 1
        self._csr_cache = None
        self._visited_scratch = None
        self._alive_ids = np.flatnonzero(~self._tombstone)

    def _require_streaming(self) -> DistanceComputer:
        computer = self._require_built()
        if self.graph is None or self._tombstone is None:
            raise RuntimeError(f"{self.name}: graph missing; build() first")
        return computer

    @property
    def n_total(self) -> int:
        """Total id space ever allocated (live + tombstoned)."""
        return self._n_total

    @property
    def n_alive(self) -> int:
        """Nodes that can currently be returned by a query."""
        return int(self._alive_ids.size) if self._alive_ids is not None else 0

    @property
    def alive_ids(self) -> np.ndarray:
        """Sorted ids of live nodes (read-only view semantics: copy to keep)."""
        self._require_streaming()
        return self._alive_ids

    def graph_fingerprint(self) -> int:
        """Hash of the exact graph bytes plus the tombstone mask.

        Two schedules that produce bit-identical graph state produce equal
        fingerprints — the determinism-contract witness used by tests and
        ``bench_streaming``.
        """
        self._require_streaming()
        degrees = self.graph.degrees()
        flat = (
            np.concatenate([self.graph.neighbors(i) for i in range(self.graph.n)])
            if int(degrees.sum())
            else np.empty(0, dtype=np.int64)
        )
        return hash(
            (flat.tobytes(), degrees.tobytes(), self._tombstone.tobytes())
        )

    # ------------------------------------------------------------------
    # delete / insert / consolidate
    # ------------------------------------------------------------------
    def delete(self, ids) -> int:
        """Tombstone ``ids``; returns how many were newly deleted.

        Idempotent per id.  The nodes keep routing traffic until the next
        :meth:`consolidate`; they stop being returned immediately.
        """
        self._require_streaming()
        ids = np.unique(np.asarray(ids, dtype=np.int64).ravel())
        if ids.size == 0:
            return 0
        if ids[0] < 0 or ids[-1] >= self._n_total:
            bad = ids[(ids < 0) | (ids >= self._n_total)]
            raise ValueError(
                f"delete ids {bad.tolist()} outside the id range [0, {self._n_total})"
            )
        fresh = ids[~self._tombstone[ids]]
        if fresh.size == self.n_alive:
            raise ValueError(
                "cannot tombstone every live node; the index would have no "
                "valid answers or query seeds"
            )
        if fresh.size == 0:
            return 0
        self._tombstone[fresh] = True
        self._on_mutation()
        return int(fresh.size)

    def insert(self, vectors: np.ndarray) -> np.ndarray:
        """Append ``vectors`` as new live nodes; returns their ids.

        One batched II round against the frozen pre-insert graph: candidate
        searches (seeded from live nodes, tombstones excluded from
        candidacy) are independent and fan out across the worker pool when
        the batch is large enough, then edges merge sequentially in
        insertion-rank order — bit-identical at every worker count and
        kernel backend.
        """
        computer = self._require_streaming()
        vectors = np.ascontiguousarray(np.atleast_2d(vectors), dtype=np.float32)
        if vectors.ndim != 2 or vectors.shape[1] != computer.dim:
            raise ValueError(
                f"vectors must be (m, {computer.dim}), got {vectors.shape}"
            )
        m = vectors.shape[0]
        if m == 0:
            return np.empty(0, dtype=np.int64)
        alive = self._alive_ids
        old_total = self._n_total
        self._append_rows(vectors)
        computer = self.computer
        new_ids = np.arange(old_total, old_total + m, dtype=np.int64)
        self.graph.grow(self._n_total)
        self._tombstone = np.concatenate(
            [self._tombstone, np.zeros(m, dtype=bool)]
        )

        ranks = range(self._mutation_rank, self._mutation_rank + m)
        self._mutation_rank += m
        rngs = [np.random.default_rng((self._mutation_seed, r)) for r in ranks]
        seeds_per_node = []
        for node_rng in rngs:
            size = min(self.n_build_seeds, alive.size)
            picks = node_rng.choice(alive.size, size=size, replace=False)
            seeds_per_node.append(alive[np.sort(picks)])
        width = min(self.build_beam_width, max(8, alive.size))
        k = min(width, alive.size)

        searches = self._frozen_point_searches(
            new_ids.tolist(), seeds_per_node, k, width
        )
        # masked searches pad to k with (PAD_ID, inf) when tombstones
        # empty the beam; a sentinel id must never reach the
        # diversifier (fancy indexing would wrap -1 to the last node)
        cleaned = []
        for cand_ids, cand_dists in searches:
            live = cand_ids >= 0
            cleaned.append((cand_ids[live], cand_dists[live]))

        use_batched = resolve_backend(self.kernel) != "scalar"
        if use_batched:
            from .build_kernels import diversify_many, prune_merged_many

            # the primary prunes depend only on the frozen searches, so the
            # whole batch reduces to one lockstep kernel call; reverse-merge
            # overflow prunes batch per insertion (rows pairwise distinct)
            kept_per_node = diversify_many(
                computer, cleaned, self.max_degree, self.diversify,
                params=self.diversify_params, backend=self.kernel,
            )
            for node, kept in zip(new_ids.tolist(), kept_per_node):
                self.graph.set_neighbors(node, kept)
                overflow_owners: list[int] = []
                overflow_merged: list[np.ndarray] = []
                for nbr in kept:
                    nbr = int(nbr)
                    merged = np.concatenate([self.graph.neighbors(nbr), [node]])
                    if merged.size > self.max_degree:
                        overflow_owners.append(nbr)
                        overflow_merged.append(merged)
                    else:
                        self.graph.set_neighbors(nbr, merged)
                if overflow_owners:
                    pruned = prune_merged_many(
                        computer, overflow_owners, overflow_merged,
                        self.max_degree, self.diversify,
                        params=self.diversify_params, stats=self.prune_stats,
                        backend=self.kernel,
                    )
                    for nbr, kept_nbr in zip(overflow_owners, pruned):
                        self.graph.set_neighbors(nbr, kept_nbr)
        else:
            # sequential rank-ordered merge (the batched builder's 2nd phase)
            from .incremental import _prune_with_stats

            for node, (cand_ids, cand_dists) in zip(new_ids.tolist(), cleaned):
                kept = self._diversifier(
                    computer, cand_ids, cand_dists, self.max_degree
                )
                self.graph.set_neighbors(node, kept)
                for nbr in kept:
                    nbr = int(nbr)
                    merged = np.concatenate([self.graph.neighbors(nbr), [node]])
                    if merged.size > self.max_degree:
                        dists_nbr = computer.one_to_many(nbr, merged)
                        merged = _prune_with_stats(
                            self._diversifier, self._bare_diversifier,
                            self.diversify_params, computer, merged, dists_nbr,
                            self.max_degree, self.prune_stats,
                        )
                    self.graph.set_neighbors(nbr, merged)
        self._on_mutation()
        return new_ids

    def _frozen_point_searches(self, points, seeds_per_point, k, width):
        """One round of point searches against the frozen current graph.

        In-process for small batches (or ``n_workers == 1``), otherwise
        fanned over the batched builder's shared-memory pool — identical
        results either way, by the builder's round contract.
        """
        if self.n_workers > 1 and len(points) >= self.min_parallel_batch:
            pool, data_pack = _start_pool(self.computer, self.n_workers)
            try:
                return _run_round_in_pool(
                    pool, self.graph, self.computer, points, seeds_per_point,
                    k, width, self.n_workers, self.kernel,
                    exclude_mask=self._tombstone,
                )
            finally:
                pool.close()
                pool.join()
                data_pack.unlink()
        return [
            (r.ids, r.dists)
            for r in _round_point_searches(
                self.graph, self.computer, points, seeds_per_point, k, width,
                self.kernel, exclude_mask=self._tombstone,
            )
        ]

    def consolidate(self) -> ConsolidationReport:
        """Rebuild around tombstoned nodes (FreshDiskANN batch consolidation).

        Every live node with at least one dead out-neighbor gets its
        out-list recomputed from its live neighbors plus its dead neighbors'
        live neighbors, re-pruned by the ND strategy — all repairs are
        evaluated against the frozen pre-consolidation graph (so the pass is
        order-free and parallelizes over the worker pool), then applied in
        node order.  Dead nodes' adjacency is cleared; their ids stay
        tombstoned forever (never reused).
        """
        computer = self._require_streaming()
        start = time.perf_counter()
        mark = computer.checkpoint()
        tombstone = self._tombstone
        dead = np.flatnonzero(tombstone)
        if dead.size == 0:
            return ConsolidationReport(0, 0, 0, time.perf_counter() - start)
        affected = [
            node
            for node in self._alive_ids.tolist()
            if self.graph.neighbors(node).size
            and bool(tombstone[self.graph.neighbors(node)].any())
        ]
        repairs = self._frozen_repairs(affected)
        for node, kept in repairs:
            self.graph.set_neighbors(node, kept)
        for d in dead.tolist():
            self.graph.set_neighbors(d, np.empty(0, dtype=np.int64))
        self._on_mutation()
        return ConsolidationReport(
            n_dead=int(dead.size),
            n_repaired=len(affected),
            distance_calls=computer.since(mark),
            wall_time_s=time.perf_counter() - start,
        )

    def _frozen_repairs(self, affected: list[int]) -> list[tuple]:
        """Repaired out-lists for ``affected``, frozen-graph semantics.

        Returns ``(node, kept_ids)`` in node order.  The pool path ships the
        frozen CSR snapshot + tombstone mask through shared memory and folds
        worker distance deltas into the parent counter.
        """
        if self.n_workers > 1 and len(affected) >= self.min_parallel_batch:
            pool, data_pack = _start_pool(self.computer, self.n_workers)
            try:
                indptr, indices = self.graph.to_csr()
                csr_pack = SharedArrayPack(
                    {
                        "indptr": indptr,
                        "indices": indices,
                        "tombstone": self._tombstone,
                    }
                )
                try:
                    bounds = np.array_split(
                        np.arange(len(affected)),
                        min(len(affected), self.n_workers * 4),
                    )
                    payloads = [
                        (
                            csr_pack.specs,
                            [affected[i] for i in chunk],
                            self.max_degree,
                            self.diversify,
                            self.diversify_params,
                            self.kernel,
                        )
                        for chunk in bounds
                        if chunk.size
                    ]
                    chunk_results = pool.map(_consolidate_worker_chunk, payloads)
                finally:
                    csr_pack.unlink()
            finally:
                pool.close()
                pool.join()
                data_pack.unlink()
            repairs: list[tuple] = []
            delta_total = 0
            for pairs, delta in chunk_results:
                repairs.extend(pairs)
                delta_total += delta
            self.computer.count += delta_total
            return repairs
        if resolve_backend(self.kernel) != "scalar":
            from .build_kernels import prune_merged_many

            cands = [
                _repair_candidates(self.graph, self._tombstone, node)
                for node in affected
            ]
            kepts = prune_merged_many(
                self.computer, affected, cands, self.max_degree,
                self.diversify, params=self.diversify_params,
                backend=self.kernel,
            )
            return list(zip(affected, kepts))
        return [
            (
                node,
                _repair_node(
                    self.graph, self.computer, self._tombstone, node,
                    self.max_degree, self._diversifier,
                ),
            )
            for node in affected
        ]

    # ------------------------------------------------------------------
    # query path (tombstone-aware)
    # ------------------------------------------------------------------
    def _query_seeds(self, query: np.ndarray) -> np.ndarray:
        alive = self._alive_ids
        size = min(self.n_query_seeds, alive.size)
        picks = self._query_rng.choice(alive.size, size=size, replace=False)
        return alive[picks]

    def search(
        self, query: np.ndarray, k: int = 10, beam_width: int | None = None
    ) -> SearchResult:
        """Algorithm 1 with tombstones excluded from the answer set."""
        computer = self._require_streaming()
        width = max(beam_width or max(self.default_beam_width, k), k)
        mark = computer.checkpoint()
        seeds = self._query_seeds(query)
        if self._visited_scratch is None or self._visited_scratch.size != self.graph.n:
            self._visited_scratch = np.zeros(self.graph.n, dtype=bool)
        result = beam_search(
            self.graph,
            computer,
            query,
            seeds,
            k=k,
            beam_width=width,
            visited_mask=self._visited_scratch,
            exclude_mask=self._tombstone,
        )
        result.distance_calls = computer.since(mark)
        return result

    def search_batch(
        self,
        queries: np.ndarray,
        k: int = 10,
        beam_width: int | None = None,
        query_indices=None,
        kernel: str | None = None,
    ) -> list[SearchResult]:
        """Batched tombstone-aware queries via the multi-query kernel.

        Mirrors :meth:`BaseGraphIndex.search_batch` (which would fall back
        to the scalar loop for any subclass overriding :meth:`search`) with
        the tombstone mask threaded through — bit-identical to per-query
        :meth:`search` at any batch size, backend, and worker count.
        """
        from .kernels import batch_search, resolve_backend

        backend = resolve_backend(kernel)
        if backend == "scalar":
            return super(BaseGraphIndex, self).search_batch(
                queries, k=k, beam_width=beam_width, query_indices=query_indices
            )
        computer = self._require_streaming()
        queries = np.atleast_2d(np.asarray(queries))
        width = max(beam_width or max(self.default_beam_width, k), k)
        graph = self._kernel_graph()
        seeds_per_query = []
        seed_calls = []
        for j in range(queries.shape[0]):
            if query_indices is not None:
                self.seed_query_rng(int(query_indices[j]))
            mark = computer.checkpoint()
            seeds_per_query.append(self._query_seeds(queries[j]))
            seed_calls.append(computer.since(mark))
        results = batch_search(
            graph, computer, queries, seeds_per_query,
            k=k, beam_width=width, backend=backend,
            exclude_mask=self._tombstone,
        )
        for result, calls in zip(results, seed_calls):
            result.distance_calls += calls
        return results

    # ------------------------------------------------------------------
    # ground truth over the live set
    # ------------------------------------------------------------------
    def alive_ground_truth(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact k-NN over the *live* nodes only, in original-id space.

        The recall-drift yardstick: after deletes, the true answers are the
        nearest live vectors, not the nearest rows of the original dataset.
        Uses a throwaway computer (not charged to the index) over the live
        rows and maps ids back.
        """
        self._require_streaming()
        alive = self._alive_ids
        if k > alive.size:
            raise ValueError(f"k={k} exceeds the live node count {alive.size}")
        throwaway = DistanceComputer(self._buf32[alive])
        ids, dists = throwaway.exact_knn_batch(np.atleast_2d(queries), k)
        return alive[ids], dists

    # ------------------------------------------------------------------
    # batch-engine / pickling plumbing
    # ------------------------------------------------------------------
    def shared_query_state(self) -> dict[str, np.ndarray]:
        state = super().shared_query_state()
        state["tombstone"] = self._tombstone
        return state

    def attach_shared_query_state(self, arrays: dict[str, np.ndarray]) -> None:
        super().attach_shared_query_state(arrays)
        self._tombstone = arrays["tombstone"]
        self._alive_ids = np.flatnonzero(~self._tombstone)

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        for key in ("_buf32", "_buf64", "_buf_sq", "_tombstone", "_alive_ids"):
            state[key] = None
        # parameter-bound diversifiers are local closures (unpicklable);
        # workers rebuild them from (diversify, diversify_params)
        state["_diversifier"] = None
        state["_bare_diversifier"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._diversifier = get_diversifier(
            self.diversify, **self.diversify_params
        )
        self._bare_diversifier = get_diversifier(self.diversify)

    def memory_bytes(self) -> int:
        graph_bytes = super().memory_bytes()
        mask_bytes = self._tombstone.nbytes if self._tombstone is not None else 0
        return graph_bytes + mask_bytes
