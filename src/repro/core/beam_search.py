"""Beam search over a proximity graph (Algorithm 1 of the paper).

Every method in the study answers queries with the same greedy best-first
traversal: warm a fixed-capacity queue with seed nodes, repeatedly expand the
closest unexpanded node, score its neighbors in one vectorized batch, and
stop when the queue holds no unexpanded node closer than the current ``L``-th
best.  Methods differ only in the graph they traverse and the seeds they
start from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .distances import DistanceComputer
from .graph import Graph
from .heap import NeighborQueue

__all__ = [
    "PAD_ID",
    "SearchResult",
    "prepare_seeds",
    "pad_top_k",
    "masked_top_k",
    "normalize_exclude_masks",
    "beam_search",
    "pq_beam_search",
    "rerank_topk",
    "batch_point_beam_search",
    "greedy_search",
]

#: Sentinel id filling answer slots a mask emptied (paired with ``inf``
#: distance).  Masked searches always return exactly ``k`` slots; callers
#: recover the real answers with ``ids[ids >= 0]`` or
#: :attr:`SearchResult.n_valid`.
PAD_ID: int = -1


def prepare_seeds(seeds, n: int) -> np.ndarray:
    """Normalize a seed iterable: unique int64 ids, validated against ``[0, n)``.

    Every traversal entry point shares this: a negative or >= ``n`` seed
    would otherwise wrap (or overrun) through numpy fancy indexing and
    corrupt results silently instead of raising.
    """
    seeds = np.unique(np.asarray(list(seeds), dtype=np.int64))
    if seeds.size == 0:
        raise ValueError("at least one seed is required")
    if seeds[0] < 0 or seeds[-1] >= n:
        bad = seeds[(seeds < 0) | (seeds >= n)]
        raise ValueError(
            f"seed ids {bad.tolist()} are outside the graph's node range "
            f"[0, {n})"
        )
    return seeds


def pad_top_k(
    ids: np.ndarray, dists: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Truncate-or-pad an answer list to exactly ``k`` slots.

    Shortfall slots are filled with ``(PAD_ID, inf)`` so a caller zipping
    against ``k``-wide ground truth never mis-aligns; the valid prefix
    stays bit-identical to the unpadded answer.
    """
    ids = np.asarray(ids, dtype=np.int64)[:k]
    dists = np.asarray(dists, dtype=np.float64)[:k]
    if ids.size == k:
        return ids, dists
    out_ids = np.full(k, PAD_ID, dtype=np.int64)
    out_dists = np.full(k, np.inf)
    out_ids[: ids.size] = ids
    out_dists[: dists.size] = dists
    return out_ids, out_dists


def masked_top_k(
    queue: NeighborQueue, k: int, exclude_mask: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray]:
    """Extract the ``k`` best *non-excluded* entries of a finished beam.

    With no mask this is exactly ``queue.top_k(k)``.  With a mask, the
    whole beam is filtered before truncation, so an answer slot vacated by
    a tombstoned node is backfilled by the next-best live entry rather
    than silently shrinking the result.  When filtering (or a short beam)
    leaves fewer than ``k`` survivors, the shortfall is surfaced instead
    of silently returning a narrower answer: the result is padded to
    exactly ``k`` slots with ``(PAD_ID, inf)`` (see :func:`pad_top_k`), so
    every caller that assumes ``len(ids) == k`` — recall computation,
    ground-truth zipping, the filtered-search layer under selective
    predicates — stays aligned.  Shared by the scalar path and the
    vectorized kernel so the two stay identical by construction.
    """
    if exclude_mask is None:
        return queue.top_k(k)
    ids, dists = queue.entries()
    keep = ~exclude_mask[ids]
    return pad_top_k(ids[keep], dists[keep], k)


def normalize_exclude_masks(
    exclude_mask, n_queries: int, n_nodes: int
) -> list | None:
    """Normalize the ``exclude_mask`` argument of the batch search paths.

    Accepts ``None`` (no filtering), one shared 1-D bool mask of length
    ``n_nodes`` (the streaming tier's tombstones — every query filters the
    same nodes), or a sequence of ``n_queries`` per-query masks, each a
    1-D bool array of length ``n_nodes`` or ``None`` (the filtered-search
    tier's per-query predicates).  Returns ``None`` or a list with one
    entry per query; a shared mask is repeated by reference, not copied.
    """
    if exclude_mask is None:
        return None
    if isinstance(exclude_mask, np.ndarray) and exclude_mask.ndim == 1:
        if exclude_mask.shape[0] != n_nodes:
            raise ValueError(
                f"exclude_mask has {exclude_mask.shape[0]} entries, "
                f"expected {n_nodes} (one per graph node)"
            )
        return [exclude_mask] * n_queries
    masks = list(exclude_mask)
    if len(masks) != n_queries:
        raise ValueError(
            f"per-query exclude masks disagree with the batch: "
            f"{len(masks)} masks vs {n_queries} queries"
        )
    for mask in masks:
        if mask is not None and np.asarray(mask).shape != (n_nodes,):
            raise ValueError(
                f"per-query exclude mask has shape {np.asarray(mask).shape}, "
                f"expected ({n_nodes},)"
            )
    return masks


@dataclass
class SearchResult:
    """Outcome of one graph traversal.

    Attributes
    ----------
    ids, dists:
        The ``k`` best answers found, ascending by distance.
    distance_calls:
        Exact distance calculations attributable to this search.
    hops:
        Number of node expansions performed.
    approx_calls:
        PQ asymmetric-distance estimates computed (disk tier only; zero on
        the in-memory exact paths).
    page_reads:
        Logical disk rows fetched — graph adjacency rows expanded plus raw
        vector rows read at re-rank (disk tier only; zero in RAM mode).
    visited, visited_dists:
        Ids (and distances) of every node whose distance was evaluated, in
        evaluation order — builders that connect a new node to its visited
        list (NSG, Vamana) consume these without re-scoring.
    """

    ids: np.ndarray
    dists: np.ndarray
    distance_calls: int
    hops: int
    approx_calls: int = 0
    page_reads: int = 0
    visited: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    visited_dists: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64)
    )

    @property
    def n_valid(self) -> int:
        """Number of real answers in ``ids``.

        Masked searches pad to exactly ``k`` slots with :data:`PAD_ID`
        when filtering empties the beam; this counts the non-sentinel
        prefix so callers can detect the shortfall explicitly.
        """
        return int(np.count_nonzero(self.ids != PAD_ID))


def beam_search(
    graph: Graph,
    computer: DistanceComputer,
    query: np.ndarray,
    seeds,
    k: int,
    beam_width: int,
    visited_mask: np.ndarray | None = None,
    exclude_mask: np.ndarray | None = None,
) -> SearchResult:
    """Run Algorithm 1 and return the ``k`` best answers.

    Parameters
    ----------
    graph:
        Proximity graph to traverse.
    computer:
        Distance engine over the dataset the graph indexes.
    query:
        Query vector of the dataset's dimensionality.
    seeds:
        Iterable of node ids used to warm the queue; the closest becomes the
        entry node.
    k:
        Number of answers to return.
    beam_width:
        Queue capacity ``L`` (must be ``>= k``).
    visited_mask:
        Optional pre-allocated ``bool`` scratch array of length ``n``; it is
        cleared on entry.  Passing one avoids reallocation in tight loops.
    exclude_mask:
        Optional ``bool`` array of length ``n`` flagging tombstoned nodes
        (the streaming tier's deletes).  Flagged nodes are traversed —
        FreshDiskANN-style, they keep routing until a consolidation pass
        rewires around them — but never returned: the finished beam is
        filtered before the ``k`` truncation.  Traversal, and therefore
        ``distance_calls``/``hops``/``visited``, is identical with or
        without the mask.
    """
    if beam_width < k:
        raise ValueError(f"beam_width ({beam_width}) must be >= k ({k})")
    mark = computer.checkpoint()
    if visited_mask is None:
        visited_mask = np.zeros(graph.n, dtype=bool)
    else:
        visited_mask[:] = False

    seeds = prepare_seeds(seeds, graph.n)
    queue = NeighborQueue(beam_width)
    visit_order: list[np.ndarray] = []
    visit_dists: list[np.ndarray] = []
    q64, q_sq = computer.prepare_query(query)

    seed_dists = computer.to_query_prepared(seeds, q64, q_sq)
    visited_mask[seeds] = True
    visit_order.append(seeds)
    visit_dists.append(seed_dists)
    for dist, node in zip(seed_dists.tolist(), seeds.tolist()):
        queue.insert(dist, node)

    hops = 0
    while True:
        node = queue.pop_nearest_unexpanded()
        if node is None:
            break
        hops += 1
        nbrs = graph.neighbors(node)
        if nbrs.size:
            fresh = nbrs[~visited_mask[nbrs]]
            if fresh.size:
                visited_mask[fresh] = True
                visit_order.append(fresh)
                dists = computer.to_query_prepared(fresh, q64, q_sq)
                visit_dists.append(dists)
                bound = queue.worst_dist()
                for dist, nbr in zip(dists.tolist(), fresh.tolist()):
                    if dist < bound:
                        bound = queue.insert(dist, nbr)

    ids, dists = masked_top_k(queue, k, exclude_mask)
    visited = (
        np.concatenate(visit_order) if visit_order else np.empty(0, dtype=np.int64)
    )
    visited_d = (
        np.concatenate(visit_dists) if visit_dists else np.empty(0, dtype=np.float64)
    )
    return SearchResult(
        ids=ids,
        dists=dists,
        distance_calls=computer.since(mark),
        hops=hops,
        visited=visited,
        visited_dists=visited_d,
    )


def rerank_topk(
    computer, query: np.ndarray, beam_ids: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact re-rank of a final beam: one batched read of the raw vectors.

    Scores ``beam_ids`` with :meth:`PQDistanceComputer.rerank` (counted as
    exact calls and page reads) and returns the ``k`` best, ties at equal
    distance broken by ascending id — a total order, so the result is
    independent of the beam's incoming order.  Shared by the scalar
    reference path and the vectorized kernel so the two are identical by
    construction.
    """
    beam_ids = np.asarray(beam_ids, dtype=np.int64)
    exact = computer.rerank(beam_ids, query)
    order = np.lexsort((beam_ids, exact))[: min(k, beam_ids.size)]
    return beam_ids[order], exact[order]


def pq_beam_search(
    graph,
    computer,
    query: np.ndarray,
    seeds,
    k: int,
    beam_width: int,
    visited_mask: np.ndarray | None = None,
) -> SearchResult:
    """Two-phase disk-tier search: PQ-guided traversal + one exact re-rank.

    The scalar reference path of the beyond-RAM tier.  Algorithm 1 runs
    exactly as :func:`beam_search`, but every candidate is scored with the
    asymmetric-distance estimate from ``computer``'s resident PQ codes (one
    LUT built per query, then pure table gathers) — the memory-mapped files
    are touched only for graph adjacency rows during traversal and for one
    batched exact re-rank of the surviving beam at the end.

    ``computer`` is a :class:`~repro.core.distances.PQDistanceComputer`;
    the returned ``distance_calls`` counts only the exact re-rank, while
    ``approx_calls`` / ``page_reads`` carry the traversal cost.  All three
    are deterministic (and bit-identical to the vectorized
    :func:`~repro.core.kernels.batch_search_pq` path) at any worker count.
    """
    if beam_width < k:
        raise ValueError(f"beam_width ({beam_width}) must be >= k ({k})")
    mark = computer.checkpoint()
    if visited_mask is None:
        visited_mask = np.zeros(graph.n, dtype=bool)
    else:
        visited_mask[:] = False

    seeds = prepare_seeds(seeds, graph.n)
    queue = NeighborQueue(beam_width)
    lut = computer.build_lut(query)

    seed_dists = computer.lut_to_ids(lut, seeds)
    visited_mask[seeds] = True
    for dist, node in zip(seed_dists.tolist(), seeds.tolist()):
        queue.insert(dist, node)

    hops = 0
    while True:
        node = queue.pop_nearest_unexpanded()
        if node is None:
            break
        hops += 1
        nbrs = graph.neighbors(node)
        if nbrs.size:
            fresh = nbrs[~visited_mask[nbrs]]
            if fresh.size:
                visited_mask[fresh] = True
                dists = computer.lut_to_ids(lut, fresh)
                bound = queue.worst_dist()
                for dist, nbr in zip(dists.tolist(), fresh.tolist()):
                    if dist < bound:
                        bound = queue.insert(dist, nbr)

    computer.note_graph_reads(hops)
    beam_ids, _ = queue.top_k(beam_width)
    ids, dists = rerank_topk(computer, query, beam_ids, k)
    d_exact, d_approx, d_pages = computer.since(mark)
    return SearchResult(
        ids=ids,
        dists=dists,
        distance_calls=d_exact,
        hops=hops,
        approx_calls=d_approx,
        page_reads=d_pages,
    )


def batch_point_beam_search(
    graph,
    computer: DistanceComputer,
    points,
    seeds_per_point,
    k: int,
    beam_width: int,
    visited_mask: np.ndarray | None = None,
    exclude_mask: np.ndarray | None = None,
) -> list[SearchResult]:
    """Beam searches for a chunk of *dataset points*, sharing scratch state.

    The batched builder's kernel: every query is a dataset point given by id
    (``points``), so all point-to-frontier distances go through
    :meth:`DistanceComputer.one_to_many`, whose cached squared norms cover
    *both* sides — there is no per-query (let alone per-hop) query
    preparation.  One visited mask is allocated for the whole chunk, so a
    worker amortizes setup across every node it processes.

    ``graph`` may be a :class:`~repro.core.graph.Graph` or a
    :class:`~repro.core.graph.CSRGraph` — given identical edges in identical
    order, the traversal (and its distance accounting) is bit-identical,
    which is what lets the parallel builder mix in-process and worker-side
    execution freely.

    Returns one :class:`SearchResult` per point (``visited`` lists are not
    collected; builders that need them use :func:`beam_search`).

    ``exclude_mask`` carries the streaming tier's tombstones (one shared
    mask) or the filtered tier's per-point predicates (a sequence of
    masks, one per point — see :func:`normalize_exclude_masks`), with
    :func:`beam_search`'s semantics: flagged nodes route but are filtered
    from each point's answers, and traversal accounting is mask-invariant.
    """
    if beam_width < k:
        raise ValueError(f"beam_width ({beam_width}) must be >= k ({k})")
    if visited_mask is None or visited_mask.size != graph.n:
        visited_mask = np.zeros(graph.n, dtype=bool)
    points = list(points)
    masks = normalize_exclude_masks(exclude_mask, len(points), graph.n)
    results: list[SearchResult] = []
    for pt_idx, (point, seeds) in enumerate(zip(points, seeds_per_point)):
        mark = computer.checkpoint()
        visited_mask[:] = False
        # the same range validation beam_search performs: a negative seed
        # would wrap through fancy indexing and corrupt results silently
        seeds = prepare_seeds(seeds, graph.n)
        queue = NeighborQueue(beam_width)
        seed_dists = computer.one_to_many(point, seeds)
        visited_mask[seeds] = True
        for dist, node in zip(seed_dists.tolist(), seeds.tolist()):
            queue.insert(dist, node)
        hops = 0
        while True:
            node = queue.pop_nearest_unexpanded()
            if node is None:
                break
            hops += 1
            nbrs = graph.neighbors(node)
            if nbrs.size:
                fresh = nbrs[~visited_mask[nbrs]]
                if fresh.size:
                    visited_mask[fresh] = True
                    dists = computer.one_to_many(point, fresh)
                    bound = queue.worst_dist()
                    for dist, nbr in zip(dists.tolist(), fresh.tolist()):
                        if dist < bound:
                            bound = queue.insert(dist, nbr)
        ids, dists = masked_top_k(
            queue, k, None if masks is None else masks[pt_idx]
        )
        results.append(
            SearchResult(
                ids=ids,
                dists=dists,
                distance_calls=computer.since(mark),
                hops=hops,
            )
        )
    return results


def greedy_search(
    graph: Graph,
    computer: DistanceComputer,
    query: np.ndarray,
    entry: int,
) -> tuple[int, float, int]:
    """Greedy descent to a local minimum (beam width 1).

    Used by HNSW's upper layers: from ``entry``, repeatedly move to the
    closest neighbor strictly better than the current node.  Returns
    ``(node, distance, distance_calls)``.
    """
    mark = computer.checkpoint()
    current = int(entry)
    current_dist = computer.one_to_query(current, query)
    # prepare the query once; the hop loop only pays the GEMV
    q64, q_sq = computer.prepare_query(query)
    improved = True
    while improved:
        improved = False
        nbrs = graph.neighbors(current)
        if nbrs.size == 0:
            break
        dists = computer.to_query_prepared(nbrs, q64, q_sq)
        best = int(np.argmin(dists))
        if dists[best] < current_dist:
            current = int(nbrs[best])
            current_dist = float(dists[best])
            improved = True
    return current, current_dist, computer.since(mark)
