"""NNDescent — neighborhood propagation (Section 3.2, "NP").

Refines an initial k-NN graph approximation under the assumption that "a
neighbor of my neighbor is likely my neighbor": each iteration gathers, for
every node, its neighbors and its neighbors' neighbors, scores the pool in
one vectorized batch, and keeps the ``k`` closest.  This is the construction
used by KGraph and, seeded differently, by IEH and EFANNA; DPG, NSG, and SSG
all refine graphs produced this way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distances import DistanceComputer
from .graph import Graph

__all__ = ["NNDescentResult", "nn_descent", "random_knn_init", "knn_graph_to_graph"]


@dataclass
class NNDescentResult:
    """Outcome of an NNDescent run.

    Attributes
    ----------
    ids, dists:
        ``(n, k)`` arrays: the approximate k-NN list of every node, sorted
        ascending by distance.
    iterations:
        Number of refinement iterations actually executed.
    updates:
        Per-iteration count of neighbor-list entries that changed.
    """

    ids: np.ndarray
    dists: np.ndarray
    iterations: int
    updates: list[int]


def random_knn_init(
    computer: DistanceComputer, k: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Random initial neighbor lists: ``k`` distinct random ids per node."""
    n = computer.n
    if k >= n:
        raise ValueError(f"k ({k}) must be < n ({n})")
    ids = np.empty((n, k), dtype=np.int64)
    dists = np.empty((n, k), dtype=np.float64)
    for node in range(n):
        choices = rng.choice(n - 1, size=k, replace=False)
        choices[choices >= node] += 1  # skip self
        nbr_dists = computer.one_to_many(node, choices)
        order = np.argsort(nbr_dists, kind="stable")
        ids[node] = choices[order]
        dists[node] = nbr_dists[order]
    return ids, dists


def nn_descent(
    computer: DistanceComputer,
    k: int,
    rng: np.random.Generator,
    init_ids: np.ndarray | None = None,
    init_dists: np.ndarray | None = None,
    max_iterations: int = 8,
    sample_rate: float = 1.0,
    convergence_threshold: float = 0.001,
) -> NNDescentResult:
    """Refine a k-NN graph approximation by neighborhood propagation.

    Parameters
    ----------
    computer:
        Distance engine over the dataset.
    k:
        Neighbor list length to maintain.
    rng:
        Randomness source (initialization and neighbor sampling).
    init_ids, init_dists:
        Optional ``(n, >=1)`` starting neighbor lists (e.g., from the K-D
        trees of EFANNA or the hash tables of IEH).  When omitted, a random
        graph is used, which is the KGraph recipe.
    max_iterations:
        Upper bound on refinement sweeps.
    sample_rate:
        Fraction of each node's propagation pool scored per sweep (KGraph's
        ``rho``); ``1.0`` scores the full pool.
    convergence_threshold:
        Stop when fewer than ``threshold * n * k`` entries changed.
    """
    n = computer.n
    if init_ids is None or init_dists is None:
        ids, dists = random_knn_init(computer, k, rng)
    else:
        ids, dists = _pad_init(computer, init_ids, init_dists, k, rng)

    updates_log: list[int] = []
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        updates = 0
        for node in range(n):
            pool = ids[ids[node]].ravel()
            if sample_rate < 1.0 and pool.size:
                take = max(1, int(pool.size * sample_rate))
                pool = rng.choice(pool, size=take, replace=False)
            pool = np.unique(pool)
            pool = pool[(pool != node)]
            # drop candidates already in the list
            pool = np.setdiff1d(pool, ids[node], assume_unique=False)
            if pool.size == 0:
                continue
            cand_dists = computer.one_to_many(node, pool)
            merged_ids = np.concatenate([ids[node], pool])
            merged_dists = np.concatenate([dists[node], cand_dists])
            order = np.argsort(merged_dists, kind="stable")[:k]
            new_ids = merged_ids[order]
            updates += int((new_ids != ids[node]).sum())
            ids[node] = new_ids
            dists[node] = merged_dists[order]
        updates_log.append(updates)
        if updates < convergence_threshold * n * k:
            break
    return NNDescentResult(ids=ids, dists=dists, iterations=iterations, updates=updates_log)


def _pad_init(
    computer: DistanceComputer,
    init_ids: np.ndarray,
    init_dists: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Normalize externally provided neighbor lists to exactly ``k`` entries."""
    n = computer.n
    init_ids = np.asarray(init_ids, dtype=np.int64)
    init_dists = np.asarray(init_dists, dtype=np.float64)
    if init_ids.shape != init_dists.shape or init_ids.shape[0] != n:
        raise ValueError("init arrays must both be (n, m)")
    ids = np.empty((n, k), dtype=np.int64)
    dists = np.empty((n, k), dtype=np.float64)
    for node in range(n):
        row = init_ids[node]
        row_d = init_dists[node]
        keep = row != node
        row, row_d = row[keep], row_d[keep]
        uniq, first = np.unique(row, return_index=True)
        row, row_d = uniq, row_d[first]
        if row.size < k:
            extra = rng.choice(n - 1, size=k - row.size, replace=False)
            extra[extra >= node] += 1
            extra = np.setdiff1d(extra, row, assume_unique=False)
            if extra.size:
                extra_d = computer.one_to_many(node, extra)
                row = np.concatenate([row, extra])
                row_d = np.concatenate([row_d, extra_d])
        order = np.argsort(row_d, kind="stable")[:k]
        if order.size < k:  # pathological tiny n; repeat best
            order = np.resize(order, k)
        ids[node] = row[order]
        dists[node] = row_d[order]
    return ids, dists


def knn_graph_to_graph(ids: np.ndarray) -> Graph:
    """Wrap an ``(n, k)`` neighbor-id matrix as a :class:`Graph`."""
    graph = Graph(ids.shape[0])
    for node in range(ids.shape[0]):
        graph.set_neighbors(node, ids[node])
    return graph
