"""NNDescent — neighborhood propagation (Section 3.2, "NP").

Refines an initial k-NN graph approximation under the assumption that "a
neighbor of my neighbor is likely my neighbor": each iteration gathers, for
every node, its neighbors and its neighbors' neighbors, scores the pool, and
keeps the ``k`` closest.  This is the construction used by KGraph and, seeded
differently, by IEH and EFANNA; DPG, NSG, and SSG all refine graphs produced
this way.

**Iteration protocol.**  Every iteration reads a *frozen snapshot* of the
neighbor lists and writes a fresh one (Jacobi-style), rather than updating
lists in place mid-sweep (Gauss-Seidel).  The frozen snapshot is what makes a
whole iteration one batchable join — exactly the restructuring parallel
NN-descent implementations (ParlayANN, nndescent's own reference code) apply
— at the cost of propagating an update one iteration later than the in-place
sweep would.  Quality after convergence is equivalent; iteration counts may
differ slightly.

**Backends.**  The per-node reference loop (``scalar``) and the vectorized
whole-iteration path (``python``; ``numba`` currently aliases it) implement
the same protocol and are **bit-identical**: same neighbor lists, same
per-iteration update counts, same ``distance_calls``.  The vectorized path
replaces the per-node ``one_to_many`` calls with one segmented batched
distance call per node block and the per-node merges with masked row-wise
top-``k`` argsorts.  All randomness (init draws, pool sampling) is consumed
in ascending node order by both backends, so the streams coincide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distances import DistanceComputer
from .graph import Graph

__all__ = ["NNDescentResult", "nn_descent", "random_knn_init", "knn_graph_to_graph"]

#: Bound on pool entries materialized per vectorized node block.
_BLOCK_POOL_ENTRIES = 262_144


@dataclass
class NNDescentResult:
    """Outcome of an NNDescent run.

    Attributes
    ----------
    ids, dists:
        ``(n, k)`` arrays: the approximate k-NN list of every node, sorted
        ascending by distance.
    iterations:
        Number of refinement iterations actually executed.
    updates:
        Per-iteration count of neighbor-list entries that changed.
    """

    ids: np.ndarray
    dists: np.ndarray
    iterations: int
    updates: list[int]


def _resolve_build_backend(backend: str | None) -> str:
    from .kernels import resolve_backend

    resolved = resolve_backend(backend)
    # no jitted NN-descent merge yet: the numba selection runs the same
    # vectorized python path (bit-identical by contract, so this is purely
    # a speed decision)
    return "scalar" if resolved == "scalar" else "python"


def random_knn_init(
    computer: DistanceComputer,
    k: int,
    rng: np.random.Generator,
    backend: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Random initial neighbor lists: ``k`` distinct random ids per node.

    Both backends draw the same per-node choices in ascending node order;
    the vectorized path then scores all rows with one segmented distance
    call instead of ``n`` ``one_to_many`` round trips (bit-identical).
    """
    n = computer.n
    if k >= n:
        raise ValueError(f"k ({k}) must be < n ({n})")
    if _resolve_build_backend(backend) == "scalar":
        ids = np.empty((n, k), dtype=np.int64)
        dists = np.empty((n, k), dtype=np.float64)
        for node in range(n):
            choices = rng.choice(n - 1, size=k, replace=False)
            choices[choices >= node] += 1  # skip self
            nbr_dists = computer.one_to_many(node, choices)
            order = np.argsort(nbr_dists, kind="stable")
            ids[node] = choices[order]
            dists[node] = nbr_dists[order]
        return ids, dists
    choices = np.empty((n, k), dtype=np.int64)
    for node in range(n):
        row = rng.choice(n - 1, size=k, replace=False)
        row[row >= node] += 1  # skip self
        choices[node] = row
    starts = np.arange(n, dtype=np.int64) * k
    dists = computer.points_to_many_segmented(
        np.arange(n, dtype=np.int64), choices.ravel(), starts, starts + k
    ).reshape(n, k)
    order = np.argsort(dists, axis=1, kind="stable")
    return (
        np.take_along_axis(choices, order, axis=1),
        np.take_along_axis(dists, order, axis=1),
    )


def nn_descent(
    computer: DistanceComputer,
    k: int,
    rng: np.random.Generator,
    init_ids: np.ndarray | None = None,
    init_dists: np.ndarray | None = None,
    max_iterations: int = 8,
    sample_rate: float = 1.0,
    convergence_threshold: float = 0.001,
    backend: str | None = None,
) -> NNDescentResult:
    """Refine a k-NN graph approximation by neighborhood propagation.

    Parameters
    ----------
    computer:
        Distance engine over the dataset.
    k:
        Neighbor list length to maintain.
    rng:
        Randomness source (initialization and neighbor sampling).
    init_ids, init_dists:
        Optional ``(n, >=1)`` starting neighbor lists (e.g., from the K-D
        trees of EFANNA or the hash tables of IEH).  When omitted, a random
        graph is used, which is the KGraph recipe.
    max_iterations:
        Upper bound on refinement iterations.
    sample_rate:
        Fraction of each node's propagation pool scored per iteration
        (KGraph's ``rho``); ``1.0`` scores the full pool.
    convergence_threshold:
        Stop when fewer than ``threshold * n * k`` entries changed.
    backend:
        Construction-kernel backend (``None`` = ``$REPRO_KERNEL`` =
        ``auto``).  ``scalar`` runs the per-node reference loop; the
        vectorized path is bit-identical per the module contract.
    """
    n = computer.n
    resolved = _resolve_build_backend(backend)
    if init_ids is None or init_dists is None:
        ids, dists = random_knn_init(computer, k, rng, backend=resolved)
    else:
        ids, dists = _pad_init(computer, init_ids, init_dists, k, rng)

    step = _iterate_scalar if resolved == "scalar" else _iterate_vectorized
    updates_log: list[int] = []
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        ids, dists, updates = step(computer, ids, dists, k, rng, sample_rate)
        updates_log.append(updates)
        if updates < convergence_threshold * n * k:
            break
    return NNDescentResult(ids=ids, dists=dists, iterations=iterations, updates=updates_log)


def _iterate_scalar(
    computer: DistanceComputer,
    prev_ids: np.ndarray,
    prev_dists: np.ndarray,
    k: int,
    rng: np.random.Generator,
    sample_rate: float,
) -> tuple[np.ndarray, np.ndarray, int]:
    """One Jacobi iteration, per-node reference loop."""
    n = computer.n
    ids = np.empty_like(prev_ids)
    dists = np.empty_like(prev_dists)
    updates = 0
    for node in range(n):
        pool = prev_ids[prev_ids[node]].ravel()
        if sample_rate < 1.0 and pool.size:
            take = max(1, int(pool.size * sample_rate))
            pool = rng.choice(pool, size=take, replace=False)
        pool = np.unique(pool)
        pool = pool[(pool != node)]
        # drop candidates already in the list
        pool = np.setdiff1d(pool, prev_ids[node], assume_unique=False)
        if pool.size == 0:
            ids[node] = prev_ids[node]
            dists[node] = prev_dists[node]
            continue
        cand_dists = computer.one_to_many(node, pool)
        merged_ids = np.concatenate([prev_ids[node], pool])
        merged_dists = np.concatenate([prev_dists[node], cand_dists])
        order = np.argsort(merged_dists, kind="stable")[:k]
        new_ids = merged_ids[order]
        updates += int((new_ids != prev_ids[node]).sum())
        ids[node] = new_ids
        dists[node] = merged_dists[order]
    return ids, dists, updates


def _iterate_vectorized(
    computer: DistanceComputer,
    prev_ids: np.ndarray,
    prev_dists: np.ndarray,
    k: int,
    rng: np.random.Generator,
    sample_rate: float,
) -> tuple[np.ndarray, np.ndarray, int]:
    """One Jacobi iteration as a whole-iteration batched join.

    Per node block: gather the two-hop pool, sort rows and mask duplicates /
    self / entries already in the list (one searchsorted against the node's
    own sorted list via per-row offsets), score every surviving candidate in
    ONE segmented distance call, and merge with an inf-padded stable row
    argsort — each step reproducing the scalar loop's ``np.unique`` /
    ``setdiff1d`` / ``one_to_many`` / stable-merge semantics bit-for-bit.
    """
    n = computer.n
    ids = np.empty_like(prev_ids)
    dists = np.empty_like(prev_dists)
    prev_sorted = np.sort(prev_ids, axis=1)
    pool_width = k * k
    if sample_rate < 1.0 and pool_width:
        pool_width = max(1, int(pool_width * sample_rate))
    block = max(1, _BLOCK_POOL_ENTRIES // max(1, pool_width))
    updates = 0
    for b0 in range(0, n, block):
        b1 = min(b0 + block, n)
        nodes = np.arange(b0, b1, dtype=np.int64)
        pool = prev_ids[prev_ids[b0:b1]].reshape(b1 - b0, k * k)
        if sample_rate < 1.0 and pool.shape[1]:
            take = max(1, int(pool.shape[1] * sample_rate))
            sampled = np.empty((b1 - b0, take), dtype=np.int64)
            # per-node draws in ascending node order: the rng stream matches
            # the scalar reference exactly
            for row in range(b1 - b0):
                sampled[row] = rng.choice(pool[row], size=take, replace=False)
            pool = sampled
        sp = np.sort(pool, axis=1)
        keep = np.ones(sp.shape, dtype=bool)
        keep[:, 1:] = sp[:, 1:] != sp[:, :-1]
        keep &= sp != nodes[:, None]
        # membership against the node's own (sorted) list: offset every row
        # into a disjoint value range so one flat searchsorted covers all rows
        base = nodes - b0
        offs = (base * np.int64(n + 1))[:, None]
        hay = (prev_sorted[b0:b1] + offs).ravel()
        needles = (sp + offs).ravel()
        pos = np.searchsorted(hay, needles)
        member = np.zeros(needles.size, dtype=bool)
        in_range = pos < hay.size
        member[in_range] = hay[pos[in_range]] == needles[in_range]
        keep &= ~member.reshape(sp.shape)

        lens = keep.sum(axis=1).astype(np.int64)
        flat_ids = sp[keep]
        seg_stops = np.cumsum(lens)
        seg_starts = seg_stops - lens
        cand_flat = computer.points_to_many_segmented(
            nodes, flat_ids, seg_starts, seg_stops
        )

        l_max = int(lens.max()) if lens.size else 0
        if l_max == 0:
            ids[b0:b1] = prev_ids[b0:b1]
            dists[b0:b1] = prev_dists[b0:b1]
            continue
        width = k + l_max
        md = np.full((b1 - b0, width), np.inf, dtype=np.float64)
        mi = np.full((b1 - b0, width), -1, dtype=np.int64)
        md[:, :k] = prev_dists[b0:b1]
        mi[:, :k] = prev_ids[b0:b1]
        colmask = np.arange(l_max) < lens[:, None]
        md[:, k:][colmask] = cand_flat
        mi[:, k:][colmask] = flat_ids
        # stable argsort over the inf-padded rows: pads sort last and
        # stability preserves the concat order among ties, so the first k
        # columns equal the scalar per-node merge exactly
        order = np.argsort(md, axis=1, kind="stable")[:, :k]
        new_ids = np.take_along_axis(mi, order, axis=1)
        ids[b0:b1] = new_ids
        dists[b0:b1] = np.take_along_axis(md, order, axis=1)
        updates += int((new_ids != prev_ids[b0:b1]).sum())
    return ids, dists, updates


def _pad_init(
    computer: DistanceComputer,
    init_ids: np.ndarray,
    init_dists: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Normalize externally provided neighbor lists to exactly ``k`` entries.

    Short rows are topped up with random distinct ids.  When the first draw
    collides with existing entries, the shortfall is re-drawn from the
    remaining id space — never duplicated into the row (the old ``np.resize``
    fallback silently repeated neighbor ids).  ``k >= n`` is impossible to
    satisfy with distinct non-self ids and raises.
    """
    n = computer.n
    init_ids = np.asarray(init_ids, dtype=np.int64)
    init_dists = np.asarray(init_dists, dtype=np.float64)
    if init_ids.shape != init_dists.shape or init_ids.shape[0] != n:
        raise ValueError("init arrays must both be (n, m)")
    if k >= n:
        raise ValueError(f"k ({k}) must be < n ({n}) to fill distinct neighbor lists")
    ids = np.empty((n, k), dtype=np.int64)
    dists = np.empty((n, k), dtype=np.float64)
    for node in range(n):
        row = init_ids[node]
        row_d = init_dists[node]
        keep = row != node
        row, row_d = row[keep], row_d[keep]
        uniq, first = np.unique(row, return_index=True)
        row, row_d = uniq, row_d[first]
        if row.size < k:
            extra = rng.choice(n - 1, size=k - row.size, replace=False)
            extra[extra >= node] += 1
            extra = np.setdiff1d(extra, row, assume_unique=False)
            shortfall = k - row.size - extra.size
            if shortfall > 0:
                # the draw collided with existing entries: top up from the
                # ids not yet in play (always enough of them since k < n)
                mask = np.ones(n, dtype=bool)
                mask[node] = False
                mask[row] = False
                mask[extra] = False
                top_up = rng.choice(
                    np.flatnonzero(mask), size=shortfall, replace=False
                )
                extra = np.concatenate([extra, top_up])
            extra_d = computer.one_to_many(node, extra)
            row = np.concatenate([row, extra])
            row_d = np.concatenate([row_d, extra_d])
        order = np.argsort(row_d, kind="stable")[:k]
        ids[node] = row[order]
        dists[node] = row_d[order]
    return ids, dists


def knn_graph_to_graph(ids: np.ndarray) -> Graph:
    """Wrap an ``(n, k)`` neighbor-id matrix as a :class:`Graph` (bulk path)."""
    return Graph.from_neighbor_matrix(ids)
