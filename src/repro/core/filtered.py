"""Filtered vector search: predicate-constrained k-NN over the same graphs.

The paper's twelve methods are evaluated on unfiltered workloads, but real
serving traffic increasingly carries attribute predicates alongside the
query vector.  RWalks (Echihabi et al.) and ACORN show that *filtered*
search over the same proximity graphs is a scenario family of its own,
whose recall/QPS trade-offs are governed by filter **specificity** — the
fraction of points that satisfy the predicate.  This module layers that
scenario over any built :class:`~repro.indexes.base.BaseGraphIndex`
without touching the index itself, with three strategies behind one API:

``inline``
    The tombstone machinery generalized: traverse the unmodified graph
    exactly as the unfiltered search would (hops and distance calls are
    predicate-invariant), but filter the finished beam through the query's
    allow-mask, padding to ``k`` with ``(PAD_ID, inf)`` on shortfall.
    Cheap and exact at permissive specificities; at selective predicates
    the beam drains and recall drops — that cliff is the phenomenon the
    benchmark sweeps.
``acorn``
    ACORN-style multi-hop expansion: only passing nodes enter the beam or
    are scored, while filtered-out nodes still *route* — each expansion
    gathers neighbors through up to ``expansion`` consecutive failing
    nodes, so selective predicates don't strand the traversal on an
    island of failing neighbors.
``rwalks``
    RWalks-style offline edge augmentation: attribute-diffusing random
    walks add same-label shortcut edges on top of the existing graph (the
    index is untouched; augmentation is a pure function of graph bytes,
    labels, and seed), then the inline strategy runs over the augmented
    graph.

Determinism: every strategy draws its per-query randomness through the
wrapped index's ``seed_query_rng`` protocol and measures distance calls as
counter deltas, so answers, distance counts, and hop counts are
bit-identical across kernel backends and worker counts — the same
guarantee the unfiltered batch engine makes, pinned by the filtered
benchmark's assertions.
"""

from __future__ import annotations

import numpy as np

from .beam_search import SearchResult, beam_search, pad_top_k, prepare_seeds
from .graph import CSRGraph, Graph
from .heap import NeighborQueue

__all__ = [
    "FILTER_STRATEGIES",
    "FilteredIndex",
    "acorn_beam_search",
    "rwalks_augment",
]

#: Strategy names accepted by :class:`FilteredIndex`.
FILTER_STRATEGIES = ("inline", "acorn", "rwalks")


# ----------------------------------------------------------------------
# ACORN-style traversal (scalar; the only implementation, so every
# backend/worker configuration runs exactly this code)
# ----------------------------------------------------------------------
def _expand_through_failing(graph, allow_mask, visited_mask, frontier, depth):
    """Gather passing nodes reachable through ``depth`` failing layers.

    ``frontier`` holds filtered-out nodes already marked visited; each
    layer gathers their unvisited neighbors, harvests the passing ones,
    and keeps routing through the failing ones.  Failing nodes are marked
    visited but never scored, so distance accounting stays a pure function
    of the passing set.  Frontiers are sorted-unique at every layer, so
    the result is independent of gather order.
    """
    found = []
    for _ in range(depth):
        if not frontier.size:
            break
        nexts = [graph.neighbors(int(node)) for node in frontier]
        nbrs = np.unique(np.concatenate(nexts)) if nexts else frontier[:0]
        fresh = nbrs[~visited_mask[nbrs]]
        if not fresh.size:
            break
        visited_mask[fresh] = True
        passing = fresh[allow_mask[fresh]]
        if passing.size:
            found.append(passing)
        frontier = fresh[~allow_mask[fresh]]
    if not found:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(found)


def acorn_beam_search(
    graph,
    computer,
    query: np.ndarray,
    seeds,
    k: int,
    beam_width: int,
    allow_mask: np.ndarray,
    expansion: int = 2,
    visited_mask: np.ndarray | None = None,
) -> SearchResult:
    """Algorithm 1 with ACORN-style expansion through filtered-out nodes.

    The beam holds only nodes satisfying ``allow_mask``; every expansion
    gathers the popped node's neighbors and, instead of discarding failing
    ones, routes through up to ``expansion`` consecutive failing layers to
    reach passing nodes behind them (``expansion=1`` is the ACORN-1
    two-hop analog).  Failing nodes are marked visited and never scored:
    ``distance_calls`` counts passing nodes only, each exactly once.

    Seeds failing the predicate are used as routing starts; if no passing
    node is reachable within ``expansion`` hops of the seeds, the failing
    frontier keeps widening until one is found or the component is
    exhausted — a selective predicate cannot strand the search at the
    seed.  Answers are padded to ``k`` with ``(PAD_ID, inf)`` when fewer
    passing nodes exist.
    """
    if beam_width < k:
        raise ValueError(f"beam_width ({beam_width}) must be >= k ({k})")
    if expansion < 1:
        raise ValueError("expansion must be >= 1")
    mark = computer.checkpoint()
    if visited_mask is None or visited_mask.size != graph.n:
        visited_mask = np.zeros(graph.n, dtype=bool)
    else:
        visited_mask[:] = False

    seeds = prepare_seeds(seeds, graph.n)
    visited_mask[seeds] = True
    passing = seeds[allow_mask[seeds]]
    failing = seeds[~allow_mask[seeds]]
    if failing.size:
        more = _expand_through_failing(
            graph, allow_mask, visited_mask, failing, expansion
        )
        passing = np.unique(np.concatenate([passing, more]))
    # a fully-failing neighborhood keeps widening until something passes
    while not passing.size and failing.size:
        nexts = [graph.neighbors(int(node)) for node in failing]
        nbrs = np.unique(np.concatenate(nexts)) if nexts else failing[:0]
        fresh = nbrs[~visited_mask[nbrs]]
        if not fresh.size:
            break
        visited_mask[fresh] = True
        passing = fresh[allow_mask[fresh]]
        failing = fresh[~allow_mask[fresh]]

    queue = NeighborQueue(beam_width)
    q64, q_sq = computer.prepare_query(query)
    if passing.size:
        dists = computer.to_query_prepared(passing, q64, q_sq)
        for dist, node in zip(dists.tolist(), passing.tolist()):
            queue.insert(dist, node)

    hops = 0
    while True:
        node = queue.pop_nearest_unexpanded()
        if node is None:
            break
        hops += 1
        nbrs = graph.neighbors(node)
        if not nbrs.size:
            continue
        fresh = nbrs[~visited_mask[nbrs]]
        if not fresh.size:
            continue
        visited_mask[fresh] = True
        cand = fresh[allow_mask[fresh]]
        blocked = fresh[~allow_mask[fresh]]
        if blocked.size:
            more = _expand_through_failing(
                graph, allow_mask, visited_mask, blocked, expansion
            )
            if more.size:
                cand = np.unique(np.concatenate([cand, more]))
        if not cand.size:
            continue
        dists = computer.to_query_prepared(cand, q64, q_sq)
        bound = queue.worst_dist()
        for dist, nbr in zip(dists.tolist(), cand.tolist()):
            if dist < bound:
                bound = queue.insert(dist, nbr)

    raw_ids, raw_dists = queue.top_k(k)
    ids, dists = pad_top_k(raw_ids, raw_dists, k)
    return SearchResult(
        ids=ids,
        dists=dists,
        distance_calls=computer.since(mark),
        hops=hops,
    )


# ----------------------------------------------------------------------
# RWalks-style offline edge augmentation
# ----------------------------------------------------------------------
def rwalks_augment(
    graph,
    labels: np.ndarray,
    n_walks: int = 8,
    walk_len: int = 4,
    extra_degree: int = 4,
    seed: int = 0,
) -> Graph:
    """Attribute-aware edge augmentation via random walks (RWalks-style).

    For every node, ``n_walks`` uniform random walks of ``walk_len`` steps
    diffuse over the base graph; visited nodes carrying the *same label*
    as the walk's origin become shortcut candidates, ranked by visit count
    (ties by ascending id), and the top ``extra_degree`` not already
    adjacent are appended to the node's out-list.  Same-label regions that
    the base graph connects only through other labels thus gain direct
    edges, which is what keeps selective categorical filters from
    stranding an inline traversal.

    Pure function of ``(graph bytes, labels, seed)``: each node's walks
    draw from ``default_rng((seed, node))``, so the augmented graph is
    bit-identical across processes and platforms and independent of node
    processing order.  The input graph is not modified.
    """
    if n_walks < 1 or walk_len < 1:
        raise ValueError("n_walks and walk_len must be >= 1")
    if extra_degree < 0:
        raise ValueError("extra_degree must be >= 0")
    labels = np.asarray(labels)
    n = graph.n
    if labels.shape != (n,):
        raise ValueError(f"labels must have shape ({n},), got {labels.shape}")
    out = graph.copy() if isinstance(graph, Graph) else _csr_to_graph(graph)
    if extra_degree == 0:
        return out
    for node in range(n):
        rng = np.random.default_rng((seed, node))
        touched: list[int] = []
        for _ in range(n_walks):
            cur = node
            for _ in range(walk_len):
                nbrs = graph.neighbors(cur)
                if not nbrs.size:
                    break
                cur = int(nbrs[rng.integers(nbrs.size)])
                touched.append(cur)
        if not touched:
            continue
        visits = np.asarray(touched, dtype=np.int64)
        cand, counts = np.unique(visits, return_counts=True)
        same = (labels[cand] == labels[node]) & (cand != node)
        cand, counts = cand[same], counts[same]
        if not cand.size:
            continue
        existing = out.neighbors(node)
        fresh = ~np.isin(cand, existing)
        cand, counts = cand[fresh], counts[fresh]
        if not cand.size:
            continue
        # most-visited first, ties by ascending id — a total order
        order = np.lexsort((cand, -counts))[:extra_degree]
        out.set_neighbors(node, np.concatenate([existing, cand[order]]))
    return out


def _csr_to_graph(csr) -> Graph:
    """Materialize a mutable adjacency-list copy of a CSR graph."""
    out = Graph(csr.n)
    for node in range(csr.n):
        out.set_neighbors(node, csr.neighbors(node))
    return out


# ----------------------------------------------------------------------
# the index-agnostic wrapper
# ----------------------------------------------------------------------
class FilteredIndex:
    """Predicate-filtered search over a built graph index.

    Wraps a built :class:`~repro.indexes.base.BaseGraphIndex` together
    with the workload's attributes and per-query predicates, and exposes
    the batch-engine surface (``search`` / ``search_batch`` /
    ``seed_query_rng`` / ``shared_query_state`` /
    ``attach_shared_query_state``), so the existing parallel engine,
    :func:`~repro.eval.runner.run_workload`, and the beam-width sweep all
    run filtered workloads unchanged.

    ``predicates[i]`` applies to workload query ``i`` — the same global
    query index the engine passes to :meth:`seed_query_rng`, which is how
    the scalar per-query path (whose ``search`` never sees an index)
    selects the right filter at any worker count.
    """

    name = "filtered"

    def __init__(
        self,
        inner,
        attrs,
        predicates,
        strategy: str = "inline",
        expansion: int = 2,
        rwalks_walks: int = 8,
        rwalks_len: int = 4,
        rwalks_extra_degree: int = 4,
    ):
        if strategy not in FILTER_STRATEGIES:
            raise ValueError(
                f"unknown filter strategy {strategy!r}; "
                f"choose from {FILTER_STRATEGIES}"
            )
        if inner.computer is None or inner.graph is None:
            raise RuntimeError("wrap a *built* graph index")
        if attrs.n != inner.computer.n:
            raise ValueError(
                f"attributes cover {attrs.n} points but the index holds "
                f"{inner.computer.n}"
            )
        self.inner = inner
        self.attrs = attrs
        self.predicates = list(predicates)
        self.strategy = strategy
        self.expansion = expansion
        self._current_query = 0
        self._visited_scratch: np.ndarray | None = None
        # one exclude row per workload query: True = fails the predicate
        self._exclude = np.stack(
            [~p.mask(attrs) for p in self.predicates]
        ) if self.predicates else np.zeros((0, attrs.n), dtype=bool)
        self._aug_csr: CSRGraph | None = None
        if strategy == "rwalks":
            augmented = rwalks_augment(
                inner.graph,
                attrs.labels,
                n_walks=rwalks_walks,
                walk_len=rwalks_len,
                extra_degree=rwalks_extra_degree,
                seed=inner.seed,
            )
            self._aug_csr = CSRGraph.from_graph(augmented)

    # -- batch-engine protocol -----------------------------------------
    @property
    def seed(self) -> int:
        return self.inner.seed

    @property
    def computer(self):
        return self.inner.computer

    def seed_query_rng(self, query_index: int) -> None:
        """Forward to the wrapped index, remembering which query is next.

        The remembered index selects the query's predicate in
        :meth:`search`, keyed to the same global workload position the
        engine keys randomness to — so predicate selection is exactly as
        worker-count-invariant as seed selection.
        """
        self._current_query = int(query_index) % max(len(self.predicates), 1)
        self.inner.seed_query_rng(query_index)

    def shared_query_state(self) -> dict[str, np.ndarray]:
        state = dict(self.inner.shared_query_state())
        state["filter_exclude"] = self._exclude
        if self._aug_csr is not None:
            state["aug_indptr"] = self._aug_csr.indptr
            state["aug_indices"] = self._aug_csr.indices
        return state

    def attach_shared_query_state(self, arrays: dict[str, np.ndarray]) -> None:
        self.inner.attach_shared_query_state(arrays)
        self._exclude = arrays["filter_exclude"]
        if "aug_indptr" in arrays:
            self._aug_csr = CSRGraph(
                arrays["aug_indptr"], arrays["aug_indices"], validate=False
            )
        self._visited_scratch = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_exclude"] = None
        state["_aug_csr"] = None
        state["_visited_scratch"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- traversal -----------------------------------------------------
    def _graph(self):
        """The graph this strategy traverses (augmented for rwalks)."""
        if self.strategy == "rwalks":
            return self._aug_csr
        return self.inner.graph

    def _scratch(self, n: int) -> np.ndarray:
        if self._visited_scratch is None or self._visited_scratch.size != n:
            self._visited_scratch = np.zeros(n, dtype=bool)
        return self._visited_scratch

    def search(
        self, query: np.ndarray, k: int = 10, beam_width: int | None = None
    ) -> SearchResult:
        """Answer the current query under its predicate.

        Call :meth:`seed_query_rng` first (the batch engine always does);
        it selects both the per-query randomness and the predicate.
        """
        exclude = self._exclude[self._current_query]
        if self.strategy == "inline":
            return self.inner.search(
                query, k=k, beam_width=beam_width, exclude_mask=exclude
            )
        computer = self.inner.computer
        width = max(beam_width or max(self.inner.default_beam_width, k), k)
        graph = self._graph()
        mark = computer.checkpoint()
        seeds = self.inner._query_seeds(query)
        if self.strategy == "acorn":
            result = acorn_beam_search(
                graph, computer, query, seeds, k, width,
                allow_mask=~exclude, expansion=self.expansion,
                visited_mask=self._scratch(graph.n),
            )
        else:  # rwalks: inline filtering over the augmented graph
            result = beam_search(
                graph, computer, query, seeds, k=k, beam_width=width,
                visited_mask=self._scratch(graph.n), exclude_mask=exclude,
            )
        result.distance_calls = computer.since(mark)
        return result

    def search_batch(
        self,
        queries: np.ndarray,
        k: int = 10,
        beam_width: int | None = None,
        query_indices=None,
        kernel: str | None = None,
    ) -> list[SearchResult]:
        """Batched filtered search, bit-identical to per-query :meth:`search`.

        ``inline`` and ``rwalks`` route through the vectorized multi-query
        kernel with per-query exclude masks (``scalar`` falls back to the
        reference loop); ``acorn`` has a single scalar implementation, so
        every backend runs identical code.
        """
        from .kernels import batch_search, resolve_backend

        queries = np.atleast_2d(np.asarray(queries))
        n_queries = queries.shape[0]
        indices = (
            np.arange(n_queries, dtype=np.int64)
            if query_indices is None
            else np.asarray(query_indices, dtype=np.int64)
        )
        backend = resolve_backend(kernel)
        if self.strategy == "acorn" or backend == "scalar":
            results = []
            for j in range(n_queries):
                self.seed_query_rng(int(indices[j]))
                results.append(self.search(queries[j], k=k, beam_width=beam_width))
            return results

        computer = self.inner.computer
        width = max(beam_width or max(self.inner.default_beam_width, k), k)
        graph = (
            self._aug_csr if self.strategy == "rwalks"
            else self.inner._kernel_graph()
        )
        seeds_per_query = []
        seed_calls = []
        for j in range(n_queries):
            self.seed_query_rng(int(indices[j]))
            mark = computer.checkpoint()
            seeds_per_query.append(self.inner._query_seeds(queries[j]))
            seed_calls.append(computer.since(mark))
        masks = [
            self._exclude[int(i) % max(len(self.predicates), 1)]
            for i in indices
        ]
        results = batch_search(
            graph, computer, queries, seeds_per_query,
            k=k, beam_width=width, backend=backend, exclude_mask=masks,
        )
        for result, calls in zip(results, seed_calls):
            result.distance_calls += calls
        return results

    def memory_bytes(self) -> int:
        """Wrapped index bytes plus the filter layer's own structures."""
        extra = self._exclude.nbytes if self._exclude is not None else 0
        if self._aug_csr is not None:
            extra += self._aug_csr.memory_bytes()
        return self.inner.memory_bytes() + extra
