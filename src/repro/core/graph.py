"""Adjacency-list proximity graph.

All twelve reproduced methods ultimately produce a directed proximity graph
over dataset node ids.  :class:`Graph` is that shared structure: a list of
int64 neighbor arrays, plus the handful of whole-graph operations the
builders need (reverse edges, connectivity checks, DFS-tree repair,
CSR flattening for the "optimized" Figure-17 variants).
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["Graph"]


class Graph:
    """A directed graph over node ids ``0..n-1`` with int64 adjacency lists."""

    __slots__ = ("n", "_adj")

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be non-negative")
        self.n = n
        self._adj: list[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(n)
        ]

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> np.ndarray:
        """Out-neighbors of ``node`` (do not mutate the returned array)."""
        return self._adj[node]

    def set_neighbors(self, node: int, neighbors) -> None:
        """Replace the out-neighbor list of ``node`` (deduplicated)."""
        arr = np.asarray(neighbors, dtype=np.int64).ravel()
        if arr.size:
            arr = arr[arr != node]
            _, first = np.unique(arr, return_index=True)
            arr = arr[np.sort(first)]
        self._adj[node] = arr

    def add_edge(self, src: int, dst: int) -> None:
        """Append the directed edge ``src -> dst`` if not already present."""
        if src == dst:
            return
        adj = self._adj[src]
        if dst in adj:
            return
        self._adj[src] = np.append(adj, np.int64(dst))

    def degree(self, node: int) -> int:
        """Out-degree of ``node``."""
        return int(self._adj[node].size)

    def num_edges(self) -> int:
        """Total number of directed edges."""
        return int(sum(a.size for a in self._adj))

    def degrees(self) -> np.ndarray:
        """Out-degree of every node."""
        return np.asarray([a.size for a in self._adj], dtype=np.int64)

    # ------------------------------------------------------------------
    # whole-graph operations
    # ------------------------------------------------------------------
    def reverse_edges(self) -> list[list[int]]:
        """In-neighbor lists (reverse adjacency) of every node."""
        rev: list[list[int]] = [[] for _ in range(self.n)]
        for src in range(self.n):
            for dst in self._adj[src]:
                rev[int(dst)].append(src)
        return rev

    def make_undirected(self) -> None:
        """Add the reverse of every edge (DPG's undirected closure)."""
        rev = self.reverse_edges()
        for node in range(self.n):
            if rev[node]:
                merged = np.concatenate([self._adj[node], np.asarray(rev[node])])
                self.set_neighbors(node, merged)

    def reachable_from(self, root: int) -> np.ndarray:
        """Boolean mask of nodes reachable from ``root`` (BFS)."""
        seen = np.zeros(self.n, dtype=bool)
        if self.n == 0:
            return seen
        seen[root] = True
        queue: deque[int] = deque([root])
        while queue:
            node = queue.popleft()
            for nbr in self._adj[node]:
                nbr = int(nbr)
                if not seen[nbr]:
                    seen[nbr] = True
                    queue.append(nbr)
        return seen

    def is_connected_from(self, root: int) -> bool:
        """Whether every node is reachable from ``root``."""
        return bool(self.reachable_from(root).all())

    def to_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Flatten to CSR ``(indptr, indices)`` int32/int64 arrays.

        This is the contiguous layout used by the Figure-17 "optimized"
        variants: one allocation, no per-node Python objects.
        """
        degrees = self.degrees()
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int32)
        for node in range(self.n):
            indices[indptr[node] : indptr[node + 1]] = self._adj[node]
        return indptr, indices

    @classmethod
    def from_neighbor_lists(cls, lists) -> "Graph":
        """Build a graph from an iterable of per-node neighbor iterables."""
        lists = list(lists)
        graph = cls(len(lists))
        for node, nbrs in enumerate(lists):
            graph.set_neighbors(node, np.asarray(list(nbrs), dtype=np.int64))
        return graph

    def memory_bytes(self) -> int:
        """Bytes held by all adjacency arrays."""
        return int(sum(a.nbytes for a in self._adj))

    def copy(self) -> "Graph":
        """Deep copy of the graph."""
        out = Graph(self.n)
        out._adj = [a.copy() for a in self._adj]
        return out
