"""Adjacency-list proximity graph.

All twelve reproduced methods ultimately produce a directed proximity graph
over dataset node ids.  :class:`Graph` is that shared structure: a list of
int64 neighbor arrays, plus the handful of whole-graph operations the
builders need (reverse edges, connectivity checks, DFS-tree repair,
CSR flattening for the "optimized" Figure-17 variants).
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["Graph", "CSRGraph", "madvise_random", "validate_csr"]

_INT32_MAX = np.iinfo(np.int32).max


def madvise_random(array: np.ndarray) -> bool:
    """Advise the kernel that ``array``'s backing mmap is accessed randomly.

    Graph traversal is pointer-chasing: each hop touches one adjacency row
    (and each re-rank a handful of vector rows) scattered across the file.
    Without ``MADV_RANDOM`` the kernel's readahead pages in multi-megabyte
    windows around every fault, quietly making the "memory-mapped" tier
    resident after a few dozen queries.  Walks ``.base`` because read-only
    views (``_frozen``) hide the underlying :class:`numpy.memmap`.  No-op
    (returns False) for in-memory arrays or platforms without ``madvise``.
    """
    import mmap as mmap_module

    if not hasattr(mmap_module, "MADV_RANDOM"):
        return False
    backing = array
    while backing is not None and not hasattr(backing, "_mmap"):
        backing = getattr(backing, "base", None)
    if backing is None:
        return False
    try:
        backing._mmap.madvise(mmap_module.MADV_RANDOM)
    except (AttributeError, OSError, ValueError):
        return False
    return True


def _frozen(array: np.ndarray) -> np.ndarray:
    """A read-only view of ``array`` (the caller's array keeps its flags).

    Adjacency storage hands out views of internal arrays; freezing them at
    the point they enter the graph turns silent corruption-by-caller into an
    immediate ``ValueError: assignment destination is read-only``.
    """
    view = array.view()
    view.flags.writeable = False
    return view


#: Shared immutable empty adjacency row (safe to alias across nodes).
_EMPTY_ROW = _frozen(np.empty(0, dtype=np.int64))


def validate_csr(indptr: np.ndarray, indices: np.ndarray, n: int) -> None:
    """Check that ``(indptr, indices)`` is a well-formed CSR graph over ``n`` nodes.

    Raises ``ValueError`` naming the first violated invariant: ``indptr`` must
    have ``n + 1`` entries, start at 0, be monotonically non-decreasing, and
    end at ``len(indices)``; every index must lie in ``[0, n)``.
    """
    indptr = np.asarray(indptr)
    indices = np.asarray(indices)
    if indptr.ndim != 1 or indptr.shape[0] != n + 1:
        raise ValueError(
            f"corrupt CSR graph: indptr has {indptr.shape} entries, expected ({n + 1},)"
        )
    if indptr.shape[0] and indptr[0] != 0:
        raise ValueError(f"corrupt CSR graph: indptr[0] = {indptr[0]}, expected 0")
    if np.any(np.diff(indptr) < 0):
        raise ValueError("corrupt CSR graph: indptr is not monotonically non-decreasing")
    if int(indptr[-1]) != indices.shape[0]:
        raise ValueError(
            f"corrupt CSR graph: indptr[-1] = {int(indptr[-1])} but "
            f"indices has {indices.shape[0]} entries"
        )
    if indices.size and (indices.min() < 0 or indices.max() >= n):
        raise ValueError(
            f"corrupt CSR graph: neighbor ids span "
            f"[{int(indices.min())}, {int(indices.max())}], valid range is [0, {n})"
        )


class Graph:
    """A directed graph over node ids ``0..n-1`` with int64 adjacency lists."""

    __slots__ = ("n", "_adj")

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be non-negative")
        self.n = n
        self._adj: list[np.ndarray] = [_EMPTY_ROW] * n

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> np.ndarray:
        """Out-neighbors of ``node`` (a read-only view; copy to modify)."""
        return self._adj[node]

    def set_neighbors(self, node: int, neighbors) -> None:
        """Replace the out-neighbor list of ``node`` (deduplicated)."""
        arr = np.asarray(neighbors, dtype=np.int64).ravel()
        if arr.size:
            arr = arr[arr != node]
            _, first = np.unique(arr, return_index=True)
            arr = arr[np.sort(first)]
        self._adj[node] = _frozen(arr)

    def add_edge(self, src: int, dst: int) -> None:
        """Append the directed edge ``src -> dst`` if not already present."""
        if src == dst:
            return
        adj = self._adj[src]
        if dst in adj:
            return
        self._adj[src] = _frozen(np.append(adj, np.int64(dst)))

    def degree(self, node: int) -> int:
        """Out-degree of ``node``."""
        return int(self._adj[node].size)

    def grow(self, new_n: int) -> None:
        """Extend the id space to ``new_n`` nodes (streaming inserts).

        New nodes ``n..new_n-1`` start with empty adjacency; existing edges
        are untouched.  Shrinking is not supported — the streaming tier
        never reuses a node id, so the id space only grows.
        """
        if new_n < self.n:
            raise ValueError(
                f"cannot shrink a graph from {self.n} to {new_n} nodes"
            )
        self._adj.extend([_EMPTY_ROW] * (new_n - self.n))
        self.n = new_n

    def num_edges(self) -> int:
        """Total number of directed edges."""
        return int(sum(a.size for a in self._adj))

    def degrees(self) -> np.ndarray:
        """Out-degree of every node."""
        return np.asarray([a.size for a in self._adj], dtype=np.int64)

    # ------------------------------------------------------------------
    # whole-graph operations
    # ------------------------------------------------------------------
    def reverse_edges(self) -> list[list[int]]:
        """In-neighbor lists (reverse adjacency) of every node."""
        rev: list[list[int]] = [[] for _ in range(self.n)]
        for src in range(self.n):
            for dst in self._adj[src]:
                rev[int(dst)].append(src)
        return rev

    def make_undirected(self) -> None:
        """Add the reverse of every edge (DPG's undirected closure)."""
        rev = self.reverse_edges()
        for node in range(self.n):
            if rev[node]:
                merged = np.concatenate([self._adj[node], np.asarray(rev[node])])
                self.set_neighbors(node, merged)

    def reachable_from(self, root: int) -> np.ndarray:
        """Boolean mask of nodes reachable from ``root`` (BFS)."""
        seen = np.zeros(self.n, dtype=bool)
        if self.n == 0:
            return seen
        seen[root] = True
        queue: deque[int] = deque([root])
        while queue:
            node = queue.popleft()
            for nbr in self._adj[node]:
                nbr = int(nbr)
                if not seen[nbr]:
                    seen[nbr] = True
                    queue.append(nbr)
        return seen

    def is_connected_from(self, root: int) -> bool:
        """Whether every node is reachable from ``root``."""
        return bool(self.reachable_from(root).all())

    def to_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Flatten to CSR ``(indptr, indices)`` int32/int64 arrays.

        This is the contiguous layout used by the Figure-17 "optimized"
        variants: one allocation, no per-node Python objects.
        """
        if self.n and self.n - 1 > _INT32_MAX:
            raise ValueError(
                f"graph too large for int32 CSR indices: node ids up to "
                f"{self.n - 1} exceed the int32 range ({_INT32_MAX})"
            )
        degrees = self.degrees()
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        num_edges = int(indptr[-1])
        if num_edges > _INT32_MAX:
            raise ValueError(
                f"graph too large for int32 CSR indices: {num_edges} edges "
                f"exceed the int32 range ({_INT32_MAX})"
            )
        if num_edges == 0:
            return indptr, np.empty(0, dtype=np.int32)
        # one C-level concatenation instead of n Python-level slice stores
        indices = np.concatenate(self._adj).astype(np.int32, copy=False)
        return indptr, indices

    @classmethod
    def from_csr(cls, indptr: np.ndarray, indices: np.ndarray) -> "Graph":
        """Rebuild a graph from validated CSR arrays (inverse of :meth:`to_csr`).

        Vectorized: one int64 copy of ``indices`` plus ``np.split`` views into
        it, instead of ``n`` Python-level slice-and-copy round trips.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        n = max(indptr.shape[0] - 1, 0)
        validate_csr(indptr, indices, n)
        graph = cls(n)
        if n and indices.size:
            flat = _frozen(np.ascontiguousarray(indices, dtype=np.int64))
            # views of the frozen flat copy inherit read-only-ness
            graph._adj = np.split(flat, indptr[1:-1])
        return graph

    @classmethod
    def from_neighbor_matrix(cls, ids: np.ndarray) -> "Graph":
        """Build a graph from an ``(n, k)`` neighbor-id matrix in one pass.

        Row ``i`` becomes node ``i``'s adjacency list with exactly the
        :meth:`set_neighbors` semantics — self-loops dropped, duplicates
        removed keeping the first occurrence, original order preserved —
        but computed for all rows at once (one stable argsort + boolean
        scatter) instead of ``n`` Python-level calls.  This is the bulk
        constructor the NNDescent-based builds (KGraph/EFANNA/IEH) use to
        wrap their refined k-NN lists.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 2:
            raise ValueError(f"neighbor matrix must be 2-D, got shape {ids.shape}")
        n, k = ids.shape
        if n == 0 or k == 0:
            return cls(n)
        if ids.min() < 0 or ids.max() >= n:
            raise ValueError(
                f"neighbor ids span [{int(ids.min())}, {int(ids.max())}], "
                f"valid range is [0, {n})"
            )
        # keep-first dedup per row: stable-sort each row by id, mark the
        # first occurrence of every run, scatter the mask back to the
        # original positions
        order = np.argsort(ids, axis=1, kind="stable")
        sorted_ids = np.take_along_axis(ids, order, axis=1)
        first = np.ones((n, k), dtype=bool)
        first[:, 1:] = sorted_ids[:, 1:] != sorted_ids[:, :-1]
        keep = np.empty((n, k), dtype=bool)
        np.put_along_axis(keep, order, first, axis=1)
        keep &= ids != np.arange(n, dtype=np.int64)[:, None]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(keep.sum(axis=1), out=indptr[1:])
        # boolean indexing is row-major, so within-row original order survives
        return cls.from_csr(indptr, ids[keep])

    @classmethod
    def from_neighbor_lists(cls, lists) -> "Graph":
        """Build a graph from an iterable of per-node neighbor iterables."""
        lists = list(lists)
        graph = cls(len(lists))
        for node, nbrs in enumerate(lists):
            graph.set_neighbors(node, np.asarray(list(nbrs), dtype=np.int64))
        return graph

    def memory_bytes(self) -> int:
        """Bytes held by all adjacency arrays."""
        return int(sum(a.nbytes for a in self._adj))

    def copy(self) -> "Graph":
        """Deep copy of the graph."""
        out = Graph(self.n)
        out._adj = [_frozen(a.copy()) for a in self._adj]
        return out


class CSRGraph:
    """Read-only CSR view of a proximity graph, search-compatible with
    :class:`Graph`.

    Exposes the same ``n`` / ``neighbors()`` surface that
    :func:`~repro.core.beam_search.beam_search` and the query paths of the
    graph indexes consume, but over two flat arrays instead of ``n`` Python
    objects.  Because it is just a pair of arrays it can sit directly on a
    ``multiprocessing.shared_memory`` buffer, which is how the parallel
    batch-query engine hands one graph to many worker processes without
    copying it.
    """

    __slots__ = ("n", "indptr", "indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, validate: bool = True):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices)
        n = max(indptr.shape[0] - 1, 0)
        if validate:
            validate_csr(indptr, indices, n)
        self.n = n
        # read-only views: ``neighbors()`` slices inherit the flag, so a
        # caller mutating a returned slice fails loudly instead of silently
        # corrupting the graph (the caller's own arrays stay writable)
        self.indptr = _frozen(indptr)
        self.indices = _frozen(indices)

    @classmethod
    def from_graph(cls, graph: "Graph") -> "CSRGraph":
        """Flatten a :class:`Graph` (validation is skipped: ``to_csr`` output
        is well-formed by construction)."""
        indptr, indices = graph.to_csr()
        return cls(indptr, indices, validate=False)

    @classmethod
    def mmap(cls, indptr_path, indices_path, validate: bool = False) -> "CSRGraph":
        """Memory-mapped CSR graph backed by two ``.npy`` files.

        API-identical to the in-memory path: the returned object exposes the
        same ``n`` / ``neighbors()`` / ``indptr`` / ``indices`` surface, but
        adjacency rows are paged in from disk on demand — the beyond-RAM
        tier's graph never becomes resident as a whole.

        ``indptr`` must be stored as int64 (so ``np.asarray`` wraps the
        memmap without copying — a dtype mismatch would silently materialize
        the whole file in RAM).  Only the cheap structural invariants are
        checked by default (shape, first/last offsets), because full
        :func:`validate_csr` would fault in every page of ``indices``; pass
        ``validate=True`` to pay that cost when loading untrusted files.
        """
        indptr = np.load(indptr_path, mmap_mode="r")
        indices = np.load(indices_path, mmap_mode="r")
        madvise_random(indptr)
        madvise_random(indices)
        if indptr.dtype != np.int64:
            raise ValueError(
                f"mmap CSR indptr must be int64, got {indptr.dtype} "
                f"(an implicit cast would copy the file into RAM)"
            )
        if indptr.ndim != 1 or indptr.shape[0] < 1:
            raise ValueError(
                f"mmap CSR indptr must be 1-D and non-empty, got shape {indptr.shape}"
            )
        if int(indptr[0]) != 0 or int(indptr[-1]) != indices.shape[0]:
            raise ValueError(
                f"corrupt mmap CSR graph: indptr spans "
                f"[{int(indptr[0])}, {int(indptr[-1])}] but indices has "
                f"{indices.shape[0]} entries"
            )
        return cls(indptr, indices, validate=validate)

    def neighbors(self, node: int) -> np.ndarray:
        """Out-neighbors of ``node`` (a read-only view; copy to modify)."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def degree(self, node: int) -> int:
        """Out-degree of ``node``."""
        return int(self.indptr[node + 1] - self.indptr[node])

    def degrees(self) -> np.ndarray:
        """Out-degree of every node."""
        return np.diff(self.indptr)

    def num_edges(self) -> int:
        """Total number of directed edges."""
        return int(self.indices.shape[0])

    def to_graph(self) -> "Graph":
        """Materialize an adjacency-list :class:`Graph` copy."""
        return Graph.from_csr(self.indptr, self.indices)

    def memory_bytes(self) -> int:
        """Bytes held by the two CSR arrays."""
        return int(self.indptr.nbytes + self.indices.nbytes)
