"""Priority queues used by the beam search.

The paper notes (Section 4.1) that all evaluated methods except the original
HNSW/ELPIS code keep the search frontier in a *single linear buffer* — a
fixed-capacity array kept sorted by distance, in which each entry carries an
"expanded" flag — and that the authors modified HNSW/ELPIS to match.  We
follow that convention: :class:`NeighborQueue` is the linear buffer, and a
small binary-heap based :class:`BoundedMaxHeap` is provided for result
collection outside the hot path.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["NeighborQueue", "BoundedMaxHeap"]


class NeighborQueue:
    """Fixed-capacity sorted buffer of ``(distance, id, expanded)`` entries.

    Mirrors the ``retset`` structure of the NSG/Vamana/KGraph code bases:
    entries are kept in ascending distance order, insertion shifts the tail,
    and the search repeatedly asks for the closest not-yet-expanded entry.

    Parameters
    ----------
    capacity:
        The beam width ``L``; at most this many closest entries are kept.
    """

    __slots__ = ("capacity", "dists", "ids", "expanded", "size", "_members", "_scan_from")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.dists = np.empty(capacity, dtype=np.float64)
        self.ids = np.empty(capacity, dtype=np.int64)
        self.expanded = np.zeros(capacity, dtype=bool)
        self.size = 0
        self._members: set[int] = set()
        # positions below this are known-expanded (the classic NSG cursor)
        self._scan_from = 0

    def __len__(self) -> int:
        return self.size

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    @classmethod
    def from_sorted_state(
        cls,
        dists: np.ndarray,
        ids: np.ndarray,
        expanded: np.ndarray,
        capacity: int,
    ) -> "NeighborQueue":
        """Rebuild a queue from a sorted snapshot of its buffers.

        The inverse of reading ``dists``/``ids``/``expanded`` off a live
        queue: used by the vectorized beam kernel's tests to replay one
        query's merge step against this reference implementation, and by any
        caller that keeps beam state in SoA arrays but needs queue semantics
        back.  ``dists`` must already be ascending.
        """
        queue = cls(capacity)
        size = len(dists)
        if size > capacity:
            raise ValueError(f"snapshot of {size} entries exceeds capacity {capacity}")
        if np.any(np.diff(np.asarray(dists, dtype=np.float64)) < 0):
            raise ValueError("snapshot dists must be sorted ascending")
        queue.dists[:size] = dists
        queue.ids[:size] = ids
        queue.expanded[:size] = expanded
        queue.size = size
        queue._members = set(int(i) for i in ids)
        return queue

    def insert(self, dist: float, node_id: int) -> float:
        """Insert an entry, keeping the buffer sorted and bounded.

        Returns the queue's updated acceptance bound — the distance of the
        worst kept entry once the buffer is full, ``inf`` before that —
        whether or not the entry was kept.  The beam-search hot loop caches
        this bound instead of calling :meth:`worst_dist` after every offer,
        so rejected inserts cost no extra call.
        """
        if node_id in self._members:
            return self.worst_dist()
        if self.size == self.capacity and dist >= self.dists[self.size - 1]:
            return float(self.dists[self.size - 1])
        pos = int(self.dists[: self.size].searchsorted(dist))
        if self.size == self.capacity:
            evicted = int(self.ids[self.size - 1])
            self._members.discard(evicted)
            tail = self.size - 1
        else:
            tail = self.size
            self.size += 1
        # shift [pos, tail) one slot right
        self.dists[pos + 1 : tail + 1] = self.dists[pos:tail]
        self.ids[pos + 1 : tail + 1] = self.ids[pos:tail]
        self.expanded[pos + 1 : tail + 1] = self.expanded[pos:tail]
        self.dists[pos] = dist
        self.ids[pos] = node_id
        self.expanded[pos] = False
        self._members.add(node_id)
        if pos < self._scan_from:
            self._scan_from = pos
        if self.size < self.capacity:
            return float("inf")
        return float(self.dists[self.size - 1])

    def pop_nearest_unexpanded(self) -> int | None:
        """Mark and return the closest unexpanded entry's id, or ``None``."""
        expanded = self.expanded
        for pos in range(self._scan_from, self.size):
            if not expanded[pos]:
                expanded[pos] = True
                self._scan_from = pos + 1
                return int(self.ids[pos])
        self._scan_from = self.size
        return None

    def worst_dist(self) -> float:
        """Distance of the current worst kept entry (inf while not full)."""
        if self.size < self.capacity:
            return float("inf")
        return float(self.dists[self.size - 1])

    def top_k(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` closest entries as ``(ids, dists)`` arrays."""
        k = min(k, self.size)
        return self.ids[:k].copy(), self.dists[:k].copy()

    def entries(self) -> tuple[np.ndarray, np.ndarray]:
        """All kept entries as ``(ids, dists)`` arrays, sorted ascending."""
        return self.ids[: self.size].copy(), self.dists[: self.size].copy()


class BoundedMaxHeap:
    """Keep the ``k`` smallest-distance items seen so far.

    A classic top-k accumulator built on a max-heap (negated distances via
    ``heapq``).  Used when merging results across partitions (ELPIS) and in
    the exact baselines.
    """

    __slots__ = ("k", "_heap")

    def __init__(self, k: int):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self._heap: list[tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, dist: float, item: int) -> bool:
        """Offer an item; returns ``True`` if it is kept."""
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-dist, item))
            return True
        if -self._heap[0][0] > dist:
            heapq.heapreplace(self._heap, (-dist, item))
            return True
        return False

    def worst_dist(self) -> float:
        """Largest kept distance (inf while fewer than ``k`` items)."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def sorted_items(self) -> tuple[np.ndarray, np.ndarray]:
        """Kept items as ``(ids, dists)`` sorted by ascending distance."""
        pairs = sorted(((-d, i) for d, i in self._heap))
        if not pairs:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        dists, ids = zip(*pairs)
        return np.asarray(ids, dtype=np.int64), np.asarray(dists, dtype=np.float64)
