"""Shared-memory array plumbing used by both parallel engines.

The parallel batch-query engine (:mod:`repro.eval.parallel`) and the batched
graph builder (:mod:`repro.core.batch_build`) move the same three kinds of
payload to worker processes — the dataset copies of a
:class:`~repro.core.distances.DistanceComputer`, CSR-flattened graphs, and
batch inputs — and none of them should ever be pickled.
:class:`SharedArrayPack` is the one mechanism both use: the parent copies
each array into a ``multiprocessing.shared_memory`` segment once, workers
attach zero-copy views by segment name.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArrayPack"]


class SharedArrayPack:
    """Copies named arrays into ``multiprocessing.shared_memory`` segments.

    The parent constructs one pack per batch and passes ``specs`` (segment
    name, shape, dtype per array) to the workers, which attach zero-copy
    views via :meth:`attach`.  The parent must call :meth:`unlink` when the
    batch completes.
    """

    def __init__(self, arrays: dict[str, np.ndarray]):
        self._segments: list[shared_memory.SharedMemory] = []
        self.specs: dict[str, tuple[str, tuple, str]] = {}
        try:
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(array.nbytes, 1)
                )
                self._segments.append(segment)
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                view[...] = array
                self.specs[name] = (segment.name, array.shape, array.dtype.str)
        except BaseException:
            self.unlink()
            raise

    @staticmethod
    def attach(
        specs: dict[str, tuple[str, tuple, str]]
    ) -> tuple[dict[str, np.ndarray], list[shared_memory.SharedMemory]]:
        """Worker side: mount every segment and return array views.

        The returned segment handles must stay referenced as long as the
        arrays are in use (the views borrow their buffers).
        """
        arrays: dict[str, np.ndarray] = {}
        segments: list[shared_memory.SharedMemory] = []
        for name, (segment_name, shape, dtype) in specs.items():
            segment = shared_memory.SharedMemory(name=segment_name)
            segments.append(segment)
            arrays[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
        return arrays, segments

    def unlink(self) -> None:
        """Release every segment (parent side, after the batch)."""
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # already unlinked
                pass
        self._segments = []
