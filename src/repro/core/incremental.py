"""Baseline incremental-insertion (II) graph builder — Section 4's apparatus.

To isolate the effect of each ND and SS strategy, the paper implements "a
basic II-based method, where nodes are inserted incrementally and each node
acquires its list of candidate neighbors through a beam search on the current
partial graph of already inserted nodes", then applies each strategy
independently.  This module is that apparatus:

* nodes are inserted one at a time;
* each insertion runs a beam search over the partial graph, seeded by a
  pluggable *build seed provider* (random/KS sampling, or an incrementally
  maintained Stacked-NSW layer stack — the Table 2 comparison);
* the visited candidates are pruned by a pluggable ND strategy to at most
  ``max_degree`` neighbors;
* bi-directional edges are added, re-pruning any overflowing neighbor list
  with the same ND strategy.
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass

import numpy as np

from .beam_search import beam_search
from .distances import DistanceComputer
from .diversification import Diversifier, PruneCounter, get_diversifier, rnd
from .graph import Graph
from .heap import NeighborQueue

__all__ = [
    "IIBuildResult",
    "build_ii_graph",
    "RandomBuildSeeds",
    "StackedNSWBuildSeeds",
]


@dataclass
class IIBuildResult:
    """Graph plus build accounting for the II apparatus.

    Attributes
    ----------
    graph:
        The constructed proximity graph.
    distance_calls:
        Distance calculations consumed by construction.
    prune_stats:
        Examined/rejected counts of the ND strategy (Table 1).
    seed_provider:
        The build seed provider, exposing any structure it maintained
        (e.g., the SN layer stack, reusable at query time).
    """

    graph: Graph
    distance_calls: int
    prune_stats: PruneCounter
    seed_provider: "RandomBuildSeeds | StackedNSWBuildSeeds"


class RandomBuildSeeds:
    """KS-style build seeds: random already-inserted nodes per insertion."""

    name = "KS"

    def __init__(self, n_seeds: int = 4):
        if n_seeds < 1:
            raise ValueError("n_seeds must be >= 1")
        self.n_seeds = n_seeds

    def seeds_for(self, node, inserted, computer, rng) -> list[int]:
        """Sample up to ``n_seeds`` inserted nodes uniformly."""
        size = min(self.n_seeds, len(inserted))
        picks = rng.choice(len(inserted), size=size, replace=False)
        return [inserted[int(p)] for p in picks]

    def on_insert(self, node, computer, rng) -> None:
        """Nothing to maintain."""

    def memory_bytes(self) -> int:
        """No auxiliary structure."""
        return 0


class StackedNSWBuildSeeds:
    """SN build seeds: an HNSW-style layer stack grown with the graph.

    Each inserted node draws a maximum level from Eq. 1
    (``floor(-ln(U) / ln(M))``); positive-level nodes join small diversified
    NSW graphs at layers ``1..level``.  Seeds for an insertion's base-layer
    beam search come from a greedy descent through the current stack — the
    extra distance calls this costs relative to KS is exactly what Table 2
    measures.
    """

    name = "SN"

    def __init__(self, max_degree: int = 16, ef_construction: int = 24):
        if max_degree < 2:
            raise ValueError("max_degree must be >= 2")
        self.max_degree = max_degree
        self.ef_construction = ef_construction
        self._inv_log_m = 1.0 / math.log(max_degree)
        self.layers: list[dict[int, np.ndarray]] = []  # layers[0] is layer 1
        self.entry: int | None = None
        self.entry_level = 0

    # ------------------------------------------------------------------
    def seeds_for(self, node, inserted, computer, rng) -> list[int]:
        """Greedy descent through the layer stack toward ``node``'s vector."""
        if self.entry is None:
            return [inserted[int(rng.integers(len(inserted)))]]
        query = computer.data[node]
        current = self.entry
        current_dist = computer.one_to_query(current, query)
        for layer in reversed(self.layers):
            current, current_dist = self._greedy_in_layer(
                layer, current, current_dist, query, computer
            )
        return [current]

    def on_insert(self, node, computer, rng) -> None:
        """Draw a level for ``node`` and link it into its layers."""
        level = int(
            math.floor(-math.log(max(rng.uniform(), 1e-12)) * self._inv_log_m)
        )
        if self.entry is None:
            self.entry = int(node)
            self.entry_level = level
            for _ in range(level):
                self.layers.append({int(node): np.empty(0, dtype=np.int64)})
            return
        if level == 0:
            return
        while len(self.layers) < level:
            self.layers.append({})
        query = computer.data[node]
        current = self.entry
        current_dist = computer.one_to_query(current, query)
        # descend through layers above `level` first
        for layer_idx in range(len(self.layers) - 1, level - 1, -1):
            current, current_dist = self._greedy_in_layer(
                self.layers[layer_idx], current, current_dist, query, computer
            )
        # then insert into layers `level`..1
        for layer_idx in range(min(level, len(self.layers)) - 1, -1, -1):
            layer = self.layers[layer_idx]
            if not layer:
                layer[int(node)] = np.empty(0, dtype=np.int64)
                continue
            if current not in layer:
                current = next(iter(layer))
                current_dist = computer.one_to_query(current, query)
            ids, dists = self._layer_beam(layer, query, current, computer)
            kept = rnd(computer, ids, dists, self.max_degree)
            layer[int(node)] = kept
            for nbr in kept:
                nbr = int(nbr)
                merged = np.concatenate([layer[nbr], [node]])
                if merged.size > self.max_degree:
                    dists_nbr = computer.one_to_many(nbr, merged)
                    merged = rnd(computer, merged, dists_nbr, self.max_degree)
                layer[nbr] = merged
            if ids.size:
                current = int(ids[0])
                current_dist = float(dists[0])
        if level > self.entry_level:
            self.entry = int(node)
            self.entry_level = level

    # ------------------------------------------------------------------
    @staticmethod
    def _greedy_in_layer(layer, current, current_dist, query, computer):
        if current not in layer:
            if not layer:
                return current, current_dist
            current = next(iter(layer))
            current_dist = computer.one_to_query(current, query)
        # prepare the query once; the hop loop only pays the GEMV
        q64, q_sq = computer.prepare_query(query)
        improved = True
        while improved:
            improved = False
            nbrs = layer.get(current)
            if nbrs is None or nbrs.size == 0:
                break
            dists = computer.to_query_prepared(nbrs, q64, q_sq)
            best = int(np.argmin(dists))
            if dists[best] < current_dist:
                current = int(nbrs[best])
                current_dist = float(dists[best])
                improved = True
        return current, current_dist

    def _layer_beam(self, layer, query, entry, computer):
        queue = NeighborQueue(self.ef_construction)
        visited = {entry}
        queue.insert(computer.one_to_query(entry, query), entry)
        while True:
            node = queue.pop_nearest_unexpanded()
            if node is None:
                break
            fresh = [int(x) for x in layer.get(node, ()) if int(x) not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            dists = computer.to_query(np.asarray(fresh), query)
            bound = queue.worst_dist()
            for dist, nbr in zip(dists.tolist(), fresh):
                if dist < bound:
                    bound = queue.insert(dist, nbr)
        return queue.entries()

    def memory_bytes(self) -> int:
        """Bytes across all layer adjacency arrays."""
        total = 0
        for layer in self.layers:
            total += sum(arr.nbytes + 32 for arr in layer.values())
        return total


def build_ii_graph(
    computer: DistanceComputer,
    max_degree: int = 24,
    beam_width: int = 128,
    diversify: str | Diversifier = "rnd",
    rng: np.random.Generator | None = None,
    build_seeds: RandomBuildSeeds | StackedNSWBuildSeeds | None = None,
    insertion_order: np.ndarray | None = None,
    diversify_params: dict | None = None,
    track_pruning: bool = True,
    prune_overflow: bool = True,
    n_workers: int | None = None,
    max_round_size: int | None = None,
    kernel: str | None = None,
) -> IIBuildResult:
    """Build the baseline II graph over the computer's dataset.

    Parameters
    ----------
    computer:
        Distance engine owning the dataset.
    max_degree:
        Out-degree cap ``R`` (the paper uses R=60 at its scale).
    beam_width:
        Construction beam width ``L`` (the paper uses L=800).
    diversify:
        ND strategy name (``"nond" | "rnd" | "rrnd" | "mond"``) or a bound
        callable.
    rng:
        Randomness for insertion order and seed sampling.
    build_seeds:
        Build-time seed provider; defaults to :class:`RandomBuildSeeds`.
    insertion_order:
        Optional permutation of node ids; random when omitted.
    diversify_params:
        Extra parameters bound to the ND strategy (``alpha``,
        ``theta_degrees``).
    track_pruning:
        Record examined/rejected pruning counts (Table 1); adds a cheap
        replay of each prune decision.
    prune_overflow:
        Re-prune neighbor lists that exceed ``max_degree`` after reverse-edge
        insertion.  The original NSW keeps unbounded neighbor lists (its
        early edges are the long-range links), so it disables this.
    n_workers:
        ``None`` (default) keeps the paper's strictly sequential protocol.
        Any integer switches to the ParlayANN-style batched builder
        (:func:`~repro.core.batch_build.build_ii_graph_batched`): candidate
        searches run in prefix-doubling rounds against a frozen prefix
        graph, across ``n_workers`` processes — the batched result is
        bit-identical at every worker count, but it is a (negligibly)
        different graph than the sequential protocol produces.
    max_round_size:
        Round-size cap for the batched builder (ignored when ``n_workers``
        is ``None``).
    kernel:
        Construction-kernel backend (``None`` = ``$REPRO_KERNEL`` =
        ``auto``; results are bit-identical across backends).  For the
        batched builder it selects the beam kernel of the per-round
        candidate searches *and* the batched diversification kernels.  For
        the sequential protocol the per-insertion candidate searches stay
        scalar (each insertion must see the previous one's edges), but the
        diversification and overflow prunes route through the batched
        construction kernels (:mod:`repro.core.build_kernels`) — same
        graph, prune stats, and distance accounting either way.
    """
    if n_workers is not None:
        from .batch_build import build_ii_graph_batched

        return build_ii_graph_batched(
            computer,
            max_degree=max_degree,
            beam_width=beam_width,
            diversify=diversify,
            rng=rng,
            build_seeds=build_seeds,
            insertion_order=insertion_order,
            diversify_params=diversify_params,
            track_pruning=track_pruning,
            prune_overflow=prune_overflow,
            n_workers=n_workers,
            max_round_size=max_round_size,
            kernel=kernel,
        )
    if rng is None:
        rng = np.random.default_rng(0)
    n = computer.n
    graph = Graph(n)
    prune_stats = PruneCounter()
    params = diversify_params or {}
    if isinstance(diversify, str):
        diversifier = get_diversifier(diversify, **params)
        bare = get_diversifier(diversify)
    else:
        diversifier = diversify
        bare = None
    if build_seeds is None:
        build_seeds = RandomBuildSeeds()
    # named strategies route through the batched construction kernels unless
    # the scalar reference backend is pinned; custom callables always run
    # the per-node path (their internals cannot be replayed over a matrix)
    from .kernels import resolve_backend

    use_batched = bare is not None and resolve_backend(kernel) != "scalar"
    if use_batched:
        from .build_kernels import diversify_many, prune_merged_many
    mark = computer.checkpoint()
    if insertion_order is None:
        insertion_order = rng.permutation(n)
    inserted: list[int] = []
    visited_mask = np.zeros(n, dtype=bool)

    for node in insertion_order:
        node = int(node)
        if not inserted:
            inserted.append(node)
            build_seeds.on_insert(node, computer, rng)
            continue
        seeds = build_seeds.seeds_for(node, inserted, computer, rng)
        width = min(beam_width, max(8, len(inserted)))
        result = beam_search(
            graph,
            computer,
            computer.data[node],
            seeds,
            k=min(width, len(inserted)),
            beam_width=width,
            visited_mask=visited_mask,
        )
        cand_ids, cand_dists = result.ids, result.dists
        if use_batched:
            kept = diversify_many(
                computer, [(cand_ids, cand_dists)], max_degree, diversify,
                params=params, backend=kernel,
            )[0]
            graph.set_neighbors(node, kept)
            # one insertion's reverse merges touch pairwise-distinct rows, so
            # the overflow prunes are independent and batch into one
            # segmented distance call + replay (bit-identical rows/stats)
            overflow_owners: list[int] = []
            overflow_merged: list[np.ndarray] = []
            for nbr in kept:
                nbr = int(nbr)
                merged = np.concatenate([graph.neighbors(nbr), [node]])
                if prune_overflow and merged.size > max_degree:
                    overflow_owners.append(nbr)
                    overflow_merged.append(merged)
                else:
                    graph.set_neighbors(nbr, merged)
            if overflow_owners:
                # Table 1 measures the pruning ratio here: how much of an
                # overflowing (R+1-sized) neighbor list the ND predicate
                # itself removes, beyond what the degree cap would.
                pruned = prune_merged_many(
                    computer, overflow_owners, overflow_merged, max_degree,
                    diversify, params=params,
                    stats=prune_stats if track_pruning else None,
                    backend=kernel,
                )
                for nbr, kept_nbr in zip(overflow_owners, pruned):
                    graph.set_neighbors(nbr, kept_nbr)
        else:
            kept = diversifier(computer, cand_ids, cand_dists, max_degree)
            graph.set_neighbors(node, kept)
            for nbr in kept:
                nbr = int(nbr)
                merged = np.concatenate([graph.neighbors(nbr), [node]])
                if prune_overflow and merged.size > max_degree:
                    dists_nbr = computer.one_to_many(nbr, merged)
                    # Table 1 measures the pruning ratio here: how much of an
                    # overflowing (R+1-sized) neighbor list the ND predicate
                    # itself removes, beyond what the degree cap would.
                    if track_pruning:
                        merged = _prune_with_stats(
                            diversifier, bare, params, computer, merged,
                            dists_nbr, max_degree, prune_stats,
                        )
                    else:
                        merged = diversifier(
                            computer, merged, dists_nbr, max_degree
                        )
                graph.set_neighbors(nbr, merged)
        inserted.append(node)
        build_seeds.on_insert(node, computer, rng)
    return IIBuildResult(
        graph=graph,
        distance_calls=computer.since(mark),
        prune_stats=prune_stats,
        seed_provider=build_seeds,
    )


def _accepts_stats(diversifier) -> bool:
    """Whether a diversifier callable accepts a ``stats=`` keyword.

    Decided from the signature, never by calling the diversifier: probing
    with ``stats=`` and catching ``TypeError`` would also swallow genuine
    ``TypeError``s raised *inside* a stats-accepting diversifier and then
    silently re-run it without stats, double-charging distance calls.
    """
    try:
        return _ACCEPTS_STATS_CACHE[diversifier]
    except TypeError:  # unhashable callable: inspect without caching
        return _accepts_stats_uncached(diversifier)
    except KeyError:
        accepts = _accepts_stats_uncached(diversifier)
        _ACCEPTS_STATS_CACHE[diversifier] = accepts
        return accepts


def _accepts_stats_uncached(diversifier) -> bool:
    try:
        parameters = inspect.signature(diversifier).parameters
    except (TypeError, ValueError):  # builtins/exotic callables: be conservative
        return False
    if "stats" in parameters:
        kind = parameters["stats"].kind
        return kind not in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.VAR_POSITIONAL,
        )
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


_ACCEPTS_STATS_CACHE: dict = {}


def _prune_with_stats(
    diversifier, bare, params, computer, cand_ids, cand_dists, max_degree, stats
):
    """Run the prune once, with stats, without double-charging distances."""
    if bare is not None:
        return bare(computer, cand_ids, cand_dists, max_degree, stats=stats, **params)
    if _accepts_stats(diversifier):
        return diversifier(
            computer, cand_ids, cand_dists, max_degree, stats=stats
        )
    kept = diversifier(computer, cand_ids, cand_dists, max_degree)
    examined = min(len(cand_ids), max_degree + (len(cand_ids) - len(kept)))
    stats.examined += examined
    stats.rejected += max(0, examined - len(kept))
    return kept
