"""Batched construction kernels: vectorized neighborhood diversification.

The scalar ND strategies (:mod:`repro.core.diversification`) issue one
:meth:`~repro.core.distances.DistanceComputer.one_to_many` call per examined
candidate — a Python round trip per candidate, which is what makes the build
path per-node where the PR 6 query kernel is per-batch.  This module runs a
whole round of diversifications in **lockstep** (the same move PR 6 makes
for queries): each iteration takes every active request's *current* examined
candidate, scores it against that request's *current* selected prefix with
ONE segmented distance call, then applies all the accept/reject decisions
and advances every cursor.

**Determinism contract.**  Selected ids (and their order), ``PruneCounter``
totals, and ``distance_calls`` are bit-identical to calling the scalar
strategy once per request, at every backend:

* each lockstep segment holds exactly the ids the scalar loop would pass to
  ``one_to_many(candidate, selected[:n_selected])`` — same rows, same GEMV.
  This matters more than it looks: BLAS GEMV results depend on the *row
  count* (blocked accumulation), so a precomputed all-pairs matrix would
  differ from the scalar prefix calls in the last ulp and flip borderline
  accept decisions.  Batching across *requests* keeps every per-request
  computation literally the scalar one;
* accept tests reduce the scalar elementwise predicates exactly:
  ``all(dist_q < alpha * d)  ==  dist_q < min(alpha * d)`` for RRND and
  ``all(cos < cos_theta)  ==  max(cos) < cos_theta`` for MOND, with the
  elementwise operands computed by the very expressions of the scalar loop
  (including MOND's Python-float ``dist_q**2`` and its ``nan_to_num``
  post-processing);
* charging is the segmented call itself: every round charges exactly the
  prefix lengths the scalar loop would have, and MOND's ``dist_q == 0``
  early reject never joins a round (the scalar loop rejects before
  computing anything).

Backends ride the existing ``REPRO_KERNEL`` machinery
(:func:`~repro.core.kernels.resolve_backend`): ``scalar`` runs the
per-request reference strategies unchanged; ``python`` is the lockstep
kernel above; ``numba`` aliases ``python`` — the accept decisions replay
BLAS-GEMV bit patterns, so a jitted scalar rewrite of the distance math
would break the bit-identity contract, and the remaining per-round
bookkeeping is too thin to pay for a jit.
"""

from __future__ import annotations

import math

import numpy as np

from .distances import DistanceComputer
from .diversification import (
    DIVERSIFIERS,
    PruneCounter,
    _sorted_candidates,
)
from .kernels import resolve_backend

__all__ = [
    "diversify_many",
    "prune_merged_many",
]

_STRATEGY_PARAMS = {
    "nond": (),
    "rnd": (),
    "rrnd": ("alpha",),
    "mond": ("theta_degrees",),
}


def _resolve_strategy(strategy: str, params: dict | None) -> tuple[str, dict]:
    """Validate a strategy name + parameter dict exactly like the scalar path."""
    key = str(strategy).lower()
    if key not in DIVERSIFIERS:
        raise KeyError(
            f"unknown diversifier {strategy!r}; choose from {sorted(DIVERSIFIERS)}"
        )
    params = dict(params or {})
    unexpected = set(params) - set(_STRATEGY_PARAMS[key])
    if unexpected:
        raise TypeError(
            f"{key}() got unexpected diversify parameters {sorted(unexpected)}"
        )
    if key == "rrnd":
        alpha = float(params.get("alpha", 1.3))
        if alpha < 1.0:
            raise ValueError("alpha must be >= 1")
        params["alpha"] = alpha
    elif key == "mond":
        theta = float(params.get("theta_degrees", 60.0))
        if theta < 0 or theta >= 180:
            raise ValueError("theta must be in [0, 180) degrees")
        params["theta_degrees"] = theta
    return key, params


class _Selection:
    """Cursor state of one request inside the lockstep loop."""

    __slots__ = ("idx", "ids", "dists", "dlist", "j", "n_sel", "sel_ids", "sel_dists")

    def __init__(self, idx: int, ids: np.ndarray, dists: np.ndarray, max_degree: int):
        self.idx = idx
        self.ids = ids
        self.dists = dists
        self.dlist = dists.tolist()  # Python floats, like the scalar loop's zip
        self.j = 0
        self.n_sel = 0
        cap = min(max_degree, ids.shape[0])
        self.sel_ids = np.empty(cap, dtype=np.int64)
        self.sel_dists = np.empty(cap, dtype=np.float64)


def _finish_one(computer, st, key, alpha, cos_theta, max_degree, stats):
    """Drive one request's selection to completion, scalar-style.

    Every distance evaluation is a plain ``one_to_many(cand, selected
    prefix)`` — literally the reference strategy's calls, so ids, stats, and
    charges match the scalar loop exactly.
    """
    dlist = st.dlist
    while st.j < len(dlist):
        if st.n_sel >= max_degree:
            break
        dist_q = dlist[st.j]
        if stats is not None:
            stats.examined += 1
        if st.n_sel == 0:
            st.sel_ids[0] = st.ids[st.j]
            st.sel_dists[0] = dist_q
            st.n_sel = 1
            st.j += 1
            continue
        if key == "mond":
            if dist_q == 0.0:
                if stats is not None:
                    stats.rejected += 1
                st.j += 1
                continue
            d_ij = computer.one_to_many(st.ids[st.j], st.sel_ids[: st.n_sel])
            d_qi = st.sel_dists[: st.n_sel]
            denom = 2.0 * d_qi * dist_q
            with np.errstate(divide="ignore", invalid="ignore"):
                cos_angle = (d_qi**2 + dist_q**2 - d_ij**2) / denom
            cos_angle = np.nan_to_num(cos_angle, nan=1.0, posinf=1.0, neginf=-1.0)
            ok = bool((cos_angle < cos_theta).all())
        else:
            to_selected = computer.one_to_many(st.ids[st.j], st.sel_ids[: st.n_sel])
            ok = bool((dist_q < alpha * to_selected).all())
        if ok:
            st.sel_ids[st.n_sel] = st.ids[st.j]
            st.sel_dists[st.n_sel] = dist_q
            st.n_sel += 1
        elif stats is not None:
            stats.rejected += 1
        st.j += 1


def diversify_many(
    computer: DistanceComputer,
    requests: list[tuple[np.ndarray, np.ndarray]],
    max_degree: int,
    strategy: str,
    params: dict | None = None,
    stats: PruneCounter | None = None,
    backend: str | None = None,
) -> list[np.ndarray]:
    """Run one ND strategy over a batch of candidate lists.

    ``requests`` is a sequence of ``(cand_ids, cand_dists)`` pairs.  Returns
    one kept-id array per request (int64, in selection order), with selected
    ids, ``stats`` totals, and ``computer.count`` bit-identical to calling
    the scalar strategy once per request in order.  ``backend`` follows
    ``REPRO_KERNEL`` semantics (see the module docstring).
    """
    key, params = _resolve_strategy(strategy, params)
    if resolve_backend(backend) == "scalar":
        base = DIVERSIFIERS[key]
        return [
            np.asarray(
                base(computer, cand_ids, cand_dists, max_degree, stats=stats, **params),
                dtype=np.int64,
            )
            for cand_ids, cand_dists in requests
        ]

    results: list[np.ndarray | None] = [None] * len(requests)
    states: list[_Selection] = []
    for idx, (cand_ids, cand_dists) in enumerate(requests):
        ids, dists = _sorted_candidates(cand_ids, cand_dists)
        if key == "nond":
            if stats is not None:
                stats.examined += min(len(ids), max_degree)
            results[idx] = np.asarray(ids[:max_degree], dtype=np.int64)
        elif ids.shape[0] <= 1 or max_degree <= 0:
            # zero or one candidate: selection is trivial and charge-free
            kept = ids[: min(max_degree, ids.shape[0])]
            if stats is not None:
                stats.examined += kept.shape[0]
            results[idx] = np.asarray(kept, dtype=np.int64)
        else:
            states.append(_Selection(idx, ids, dists, max_degree))
    if not states:
        return results  # type: ignore[return-value]

    if key == "mond":
        theta = params["theta_degrees"]
        cos_theta = math.cos(math.radians(theta))
        alpha = None
    else:
        alpha = params["alpha"] if key == "rrnd" else 1.0
        cos_theta = None

    while states:
        if len(states) == 1:
            # a lone request gains nothing from lockstep batching; finish it
            # with the scalar loop's own one_to_many calls (bit-identical by
            # definition — they ARE the reference calls)
            st = states[0]
            _finish_one(computer, st, key, alpha, cos_theta, max_degree, stats)
            results[st.idx] = st.sel_ids[: st.n_sel].copy()
            break
        survivors: list[_Selection] = []
        participants: list[_Selection] = []
        for st in states:
            # fast-forward through steps that need no distance computation
            while True:
                if st.n_sel >= max_degree or st.j >= len(st.dlist):
                    results[st.idx] = st.sel_ids[: st.n_sel].copy()
                    break
                if st.n_sel == 0:
                    if stats is not None:
                        stats.examined += 1
                    st.sel_ids[0] = st.ids[st.j]
                    st.sel_dists[0] = st.dlist[st.j]
                    st.n_sel = 1
                    st.j += 1
                    continue
                if key == "mond" and st.dlist[st.j] == 0.0:
                    # the scalar loop rejects before computing any distance
                    if stats is not None:
                        stats.examined += 1
                        stats.rejected += 1
                    st.j += 1
                    continue
                if stats is not None:
                    stats.examined += 1
                participants.append(st)
                break
        if not participants:
            break

        point_ids = np.asarray([st.ids[st.j] for st in participants], dtype=np.int64)
        lens = np.asarray([st.n_sel for st in participants], dtype=np.int64)
        seg_stops = np.cumsum(lens)
        seg_starts = seg_stops - lens
        flat_sel = np.concatenate([st.sel_ids[: st.n_sel] for st in participants])
        dqs = [st.dlist[st.j] for st in participants]
        # the charged call: segment r holds exactly the ids the scalar loop
        # would pass to one_to_many(candidate, selected[:n_selected])
        flat_d = computer.points_to_many_segmented(
            point_ids, flat_sel, seg_starts, seg_stops
        )

        if key == "mond":
            flat_qi = np.concatenate(
                [st.sel_dists[: st.n_sel] for st in participants]
            )
            dq_rep = np.repeat(np.asarray(dqs, dtype=np.float64), lens)
            # dist_q**2 via Python pow, as the scalar loop's float does it
            dqsq_rep = np.repeat(
                np.asarray([dq**2 for dq in dqs], dtype=np.float64), lens
            )
            denom = 2.0 * flat_qi * dq_rep
            with np.errstate(divide="ignore", invalid="ignore"):
                cos_angle = (flat_qi**2 + dqsq_rep - flat_d**2) / denom
            cos_angle = np.nan_to_num(cos_angle, nan=1.0, posinf=1.0, neginf=-1.0)
            # all(cos < cos_theta) == max(cos) < cos_theta (no NaN survives)
            accept = np.maximum.reduceat(cos_angle, seg_starts) < cos_theta
        else:
            scaled = alpha * flat_d
            # all(dist_q < s) == dist_q < min(s) (distances are never NaN)
            accept = np.asarray(dqs, dtype=np.float64) < np.minimum.reduceat(
                scaled, seg_starts
            )

        for st, ok in zip(participants, accept.tolist()):
            if ok:
                st.sel_ids[st.n_sel] = st.ids[st.j]
                st.sel_dists[st.n_sel] = st.dlist[st.j]
                st.n_sel += 1
            elif stats is not None:
                stats.rejected += 1
            st.j += 1
            survivors.append(st)
        states = survivors
    return results  # type: ignore[return-value]


def prune_merged_many(
    computer: DistanceComputer,
    owners: list[int],
    merged_lists: list[np.ndarray],
    max_degree: int,
    strategy: str,
    params: dict | None = None,
    stats: PruneCounter | None = None,
    backend: str | None = None,
) -> list[np.ndarray]:
    """Batched overflow re-prune: ``one_to_many`` + diversify per owner.

    Scalar equivalent, per item: ``dists = computer.one_to_many(owner,
    merged)`` (charged at the raw merged size, duplicates included) followed
    by the strategy on ``(merged, dists)``.  The batch variant computes all
    owner-to-merged distances in one segmented call and feeds
    :func:`diversify_many`; graph rows, stats, and counts are bit-identical.
    """
    if len(owners) != len(merged_lists):
        raise ValueError("owners and merged_lists must align")
    if not owners:
        return []
    backend_resolved = resolve_backend(backend)
    if backend_resolved == "scalar":
        key, params = _resolve_strategy(strategy, params)
        base = DIVERSIFIERS[key]
        out = []
        for owner, merged in zip(owners, merged_lists):
            dists = computer.one_to_many(owner, merged)
            out.append(
                np.asarray(
                    base(computer, merged, dists, max_degree, stats=stats, **params),
                    dtype=np.int64,
                )
            )
        return out
    merged_lists = [np.asarray(m, dtype=np.int64).ravel() for m in merged_lists]
    lens = np.asarray([m.shape[0] for m in merged_lists], dtype=np.int64)
    seg_stops = np.cumsum(lens)
    seg_starts = seg_stops - lens
    flat = np.concatenate(merged_lists) if lens.sum() else np.empty(0, dtype=np.int64)
    dists_flat = computer.points_to_many_segmented(
        np.asarray(owners, dtype=np.int64), flat, seg_starts, seg_stops
    )
    requests = [
        (merged, dists_flat[start:stop])
        for merged, start, stop in zip(merged_lists, seg_starts, seg_stops)
    ]
    return diversify_many(
        computer, requests, max_degree, strategy,
        params=params, stats=stats, backend=backend_resolved,
    )
