"""Seed-selection (SS) strategies — Section 3.3.

Each strategy chooses the nodes that warm the beam-search queue.  All seven
strategies of the paper are implemented behind one interface so that the
Section 4.3 experiments can swap them on an otherwise identical graph:

* ``SN`` — Stacked NSW: hierarchical layers of diversified NSW graphs over
  samples, descended greedily (HNSW's mechanism, Eq. 1).
* ``KD`` — randomized K-D trees, best-first leaf retrieval (EFANNA, SPTAG-KDT,
  HCNNG).
* ``LSH`` — hash-table lookup (IEH).
* ``MD`` — the dataset medoid and its neighbors (NSG, Vamana entry point).
* ``SF`` — a single fixed random node and its neighbors (the paper's baseline).
* ``KS`` — per-query random samples plus the medoid (KGraph, DPG, NSG, Vamana).
* ``KM`` — balanced k-means trees (SPTAG-BKT).
"""

from __future__ import annotations

import abc
import math

import numpy as np

from ..hashing.lsh import LSHIndex
from ..trees.bkt import BKForest
from ..trees.kdtree import KDForest
from .distances import DistanceComputer
from .graph import Graph
from .heap import NeighborQueue

__all__ = [
    "SeedStrategy",
    "FixedRandomSeeds",
    "MedoidSeeds",
    "RandomSampleSeeds",
    "KDTreeSeeds",
    "BKTreeSeeds",
    "LSHSeeds",
    "StackedNSWSeeds",
    "get_seed_strategy",
    "SEED_STRATEGIES",
    "find_medoid",
]


def find_medoid(computer: DistanceComputer) -> int:
    """Approximate medoid: the dataset point closest to the centroid.

    This is the navigating-node heuristic of NSG/Vamana; the ``n`` distance
    evaluations are charged to the build.
    """
    centroid = computer.data.mean(axis=0)
    dists = computer.to_query(np.arange(computer.n), centroid)
    return int(np.argmin(dists))


class SeedStrategy(abc.ABC):
    """Interface shared by all seed-selection strategies."""

    name: str = "base"

    @abc.abstractmethod
    def fit(
        self, computer: DistanceComputer, graph: Graph, rng: np.random.Generator
    ) -> "SeedStrategy":
        """Build any auxiliary structures over the indexed dataset."""

    @abc.abstractmethod
    def select(self, query: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Seed node ids for one query."""

    def memory_bytes(self) -> int:
        """Bytes held by auxiliary structures (0 when there are none)."""
        return 0


class FixedRandomSeeds(SeedStrategy):
    """SF: one random node, fixed for all queries, plus its out-neighbors."""

    name = "SF"

    def __init__(self):
        self._seeds: np.ndarray | None = None

    def fit(self, computer, graph, rng):
        """Build this strategy\'s auxiliary state over the graph."""
        entry = int(rng.integers(computer.n))
        self._seeds = np.unique(
            np.concatenate([[entry], graph.neighbors(entry)])
        ).astype(np.int64)
        return self

    def select(self, query, rng):
        """Seed ids for one query (see class docstring)."""
        if self._seeds is None:
            raise RuntimeError("strategy not fitted")
        return self._seeds


class MedoidSeeds(SeedStrategy):
    """MD: the medoid as fixed entry point, plus its out-neighbors."""

    name = "MD"

    def __init__(self):
        self.medoid: int | None = None
        self._seeds: np.ndarray | None = None

    def fit(self, computer, graph, rng):
        """Build this strategy\'s auxiliary state over the graph."""
        self.medoid = find_medoid(computer)
        self._seeds = np.unique(
            np.concatenate([[self.medoid], graph.neighbors(self.medoid)])
        ).astype(np.int64)
        return self

    def select(self, query, rng):
        """Seed ids for one query (see class docstring)."""
        if self._seeds is None:
            raise RuntimeError("strategy not fitted")
        return self._seeds


class RandomSampleSeeds(SeedStrategy):
    """KS: ``n_seeds`` fresh random nodes per query, plus the medoid."""

    name = "KS"

    def __init__(self, n_seeds: int = 32, include_medoid: bool = True):
        if n_seeds < 1:
            raise ValueError("n_seeds must be >= 1")
        self.n_seeds = n_seeds
        self.include_medoid = include_medoid
        self._n = 0
        self.medoid: int | None = None

    def fit(self, computer, graph, rng):
        """Build this strategy\'s auxiliary state over the graph."""
        self._n = computer.n
        if self.include_medoid:
            self.medoid = find_medoid(computer)
        return self

    def select(self, query, rng):
        """Seed ids for one query (see class docstring)."""
        if self._n == 0:
            raise RuntimeError("strategy not fitted")
        picks = rng.choice(self._n, size=min(self.n_seeds, self._n), replace=False)
        if self.medoid is not None:
            picks = np.concatenate([picks, [self.medoid]])
        return np.unique(picks).astype(np.int64)


class KDTreeSeeds(SeedStrategy):
    """KD: best-first K-D forest retrieval of candidate leaves."""

    name = "KD"

    def __init__(self, n_seeds: int = 32, n_trees: int = 4, leaf_size: int = 32):
        self.n_seeds = n_seeds
        self.n_trees = n_trees
        self.leaf_size = leaf_size
        self._forest: KDForest | None = None

    def fit(self, computer, graph, rng):
        """Build this strategy\'s auxiliary state over the graph."""
        self._forest = KDForest.build(
            computer.data, self.n_trees, self.leaf_size, rng
        )
        return self

    def select(self, query, rng):
        """Seed ids for one query (see class docstring)."""
        if self._forest is None:
            raise RuntimeError("strategy not fitted")
        cands = self._forest.search_candidates(query, self.n_seeds)
        return cands[: self.n_seeds * 2]

    def memory_bytes(self):
        """Bytes held by the auxiliary structure."""
        return self._forest.memory_bytes() if self._forest else 0


class BKTreeSeeds(SeedStrategy):
    """KM: best-first balanced-k-means-tree retrieval (SPTAG-BKT)."""

    name = "KM"

    def __init__(
        self,
        n_seeds: int = 32,
        n_trees: int = 2,
        leaf_size: int = 32,
        branching: int = 4,
    ):
        self.n_seeds = n_seeds
        self.n_trees = n_trees
        self.leaf_size = leaf_size
        self.branching = branching
        self._forest: BKForest | None = None

    def fit(self, computer, graph, rng):
        """Build this strategy\'s auxiliary state over the graph."""
        self._forest = BKForest.build(
            computer.data, self.n_trees, self.leaf_size, self.branching, rng
        )
        return self

    def select(self, query, rng):
        """Seed ids for one query (see class docstring)."""
        if self._forest is None:
            raise RuntimeError("strategy not fitted")
        cands = self._forest.search_candidates(query, self.n_seeds)
        return cands[: self.n_seeds * 2]

    def memory_bytes(self):
        """Bytes held by the auxiliary structure."""
        return self._forest.memory_bytes() if self._forest else 0


class LSHSeeds(SeedStrategy):
    """LSH: bucket collisions of the query provide the seeds (IEH)."""

    name = "LSH"

    def __init__(self, n_seeds: int = 32, n_tables: int = 4, n_projections: int = 8):
        self.n_seeds = n_seeds
        self._index = LSHIndex(n_tables=n_tables, n_projections=n_projections)
        self._n = 0

    def fit(self, computer, graph, rng):
        """Build this strategy\'s auxiliary state over the graph."""
        self._index.seed = int(rng.integers(2**31))
        self._index.build(computer.data)
        self._n = computer.n
        return self

    def select(self, query, rng):
        """Seed ids for one query (see class docstring)."""
        if self._n == 0:
            raise RuntimeError("strategy not fitted")
        cands = self._index.candidates(query, min_candidates=self.n_seeds)
        if cands.size == 0:  # empty buckets: fall back to random seeds
            cands = rng.choice(self._n, size=min(self.n_seeds, self._n), replace=False)
        return cands[: self.n_seeds * 2].astype(np.int64)

    def memory_bytes(self):
        """Bytes held by the auxiliary structure."""
        return self._index.memory_bytes()


class StackedNSWSeeds(SeedStrategy):
    """SN: hierarchical layers of diversified NSW graphs (HNSW, Eq. 1).

    Every node draws a maximum level ``floor(-ln(U) / ln(M))``; nodes with a
    positive level are inserted into small NSW graphs at layers ``1..level``,
    each built incrementally with RND pruning over the layer's members.  A
    query greedily descends the stack; the node reached at layer 1 and its
    base-graph neighbors become the seeds.
    """

    name = "SN"

    def __init__(self, max_degree: int = 16, ef_construction: int = 32):
        if max_degree < 2:
            raise ValueError("max_degree must be >= 2")
        self.max_degree = max_degree
        self.ef_construction = ef_construction
        self._layers: list[dict[int, np.ndarray]] = []
        self._entry: int | None = None
        self._base: Graph | None = None
        self._computer: DistanceComputer | None = None

    def fit(self, computer, graph, rng):
        """Build this strategy\'s auxiliary state over the graph."""
        self._computer = computer
        self._base = graph
        n = computer.n
        inv_log_m = 1.0 / math.log(self.max_degree)
        levels = np.floor(
            -np.log(rng.uniform(1e-12, 1.0, size=n)) * inv_log_m
        ).astype(np.int64)
        max_level = int(levels.max()) if n else 0
        self._layers = []
        entry: int | None = None
        for level in range(1, max_level + 1):
            members = np.flatnonzero(levels >= level)
            if members.size == 0:
                break
            layer = self._build_layer(members, rng)
            self._layers.append(layer)
            entry = int(members[0])
        # order layers top-down for descent; remember a top entry
        self._layers.reverse()
        if entry is None:
            entry = int(rng.integers(n)) if n else 0
        self._entry = entry
        return self

    def _build_layer(
        self, members: np.ndarray, rng: np.random.Generator
    ) -> dict[int, np.ndarray]:
        """Incrementally build one diversified NSW graph over ``members``."""
        from .diversification import rnd  # local import avoids cycle at module load

        computer = self._computer
        adjacency: dict[int, np.ndarray] = {int(members[0]): np.empty(0, np.int64)}
        for node in members[1:]:
            node = int(node)
            inserted = np.fromiter(adjacency.keys(), dtype=np.int64)
            entry = int(inserted[rng.integers(inserted.size)])
            ids, dists = self._layer_beam(adjacency, node, entry)
            kept = rnd(computer, ids, dists, self.max_degree)
            adjacency[node] = kept
            for nbr in kept:
                nbr = int(nbr)
                merged = np.concatenate([adjacency[nbr], [node]])
                if merged.size > self.max_degree:
                    dists_nbr = computer.one_to_many(nbr, merged)
                    merged = rnd(computer, merged, dists_nbr, self.max_degree)
                adjacency[nbr] = merged
        return adjacency

    def _layer_beam(
        self, adjacency: dict[int, np.ndarray], target: int, entry: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Beam search for ``target`` inside one layer's adjacency dict."""
        computer = self._computer
        query = computer.data[target]
        queue = NeighborQueue(self.ef_construction)
        visited = {entry}
        queue.insert(computer.one_to_query(entry, query), entry)
        while True:
            node = queue.pop_nearest_unexpanded()
            if node is None:
                break
            fresh = [int(x) for x in adjacency.get(node, ()) if int(x) not in visited]
            if not fresh:
                continue
            visited.update(fresh)
            dists = computer.to_query(np.asarray(fresh), query)
            bound = queue.worst_dist()
            for dist, nbr in zip(dists.tolist(), fresh):
                if dist < bound:
                    bound = queue.insert(dist, nbr)
        return queue.entries()

    def select(self, query, rng):
        """Seed ids for one query (see class docstring)."""
        if self._entry is None:
            raise RuntimeError("strategy not fitted")
        computer = self._computer
        current = self._entry
        current_dist = computer.one_to_query(current, query)
        for layer in self._layers:
            if current not in layer:
                current = next(iter(layer))
                current_dist = computer.one_to_query(current, query)
            improved = True
            while improved:
                improved = False
                nbrs = layer.get(current)
                if nbrs is None or nbrs.size == 0:
                    break
                dists = computer.to_query(nbrs, query)
                best = int(np.argmin(dists))
                if dists[best] < current_dist:
                    current = int(nbrs[best])
                    current_dist = float(dists[best])
                    improved = True
        seeds = np.concatenate([[current], self._base.neighbors(current)])
        return np.unique(seeds).astype(np.int64)

    def memory_bytes(self):
        """Bytes held by the auxiliary structure."""
        total = 0
        for layer in self._layers:
            total += sum(arr.nbytes + 32 for arr in layer.values())
        return total


SEED_STRATEGIES: dict[str, type[SeedStrategy]] = {
    "SF": FixedRandomSeeds,
    "MD": MedoidSeeds,
    "KS": RandomSampleSeeds,
    "KD": KDTreeSeeds,
    "KM": BKTreeSeeds,
    "LSH": LSHSeeds,
    "SN": StackedNSWSeeds,
}


def get_seed_strategy(name: str, **params) -> SeedStrategy:
    """Instantiate a strategy by its paper abbreviation (case-insensitive)."""
    key = name.upper()
    if key not in SEED_STRATEGIES:
        raise KeyError(
            f"unknown seed strategy {name!r}; choose from {sorted(SEED_STRATEGIES)}"
        )
    return SEED_STRATEGIES[key](**params)
