"""Persistence for proximity graphs.

Graphs are the expensive artifact of every method; persisting them lets a
downstream user build once and reload across sessions (the auxiliary seed
structures are cheap to re-fit).  The format is a single ``.npz`` holding
the CSR arrays plus a format version.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .graph import Graph

__all__ = ["save_graph", "load_graph"]

_FORMAT_VERSION = 1


def save_graph(graph: Graph, path: str | Path) -> Path:
    """Write ``graph`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    indptr, indices = graph.to_csr()
    np.savez_compressed(
        path,
        version=np.asarray([_FORMAT_VERSION]),
        n=np.asarray([graph.n]),
        indptr=indptr,
        indices=indices,
    )
    return path


def load_graph(path: str | Path) -> Graph:
    """Read a graph previously written by :func:`save_graph`.

    The CSR arrays are validated before any node is constructed (``indptr``
    monotone and consistent with ``n``/``indices``, every neighbor id inside
    ``[0, n)``), so a truncated or bit-flipped file fails loudly here instead
    of crashing a later search.  The rebuild itself is vectorized
    (``Graph.from_csr``, one ``np.split`` over a single int64 copy) because
    the parallel batch-query engine reloads graphs in every worker.
    """
    with np.load(path) as payload:
        version = int(payload["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported graph format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        n = int(payload["n"][0])
        indptr = payload["indptr"]
        indices = payload["indices"]
    if n < 0:
        raise ValueError(f"corrupt graph file: negative node count {n}")
    if indptr.shape[0] != n + 1:
        raise ValueError(
            f"corrupt graph file: indptr has {indptr.shape[0]} entries, "
            f"expected n + 1 = {n + 1}"
        )
    try:
        return Graph.from_csr(indptr, indices)
    except ValueError as exc:
        raise ValueError(f"corrupt graph file {Path(path)}: {exc}") from exc
