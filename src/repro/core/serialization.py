"""Persistence for proximity graphs and the beyond-RAM disk tier.

Graphs are the expensive artifact of every method; persisting them lets a
downstream user build once and reload across sessions (the auxiliary seed
structures are cheap to re-fit).  Two formats live here:

* a single ``.npz`` holding the CSR arrays plus a format version
  (:func:`save_graph` / :func:`load_graph` / :func:`load_csr_graph`) —
  version 2 also accepts :class:`~repro.core.graph.CSRGraph` inputs and
  int64 neighbor ids, for graphs past the int32 edge-count ceiling;
* a disk-tier directory (:func:`save_disk_tier` / :func:`open_disk_tier`)
  that stores the CSR arrays and raw float32 vectors as plain ``.npy``
  files — the one numpy container ``np.load(mmap_mode="r")`` can map
  without decompressing — next to resident PQ codes and codebooks, so a
  search touches disk only for graph adjacency rows and the final re-rank.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .distances import PQDistanceComputer
from .graph import CSRGraph, Graph, madvise_random

__all__ = [
    "save_graph",
    "load_graph",
    "load_csr_graph",
    "save_disk_tier",
    "open_disk_tier",
    "DiskTier",
]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

_TIER_MAGIC = "repro-disk-tier"
_TIER_VERSION = 1
_TIER_META = "meta.json"
_TIER_FILES = {
    "indptr": "indptr.npy",
    "indices": "indices.npy",
    "vectors": "vectors.npy",
    "codes": "codes.npy",
    "codebooks": "codebooks.npz",
    "index": "index.pkl",
}


def save_graph(graph: Graph | CSRGraph, path: str | Path) -> Path:
    """Write ``graph`` to ``path`` (``.npz`` appended if missing).

    Accepts either adjacency-list :class:`Graph` (flattened through
    ``to_csr``, which caps indices at int32) or an already-flat
    :class:`CSRGraph`, whose neighbor dtype — int32 or int64 — is preserved
    so graphs beyond the int32 edge ceiling round-trip losslessly.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    if isinstance(graph, CSRGraph):
        indptr, indices = graph.indptr, graph.indices
    else:
        indptr, indices = graph.to_csr()
    np.savez_compressed(
        path,
        version=np.asarray([_FORMAT_VERSION]),
        n=np.asarray([graph.n]),
        indptr=np.asarray(indptr, dtype=np.int64),
        indices=np.asarray(indices),
    )
    return path


def _read_graph_payload(path: str | Path) -> tuple[int, np.ndarray, np.ndarray]:
    """Shared loader: open, version-check, and shape-check a graph ``.npz``."""
    try:
        payload = np.load(path)
    except (OSError, ValueError) as exc:
        raise ValueError(
            f"cannot read graph file {Path(path)}: not an .npz archive "
            f"written by save_graph ({exc})"
        ) from exc
    with payload:
        if "version" not in payload:
            raise ValueError(
                f"unversioned graph file {Path(path)}: written before the "
                f"format header existed — rebuild and re-save the graph"
            )
        version = int(payload["version"][0])
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported graph format version {version} "
                f"(supported: {', '.join(map(str, _SUPPORTED_VERSIONS))})"
            )
        missing = [key for key in ("n", "indptr", "indices") if key not in payload]
        if missing:
            raise ValueError(
                f"corrupt graph file {Path(path)}: missing arrays {missing}"
            )
        n = int(payload["n"][0])
        indptr = payload["indptr"]
        indices = payload["indices"]
    if n < 0:
        raise ValueError(f"corrupt graph file: negative node count {n}")
    if indptr.shape[0] != n + 1:
        raise ValueError(
            f"corrupt graph file: indptr has {indptr.shape[0]} entries, "
            f"expected n + 1 = {n + 1}"
        )
    return n, indptr, indices


def load_csr_graph(path: str | Path) -> CSRGraph:
    """Read a graph written by :func:`save_graph` as a flat :class:`CSRGraph`.

    Same validation as :func:`load_graph` but skips the adjacency-list
    materialization — the natural form for the disk tier and the vectorized
    kernels, and the only loss-free one for int64-indexed graphs.
    """
    _, indptr, indices = _read_graph_payload(path)
    try:
        return CSRGraph(indptr, indices)
    except ValueError as exc:
        raise ValueError(f"corrupt graph file {Path(path)}: {exc}") from exc


def load_graph(path: str | Path) -> Graph:
    """Read a graph previously written by :func:`save_graph`.

    The CSR arrays are validated before any node is constructed (``indptr``
    monotone and consistent with ``n``/``indices``, every neighbor id inside
    ``[0, n)``), so a truncated or bit-flipped file fails loudly here instead
    of crashing a later search.  The rebuild itself is vectorized
    (``Graph.from_csr``, one ``np.split`` over a single int64 copy) because
    the parallel batch-query engine reloads graphs in every worker.
    """
    _, indptr, indices = _read_graph_payload(path)
    try:
        return Graph.from_csr(indptr, indices)
    except ValueError as exc:
        raise ValueError(f"corrupt graph file {Path(path)}: {exc}") from exc


# ----------------------------------------------------------------------
# disk tier: mmap-able directory format
# ----------------------------------------------------------------------
@dataclass
class DiskTier:
    """An opened disk-tier directory.

    ``graph`` and ``vectors`` are memory-mapped (unless opened with
    ``mmap=False``); ``computer`` holds the resident PQ codes/codebooks and
    owns the ``count`` / ``approx_calls`` / ``page_reads`` accounting.
    """

    directory: Path
    graph: CSRGraph
    vectors: np.ndarray
    computer: PQDistanceComputer
    meta: dict = field(repr=False)

    def resident_bytes(self) -> int:
        """Bytes that must stay in RAM: PQ codes plus codebooks."""
        return self.computer.memory_bytes()

    def file_bytes(self) -> int:
        """On-disk bytes of the memory-mapped files (graph + raw vectors)."""
        return sum(
            (self.directory / _TIER_FILES[key]).stat().st_size
            for key in ("indptr", "indices", "vectors")
        )

    def load_index(self):
        """Unpickle the index payload saved alongside the tier, if any."""
        path = self.directory / _TIER_FILES["index"]
        if not path.exists():
            raise FileNotFoundError(
                f"disk tier {self.directory} was saved without an index payload"
            )
        with open(path, "rb") as handle:
            return pickle.load(handle)


def save_disk_tier(
    directory: str | Path,
    graph: Graph | CSRGraph,
    data: np.ndarray,
    pq,
    codes: np.ndarray,
    index=None,
) -> Path:
    """Write a beyond-RAM search tier to ``directory``.

    Layout (all arrays as raw ``.npy`` so they can be ``np.memmap``-ed):

    * ``indptr.npy`` / ``indices.npy`` — the CSR proximity graph (int64
      offsets; neighbor dtype preserved);
    * ``vectors.npy`` — raw float32 dataset rows, read only at re-rank;
    * ``codes.npy`` / ``codebooks.npz`` — the resident PQ summary;
    * ``index.pkl`` — optional pickled index object (its dataset-sized
      state stripped; reattached via ``attach_disk_tier``);
    * ``meta.json`` — magic, format version, shapes and dtypes, checked
      before anything is mapped.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if isinstance(graph, CSRGraph):
        indptr, indices = graph.indptr, graph.indices
    else:
        indptr, indices = graph.to_csr()
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices)
    data = np.ascontiguousarray(data, dtype=np.float32)
    codes = np.ascontiguousarray(codes)
    n = indptr.shape[0] - 1
    if data.ndim != 2 or data.shape[0] != n:
        raise ValueError(
            f"graph has {n} nodes but data has shape {data.shape}"
        )
    if codes.shape != (n, pq.n_subspaces):
        raise ValueError(
            f"codes must be ({n}, {pq.n_subspaces}), got shape {codes.shape}"
        )
    if data.shape[1] != pq.dim:
        raise ValueError(
            f"data has dimensionality {data.shape[1]} but the product "
            f"quantizer was fit for {pq.dim}"
        )
    np.save(directory / _TIER_FILES["indptr"], indptr)
    np.save(directory / _TIER_FILES["indices"], indices)
    np.save(directory / _TIER_FILES["vectors"], data)
    np.save(directory / _TIER_FILES["codes"], codes)
    np.savez(
        directory / _TIER_FILES["codebooks"],
        **{f"book_{sub}": book for sub, book in enumerate(pq.codebooks)},
    )
    if index is not None:
        with open(directory / _TIER_FILES["index"], "wb") as handle:
            pickle.dump(index, handle)
    meta = {
        "magic": _TIER_MAGIC,
        "version": _TIER_VERSION,
        "n": int(n),
        "dim": int(data.shape[1]),
        "n_edges": int(indices.shape[0]),
        "indices_dtype": str(indices.dtype),
        "codes_dtype": str(codes.dtype),
        "pq_subspaces": int(pq.n_subspaces),
        "has_index": index is not None,
    }
    with open(directory / _TIER_META, "w") as handle:
        json.dump(meta, handle, indent=2)
    return directory


def open_disk_tier(directory: str | Path, mmap: bool = True) -> DiskTier:
    """Open a directory written by :func:`save_disk_tier`.

    With ``mmap=True`` (the default) the graph and raw vectors are
    memory-mapped — validation stays O(1) so opening never faults in the
    large files.  ``mmap=False`` loads everything into RAM, API-identical,
    for equivalence testing and small configs.
    """
    directory = Path(directory)
    meta_path = directory / _TIER_META
    if not meta_path.exists():
        raise ValueError(
            f"{directory} is not a disk-tier directory (no {_TIER_META})"
        )
    with open(meta_path) as handle:
        meta = json.load(handle)
    if meta.get("magic") != _TIER_MAGIC:
        raise ValueError(
            f"{directory} is not a disk-tier directory "
            f"(magic {meta.get('magic')!r}, expected {_TIER_MAGIC!r})"
        )
    version = meta.get("version")
    if version != _TIER_VERSION:
        raise ValueError(
            f"unsupported disk-tier format version {version} "
            f"(expected {_TIER_VERSION})"
        )
    # resident pieces are loaded eagerly; the big arrays stay on disk
    codes = np.load(directory / _TIER_FILES["codes"])
    with np.load(directory / _TIER_FILES["codebooks"]) as books:
        codebooks = [books[f"book_{sub}"] for sub in range(meta["pq_subspaces"])]
    # local import: summarization sits above core in the package layering
    from ..summarization.quantization import ProductQuantizer

    pq = ProductQuantizer(codebooks, meta["dim"])
    if mmap:
        graph = CSRGraph.mmap(
            directory / _TIER_FILES["indptr"], directory / _TIER_FILES["indices"]
        )
        vectors = np.load(directory / _TIER_FILES["vectors"], mmap_mode="r")
        madvise_random(vectors)
    else:
        graph = CSRGraph(
            np.load(directory / _TIER_FILES["indptr"]),
            np.load(directory / _TIER_FILES["indices"]),
        )
        vectors = np.load(directory / _TIER_FILES["vectors"])
    if graph.n != meta["n"] or graph.num_edges() != meta["n_edges"]:
        raise ValueError(
            f"corrupt disk tier {directory}: graph has {graph.n} nodes / "
            f"{graph.num_edges()} edges, meta says {meta['n']} / {meta['n_edges']}"
        )
    if vectors.shape != (meta["n"], meta["dim"]):
        raise ValueError(
            f"corrupt disk tier {directory}: vectors shape {vectors.shape} "
            f"does not match meta ({meta['n']}, {meta['dim']})"
        )
    computer = PQDistanceComputer(pq, codes, vectors)
    return DiskTier(
        directory=directory, graph=graph, vectors=vectors, computer=computer, meta=meta
    )
