"""Vectorized multi-query beam kernel (lockstep Algorithm 1 over a batch).

The scalar :func:`~repro.core.beam_search.beam_search` spends most of its
time in per-hop Python overhead — one ``to_query_prepared`` call plus a
Python-level insert loop per node expansion.  This module advances a whole
*batch* of queries per iteration instead, ParlayANN-style:

* every active query pops its nearest unexpanded beam entry (one ``argmax``
  across the batch);
* all popped nodes' neighbors are gathered into one flat array and
  deduplicated against per-query visited state with two fancy-indexing
  operations;
* the whole frontier is scored by **one** batched distance call
  (:meth:`~repro.core.distances.DistanceComputer.to_queries_segmented`),
  keeping the paper's distance accounting exact;
* the candidates are merged into per-query beam buffers kept in SoA layout
  (``(batch, L)`` distance/id/expanded arrays replacing per-query
  :class:`~repro.core.heap.NeighborQueue` objects) by a masked top-``L``
  merge.

**Determinism contract.**  For every query the kernel performs the same
expansions, scores the same nodes with bit-identical distances (each query
segment is evaluated by the same GEMV expression as the scalar path — GEMM
column blocking rounds differently and is deliberately avoided), and keeps
the same beam content, so answer ids, distances, hop counts, and per-query
distance-call totals are **bit-identical to the scalar reference path** at
any batch size, chunk size, worker count, and backend.  The vectorized merge
is exact whenever the merged distances are tie-free; rows containing ties
(duplicate vectors, duplicate adjacency entries) are replayed through
:func:`_merge_row`, a faithful transliteration of ``NeighborQueue``'s offer
semantics.

Backends (runtime-selected via ``REPRO_KERNEL`` or per call):

``python``
    Pure-numpy lockstep kernel described above.
``numba``
    Same lockstep loop with every per-row merge jitted (no tie fallback
    needed — the jitted merge replays offers exactly).  Auto-falls back to
    ``python`` with a warning when Numba is not installed.
``auto``
    ``numba`` when available, else ``python``.
``scalar``
    Not a batch kernel: callers run the accounting-faithful per-query
    reference path (:func:`beam_search` / :func:`batch_point_beam_search`).
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from .beam_search import (
    SearchResult,
    batch_point_beam_search,
    beam_search,
    normalize_exclude_masks,
    pad_top_k,
    pq_beam_search,
    prepare_seeds,
    rerank_topk,
)
from .distances import DistanceComputer
from .graph import CSRGraph

__all__ = [
    "KERNEL_BACKENDS",
    "have_numba",
    "resolve_backend",
    "batch_search",
    "batch_search_pq",
    "batch_point_search",
]

#: Recognized ``REPRO_KERNEL`` values.
KERNEL_BACKENDS = ("auto", "python", "numba", "scalar")

#: Default number of queries advanced in lockstep per chunk.  Bounds the
#: per-chunk visited-state footprint at ``chunk_size * graph.n`` bytes while
#: amortizing the per-iteration fixed cost; results are chunk-size-invariant.
DEFAULT_CHUNK_SIZE = 256

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    _HAVE_NUMBA = True
except ImportError:
    _numba = None
    _HAVE_NUMBA = False


def have_numba() -> bool:
    """Whether the jitted merge backend is importable in this environment."""
    return _HAVE_NUMBA


def resolve_backend(backend: str | None = None) -> str:
    """Resolve a backend name (or ``None`` = ``$REPRO_KERNEL`` = ``auto``).

    ``auto`` resolves to ``numba`` when available, else ``python``; an
    explicit ``numba`` request without Numba installed falls back to
    ``python`` with a warning instead of failing (results are identical by
    contract, only speed differs).
    """
    if backend is None:
        backend = os.environ.get("REPRO_KERNEL") or "auto"
    backend = backend.strip().lower()
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r}; expected one of {KERNEL_BACKENDS}"
        )
    if backend == "auto":
        return "numba" if _HAVE_NUMBA else "python"
    if backend == "numba" and not _HAVE_NUMBA:
        warnings.warn(
            "REPRO_KERNEL=numba requested but numba is not importable; "
            "falling back to the pure-python vectorized kernel "
            "(bit-identical results, lower throughput)",
            RuntimeWarning,
            stacklevel=2,
        )
        return "python"
    return backend


# ----------------------------------------------------------------------
# per-row merge: the NeighborQueue offer sequence as a flat function
# ----------------------------------------------------------------------
def _make_merge_row():
    def _merge_row(dists, ids, expanded, size, cand_dists, cand_ids, capacity):
        """Offer one candidate segment to one query's sorted beam row.

        Replays exactly what the scalar hot loop does with a
        ``NeighborQueue``: offers are processed in order under the evolving
        acceptance bound, kept sorted ascending with equal-distance inserts
        placed leftmost, duplicates rejected, and the tail evicted on
        overflow.  Mutates the row arrays in place and returns the new size.
        """
        if size == capacity:
            bound = dists[size - 1]
        else:
            bound = np.inf
        for t in range(cand_dists.shape[0]):
            dist = cand_dists[t]
            if dist >= bound:
                continue
            node = cand_ids[t]
            duplicate = False
            for p in range(size):
                if ids[p] == node:
                    duplicate = True
                    break
            if duplicate:
                continue
            pos = 0
            while pos < size and dists[pos] < dist:
                pos += 1
            if size == capacity:
                tail = size - 1
            else:
                tail = size
                size += 1
            p = tail
            while p > pos:
                dists[p] = dists[p - 1]
                ids[p] = ids[p - 1]
                expanded[p] = expanded[p - 1]
                p -= 1
            dists[pos] = dist
            ids[pos] = node
            expanded[pos] = False
            if size == capacity:
                bound = dists[size - 1]
        return size

    return _merge_row


_merge_row = _make_merge_row()
if _HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    _merge_row_jit = _numba.njit(nogil=True)(_make_merge_row())
else:
    _merge_row_jit = _merge_row


# ----------------------------------------------------------------------
# batched steps
# ----------------------------------------------------------------------
def _gather_frontier(graph, popped: np.ndarray):
    """Concatenated neighbor lists of ``popped`` plus per-node lengths.

    CSR graphs are gathered with pure array arithmetic; adjacency-list
    graphs fall back to one ``neighbors()`` call per popped node.
    """
    if isinstance(graph, CSRGraph):
        indptr = graph.indptr
        starts = indptr[popped]
        lens = indptr[popped + 1] - starts
        total = int(lens.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), lens
        offsets = np.cumsum(lens) - lens
        flat_pos = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, lens)
            + np.repeat(starts, lens)
        )
        return graph.indices[flat_pos].astype(np.int64, copy=False), lens
    lists = [graph.neighbors(int(node)) for node in popped]
    lens = np.asarray([nbrs.size for nbrs in lists], dtype=np.int64)
    if not lists:
        return np.empty(0, dtype=np.int64), lens
    return np.concatenate(lists), lens


class _MergeWorkspace:
    """Reusable scratch matrices for the vectorized merge.

    One hop's merge sorts ``(rows, capacity + max_count)`` matrices; reusing
    a grow-only allocation across the chunk's hops removes three array
    allocations plus three concatenations per iteration from the hot loop.
    """

    __slots__ = ("d", "i", "e")

    def __init__(self):
        self.d = self.i = self.e = None

    def take(self, n_rows: int, n_cols: int):
        if (
            self.d is None
            or self.d.shape[0] < n_rows
            or self.d.shape[1] < n_cols
        ):
            rows = n_rows if self.d is None else max(n_rows, self.d.shape[0])
            cols = n_cols if self.d is None else max(n_cols, self.d.shape[1])
            self.d = np.empty((rows, cols))
            self.i = np.empty((rows, cols), dtype=np.int64)
            self.e = np.empty((rows, cols), dtype=bool)
        return (
            self.d[:n_rows, :n_cols],
            self.i[:n_rows, :n_cols],
            self.e[:n_rows, :n_cols],
        )


def _merge_batch(
    beam_d, beam_i, beam_e, sizes, lanes, cand_d, cand_i, seg_starts, seg_stops,
    capacity, backend, ws, rows_rep=None,
):
    """Merge each lane's candidate segment into its beam row.

    Candidates at or beyond their lane's current acceptance bound (the
    worst kept distance of a full beam; ``inf`` while the beam has room —
    slots past ``sizes`` hold ``inf`` by invariant) are dropped up front:
    the offer sequence's bound is monotonically non-increasing, so such a
    candidate can never be accepted and removing it leaves the merged beam,
    sizes, and replay outcomes exactly unchanged.  Late in a search nearly
    every scored neighbor falls outside the bound, which keeps the sort
    width small.

    ``rows_rep`` (candidate row index per ``cand_d`` entry, i.e.
    ``np.repeat(arange(lanes.size), counts)``) may be passed in when the
    caller already has it from building the segments.
    """
    counts = seg_stops - seg_starts
    if rows_rep is None:
        rows_rep = np.repeat(np.arange(lanes.size), counts)
    keep = cand_d < beam_d[lanes, capacity - 1][rows_rep]
    if not keep.all():
        cand_d = cand_d[keep]
        cand_i = cand_i[keep]
        rows_rep = rows_rep[keep]
        counts = np.bincount(rows_rep, minlength=lanes.size)
        nonzero = counts > 0
        if not nonzero.all():
            # rows whose every candidate was filtered need no merge at all
            lanes = lanes[nonzero]
            counts = counts[nonzero]
            if not lanes.size:
                return
            # compact surviving rows' indices to 0..len(lanes)-1
            rows_rep = (np.cumsum(nonzero) - 1)[rows_rep]
        seg_stops = np.cumsum(counts)
        seg_starts = seg_stops - counts
    if backend == "numba":
        for r in range(lanes.size):
            start, stop = int(seg_starts[r]), int(seg_stops[r])
            if start == stop:
                continue
            lane = int(lanes[r])
            sizes[lane] = _merge_row_jit(
                beam_d[lane], beam_i[lane], beam_e[lane], int(sizes[lane]),
                cand_d[start:stop], cand_i[start:stop], capacity,
            )
        return
    _merge_batch_python(
        beam_d, beam_i, beam_e, sizes, lanes, cand_d, cand_i,
        seg_starts, seg_stops, capacity, ws, rows_rep,
    )


def _merge_batch_python(
    beam_d, beam_i, beam_e, sizes, lanes, cand_d, cand_i, seg_starts, seg_stops,
    capacity, ws, rows_rep,
):
    """Vectorized masked top-``L`` merge with an exact fallback on ties.

    With tie-free distances the dynamic offer sequence provably keeps
    exactly the ``L`` smallest distances of (old beam ∪ candidates), so one
    stable row-wise argsort over the concatenation reproduces the scalar
    queue bit-for-bit.  Rows whose merged head contains any equal adjacent
    distances (where insertion order and the strict acceptance bound start
    to matter) are replayed through :func:`_merge_row` instead.

    The candidate pad region reuses workspace memory without clearing ids:
    a stale id can only be "kept" behind an ``inf`` distance past the row's
    valid size, where finalize/pop/replay never read it.
    """
    counts = seg_stops - seg_starts
    max_count = int(counts.max()) if counts.size else 0
    if max_count == 0:
        return
    n_rows = lanes.size
    all_d, all_i, all_e = ws.take(n_rows, capacity + max_count)
    all_d[:, :capacity] = beam_d[lanes]
    all_i[:, :capacity] = beam_i[lanes]
    all_e[:, :capacity] = beam_e[lanes]
    all_d[:, capacity:] = np.inf
    all_e[:, capacity:] = True
    cols = (
        np.arange(cand_d.size, dtype=np.int64)
        - np.repeat(seg_starts, counts)
        + capacity
    )
    all_d[rows_rep, cols] = cand_d
    all_i[rows_rep, cols] = cand_i
    all_e[rows_rep, cols] = False

    order = np.argsort(all_d, axis=1, kind="stable")
    head_order = order[:, : capacity + 1]
    row_idx = np.arange(n_rows)[:, None]
    head = all_d[row_idx, head_order]

    old_sizes = sizes[lanes]
    valid = old_sizes + counts
    # pair p compares sorted positions (p, p+1); only pairs of real entries
    # (position p+1 < valid) can affect the kept beam or its order
    pair_real = np.arange(1, head.shape[1])[None, :] < np.minimum(
        valid, capacity + 1
    )[:, None]
    ties = ((head[:, 1:] == head[:, :-1]) & pair_real).any(axis=1)

    clean = ~ties
    if clean.any():
        clean_rows = np.flatnonzero(clean)[:, None]
        keep = head_order[:, :capacity]
        target = lanes[clean]
        beam_d[target] = head[clean, :capacity]
        beam_i[target] = all_i[clean_rows, keep[clean]]
        beam_e[target] = all_e[clean_rows, keep[clean]]
        sizes[target] = np.minimum(valid[clean], capacity)
    for r in np.flatnonzero(ties):
        start, stop = int(seg_starts[r]), int(seg_stops[r])
        lane = int(lanes[r])
        sizes[lane] = _merge_row(
            beam_d[lane], beam_i[lane], beam_e[lane], int(sizes[lane]),
            cand_d[start:stop], cand_i[start:stop], capacity,
        )


def _search_chunk(
    graph,
    computer: DistanceComputer,
    seeds_per_lane: list[np.ndarray],
    score_segments,
    k: int,
    beam_width: int,
    backend: str,
    exclude_masks: list | None = None,
) -> list[SearchResult]:
    """Run one lockstep chunk; lane ``j`` answers ``score_segments``'s query ``j``.

    ``exclude_masks`` — one mask (or ``None``) per lane, as produced by
    :func:`~repro.core.beam_search.normalize_exclude_masks` — only affects
    beam finalization: each masked lane's finished beam is filtered before
    the ``k`` truncation and padded to exactly ``k`` slots, mirroring
    :func:`~repro.core.beam_search.masked_top_k` bit-for-bit, so
    traversal, hops, and distance accounting are mask-invariant.
    """
    n_lanes = len(seeds_per_lane)
    beam_d = np.full((n_lanes, beam_width), np.inf)
    beam_i = np.full((n_lanes, beam_width), -1, dtype=np.int64)
    # slots at/after ``sizes[lane]`` hold no entry; flagging them expanded
    # lets pop/termination run without a separate validity mask
    beam_e = np.ones((n_lanes, beam_width), dtype=bool)
    sizes = np.zeros(n_lanes, dtype=np.int64)
    hops = np.zeros(n_lanes, dtype=np.int64)
    calls = np.zeros(n_lanes, dtype=np.int64)
    visited = np.zeros((n_lanes, graph.n), dtype=bool)
    ws = _MergeWorkspace()

    # ---- seed phase: one batched distance call over every lane's seeds ----
    seed_lens = np.asarray([s.size for s in seeds_per_lane], dtype=np.int64)
    flat_seeds = np.concatenate(seeds_per_lane)
    seg_stops = np.cumsum(seed_lens)
    seg_starts = seg_stops - seed_lens
    lanes_all = np.arange(n_lanes, dtype=np.int64)
    seed_dists = score_segments(flat_seeds, seg_starts, seg_stops, lanes_all)
    calls += seed_lens
    seed_rows = np.repeat(lanes_all, seed_lens)
    visited[seed_rows, flat_seeds] = True
    _merge_batch(
        beam_d, beam_i, beam_e, sizes, lanes_all, seed_dists, flat_seeds,
        seg_starts, seg_stops, beam_width, backend, ws, rows_rep=seed_rows,
    )

    # ---- lockstep hop loop ----
    active = lanes_all
    while active.size:
        rows_e = beam_e[active]
        # argmin of a bool row = first False = nearest unexpanded entry
        first = np.argmin(rows_e, axis=1)
        alive = ~rows_e[np.arange(active.size), first]
        active = active[alive]
        if not active.size:
            break
        first = first[alive]
        beam_e[active, first] = True
        popped = beam_i[active, first]
        hops[active] += 1

        nbr_flat, nbr_lens = _gather_frontier(graph, popped)
        if nbr_flat.size:
            owner_local = np.repeat(np.arange(active.size), nbr_lens)
            owner_lanes = active[owner_local]
            fresh_mask = ~visited[owner_lanes, nbr_flat]
            fresh = nbr_flat[fresh_mask]
            if fresh.size:
                fresh_lanes = owner_lanes[fresh_mask]
                fresh_rows = owner_local[fresh_mask]
                visited[fresh_lanes, fresh] = True
                counts = np.bincount(fresh_rows, minlength=active.size)
                seg_stops = np.cumsum(counts)
                seg_starts = seg_stops - counts
                dists = score_segments(fresh, seg_starts, seg_stops, active)
                calls[active] += counts
                _merge_batch(
                    beam_d, beam_i, beam_e, sizes, active, dists, fresh,
                    seg_starts, seg_stops, beam_width, backend, ws,
                    rows_rep=fresh_rows,
                )

    results = []
    for lane in range(n_lanes):
        size = int(sizes[lane])
        mask = None if exclude_masks is None else exclude_masks[lane]
        if mask is None:
            ids = beam_i[lane, :min(k, size)].copy()
            dists = beam_d[lane, :min(k, size)].copy()
        else:
            keep = ~mask[beam_i[lane, :size]]
            ids, dists = pad_top_k(
                beam_i[lane, :size][keep], beam_d[lane, :size][keep], k
            )
        results.append(
            SearchResult(
                ids=ids,
                dists=dists,
                distance_calls=int(calls[lane]),
                hops=int(hops[lane]),
            )
        )
    return results


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def batch_search(
    graph,
    computer: DistanceComputer,
    queries: np.ndarray,
    seeds_per_query,
    k: int,
    beam_width: int,
    backend: str | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    exclude_mask=None,
) -> list[SearchResult]:
    """Answer a batch of external queries with the multi-query beam kernel.

    Per-query answers, distances, hop counts, and distance-call totals are
    bit-identical to per-query :func:`beam_search` calls with the same
    seeds, at any ``chunk_size`` and backend.  ``backend="scalar"`` runs the
    reference path itself.  ``visited``/``visited_dists`` are not collected
    (builders that consume them use :func:`beam_search` directly).
    ``exclude_mask`` flags nodes to filter from the answers — one shared
    mask (the streaming tier's tombstones) or a per-query sequence (the
    filtered tier's predicates; see
    :func:`~repro.core.beam_search.normalize_exclude_masks`).  Flagged
    nodes are traversed, never returned (see :func:`beam_search`);
    traversal accounting is mask-invariant.
    """
    backend = resolve_backend(backend)
    if beam_width < k:
        raise ValueError(f"beam_width ({beam_width}) must be >= k ({k})")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    queries = np.atleast_2d(np.asarray(queries))
    seeds_list = [prepare_seeds(seeds, graph.n) for seeds in seeds_per_query]
    if len(seeds_list) != queries.shape[0]:
        raise ValueError(
            f"queries and seeds_per_query disagree: {queries.shape[0]} queries "
            f"vs {len(seeds_list)} seed lists"
        )
    masks = normalize_exclude_masks(exclude_mask, len(seeds_list), graph.n)
    if backend == "scalar":
        scratch = np.zeros(graph.n, dtype=bool)
        return [
            beam_search(
                graph, computer, query, seeds, k, beam_width,
                visited_mask=scratch,
                exclude_mask=None if masks is None else masks[j],
            )
            for j, (query, seeds) in enumerate(zip(queries, seeds_list))
        ]

    prepared = [computer.prepare_query(query) for query in queries]
    q64s = np.ascontiguousarray([q for q, _ in prepared])
    q_sqs = np.asarray([q_sq for _, q_sq in prepared])
    results: list[SearchResult] = []
    for start in range(0, len(seeds_list), chunk_size):
        stop = min(start + chunk_size, len(seeds_list))

        def score(ids, seg_starts, seg_stops, lanes, _start=start):
            sel = _start + lanes
            return computer.to_queries_segmented(
                ids, seg_starts, seg_stops, q64s[sel], q_sqs[sel]
            )

        results.extend(
            _search_chunk(
                graph, computer, seeds_list[start:stop], score, k, beam_width,
                backend,
                exclude_masks=None if masks is None else masks[start:stop],
            )
        )
    return results


def batch_search_pq(
    graph,
    computer,
    queries: np.ndarray,
    seeds_per_query,
    k: int,
    beam_width: int,
    backend: str | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> list[SearchResult]:
    """Disk-tier variant of :func:`batch_search`: PQ-guided beam + exact re-rank.

    ``computer`` is a :class:`~repro.core.distances.PQDistanceComputer`.
    Phase one runs the same lockstep kernel as :func:`batch_search` with one
    difference — the batched scoring call is a segmented ADC table gather
    over the resident PQ codes (:meth:`PQDistanceComputer.lut_segmented`),
    so the traversal touches the memory-mapped files only for graph
    adjacency rows.  Phase two re-ranks each query's *full* final beam
    (the kernel is run with ``k = beam_width``) with one batched exact read
    from the raw-vector mmap, via the same :func:`rerank_topk` helper as the
    scalar reference path.

    Answers, exact/approx distance-call totals, hop counts, and page-read
    counts are bit-identical to per-query :func:`pq_beam_search` calls at
    any ``chunk_size``, worker count, and backend (``"scalar"`` runs the
    reference path itself).
    """
    backend = resolve_backend(backend)
    if beam_width < k:
        raise ValueError(f"beam_width ({beam_width}) must be >= k ({k})")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    queries = np.atleast_2d(np.asarray(queries))
    seeds_list = [prepare_seeds(seeds, graph.n) for seeds in seeds_per_query]
    if len(seeds_list) != queries.shape[0]:
        raise ValueError(
            f"queries and seeds_per_query disagree: {queries.shape[0]} queries "
            f"vs {len(seeds_list)} seed lists"
        )
    if backend == "scalar":
        scratch = np.zeros(graph.n, dtype=bool)
        return [
            pq_beam_search(
                graph, computer, query, seeds, k, beam_width,
                visited_mask=scratch,
            )
            for query, seeds in zip(queries, seeds_list)
        ]

    # one ADC lookup table per query, stacked so the scoring closure is a
    # single 3-D gather; inf-padding makes ragged codebook sizes safe
    luts = np.ascontiguousarray([computer.build_lut(query) for query in queries])
    results: list[SearchResult] = []
    for start in range(0, len(seeds_list), chunk_size):
        stop = min(start + chunk_size, len(seeds_list))

        def score(ids, seg_starts, seg_stops, lanes, _start=start):
            return computer.lut_segmented(
                ids, seg_starts, seg_stops, luts, _start + lanes
            )

        # k = beam_width: phase one must surface the whole beam for re-rank
        beams = _search_chunk(
            graph, computer, seeds_list[start:stop], score, beam_width,
            beam_width, backend,
        )
        for offset, beam in enumerate(beams):
            computer.note_graph_reads(beam.hops)
            ids, dists = rerank_topk(
                computer, queries[start + offset], beam.ids, k
            )
            results.append(
                SearchResult(
                    ids=ids,
                    dists=dists,
                    distance_calls=int(beam.ids.size),
                    hops=beam.hops,
                    approx_calls=beam.distance_calls,
                    page_reads=beam.hops + int(beam.ids.size),
                )
            )
    return results


def batch_point_search(
    graph,
    computer: DistanceComputer,
    points,
    seeds_per_point,
    k: int,
    beam_width: int,
    backend: str | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    exclude_mask=None,
) -> list[SearchResult]:
    """Kernel variant of :func:`batch_point_beam_search` (queries are dataset
    points given by id; cached squared norms cover both sides).

    Bit-identical to :func:`batch_point_beam_search` per point at any chunk
    size and backend.  ``exclude_mask`` flags nodes to filter from the
    answers (one shared mask or a per-point sequence): traversed, never
    returned; traversal accounting is mask-invariant.
    """
    backend = resolve_backend(backend)
    if backend == "scalar":
        return batch_point_beam_search(
            graph, computer, points, seeds_per_point, k, beam_width,
            exclude_mask=exclude_mask,
        )
    if beam_width < k:
        raise ValueError(f"beam_width ({beam_width}) must be >= k ({k})")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    points = np.asarray(list(points), dtype=np.int64)
    seeds_list = [prepare_seeds(seeds, graph.n) for seeds in seeds_per_point]
    if len(seeds_list) != points.shape[0]:
        raise ValueError(
            f"points and seeds_per_point disagree: {points.shape[0]} points "
            f"vs {len(seeds_list)} seed lists"
        )
    masks = normalize_exclude_masks(exclude_mask, len(seeds_list), graph.n)
    results: list[SearchResult] = []
    for start in range(0, len(seeds_list), chunk_size):
        stop = min(start + chunk_size, len(seeds_list))
        chunk_points = points[start:stop]

        def score(ids, seg_starts, seg_stops, lanes, _points=chunk_points):
            return computer.points_to_many_segmented(
                _points[lanes], ids, seg_starts, seg_stops
            )

        results.extend(
            _search_chunk(
                graph, computer, seeds_list[start:stop], score, k, beam_width,
                backend,
                exclude_masks=None if masks is None else masks[start:stop],
            )
        )
    return results
