"""core subpackage of the repro library."""
