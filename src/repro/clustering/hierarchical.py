"""Random hierarchical clustering — HCNNG's dataset divider.

HCNNG (Section 3.6) repeatedly divides the dataset with *random* hierarchical
clusterings: at each level two random pivot points are drawn and every point
joins the side of its nearer pivot, recursing until clusters reach
``min_cluster_size``.  Repeating the division with fresh randomness yields
overlapping cluster systems whose per-cluster MSTs are merged.
"""

from __future__ import annotations

import numpy as np

from ..core.distances import DistanceComputer

__all__ = ["random_bisection_clusters"]


def random_bisection_clusters(
    computer: DistanceComputer,
    min_cluster_size: int,
    rng: np.random.Generator,
    ids: np.ndarray | None = None,
) -> list[np.ndarray]:
    """One random hierarchical division of ``ids`` into small clusters.

    Parameters
    ----------
    computer:
        Distance engine (pivot assignments are counted distance work).
    min_cluster_size:
        Recursion stops when a cluster has at most this many points.
    rng:
        Randomness for pivot choices.
    ids:
        Subset to divide; the whole dataset when omitted.

    Returns
    -------
    list of id arrays, each of size ``<= min_cluster_size`` (modulo
    degenerate splits, which are halved arbitrarily).
    """
    if min_cluster_size < 2:
        raise ValueError("min_cluster_size must be >= 2")
    if ids is None:
        ids = np.arange(computer.n, dtype=np.int64)
    ids = np.asarray(ids, dtype=np.int64)
    clusters: list[np.ndarray] = []
    stack: list[np.ndarray] = [ids]
    while stack:
        current = stack.pop()
        if current.size <= min_cluster_size:
            clusters.append(current)
            continue
        picks = rng.choice(current.size, size=2, replace=False)
        pivot_a, pivot_b = int(current[picks[0]]), int(current[picks[1]])
        dist_a = computer.one_to_many(pivot_a, current)
        dist_b = computer.one_to_many(pivot_b, current)
        side_a = dist_a <= dist_b
        if side_a.all() or not side_a.any():  # duplicate pivots; halve
            side_a = np.zeros(current.size, dtype=bool)
            side_a[: current.size // 2] = True
        stack.append(current[side_a])
        stack.append(current[~side_a])
    return clusters
