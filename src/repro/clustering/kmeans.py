"""k-means and balanced k-means clustering.

Substrate for the Balanced K-means Trees used by SPTAG-BKT (Section 3.3,
strategy "KM") and for codebook training in the quantization summarizers.
The balanced variant follows Malinen & Fränti's size-constrained assignment:
points are assigned in order of their assignment cost so that no cluster
exceeds ``ceil(n / k)`` members.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KMeansResult", "kmeans", "balanced_kmeans"]


@dataclass
class KMeansResult:
    """Clustering outcome: centroids, per-point labels, inertia, iterations."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    iterations: int


def _init_centroids(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ style seeding (distance-proportional sampling)."""
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = data[first]
    closest_sq = ((data - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            pick = int(rng.integers(n))
        else:
            pick = int(rng.choice(n, p=closest_sq / total))
        centroids[i] = data[pick]
        cand_sq = ((data - centroids[i]) ** 2).sum(axis=1)
        np.minimum(closest_sq, cand_sq, out=closest_sq)
    return centroids


def _assignment_distances(data: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    sq = (
        (data**2).sum(axis=1)[:, None]
        - 2.0 * (data @ centroids.T)
        + (centroids**2).sum(axis=1)[None, :]
    )
    np.maximum(sq, 0.0, out=sq)
    return sq


def kmeans(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 25,
    tol: float = 1e-4,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ initialization.

    Empty clusters are re-seeded from the point farthest from its centroid.
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    centroids = _init_centroids(data, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    prev_inertia = np.inf
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        sq = _assignment_distances(data, centroids)
        labels = sq.argmin(axis=1)
        inertia = float(sq[np.arange(n), labels].sum())
        for cluster in range(k):
            members = labels == cluster
            if members.any():
                centroids[cluster] = data[members].mean(axis=0)
            else:
                farthest = int(sq[np.arange(n), labels].argmax())
                centroids[cluster] = data[farthest]
                labels[farthest] = cluster
        if prev_inertia - inertia <= tol * max(prev_inertia, 1.0):
            break
        prev_inertia = inertia
    sq = _assignment_distances(data, centroids)
    labels = sq.argmin(axis=1)
    inertia = float(sq[np.arange(n), labels].sum())
    return KMeansResult(centroids=centroids, labels=labels, inertia=inertia, iterations=iterations)


def balanced_kmeans(
    data: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iterations: int = 25,
) -> KMeansResult:
    """Size-constrained k-means: no cluster exceeds ``ceil(n / k)`` points.

    Assignment sweeps points in order of how much they would regret not
    getting their closest centroid, granting each its best still-open
    cluster — the greedy form of Malinen & Fränti's balanced k-means used
    by SPTAG's BKT.
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    cap = -(-n // k)  # ceil
    centroids = _init_centroids(data, k, rng)
    labels = np.zeros(n, dtype=np.int64)
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        sq = _assignment_distances(data, centroids)
        # regret = cost of second choice minus cost of first choice
        order2 = np.partition(sq, 1, axis=1)
        regret = order2[:, 1] - order2[:, 0]
        counts = np.zeros(k, dtype=np.int64)
        new_labels = np.full(n, -1, dtype=np.int64)
        for point in np.argsort(-regret, kind="stable"):
            for cluster in np.argsort(sq[point], kind="stable"):
                if counts[cluster] < cap:
                    new_labels[point] = cluster
                    counts[cluster] += 1
                    break
        if (new_labels == labels).all() and iterations > 1:
            labels = new_labels
            break
        labels = new_labels
        for cluster in range(k):
            members = labels == cluster
            if members.any():
                centroids[cluster] = data[members].mean(axis=0)
    sq = _assignment_distances(data, centroids)
    inertia = float(sq[np.arange(n), labels].sum())
    return KMeansResult(centroids=centroids, labels=labels, inertia=inertia, iterations=iterations)
