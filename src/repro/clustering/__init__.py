"""clustering subpackage of the repro library."""
