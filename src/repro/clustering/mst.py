"""Minimum spanning trees with degree caps — HCNNG's per-cluster graphs.

HCNNG (Section 3.6) builds one MST per cluster of each random hierarchical
clustering and merges all MST edges into the final graph.  Following the
original method, the MST is degree-bounded: an edge is skipped when either
endpoint already reached ``max_degree``, which keeps the merged graph sparse.
"""

from __future__ import annotations

import numpy as np

from ..core.distances import DistanceComputer

__all__ = ["mst_edges", "degree_bounded_mst"]


def mst_edges(
    computer: DistanceComputer, ids: np.ndarray
) -> list[tuple[int, int, float]]:
    """Exact MST of the complete Euclidean graph over ``ids`` (Prim).

    Distances are evaluated (and counted) as a dense block, matching how
    HCNNG computes per-cluster MSTs on small leaves.  Returns edges as
    ``(id_a, id_b, distance)`` triples.
    """
    ids = np.asarray(ids, dtype=np.int64)
    m = ids.size
    if m <= 1:
        return []
    dists = computer.many_to_many(ids, ids)
    in_tree = np.zeros(m, dtype=bool)
    in_tree[0] = True
    best_dist = dists[0].copy()
    best_from = np.zeros(m, dtype=np.int64)
    best_dist[0] = np.inf
    edges: list[tuple[int, int, float]] = []
    for _ in range(m - 1):
        nxt = int(np.argmin(np.where(in_tree, np.inf, best_dist)))
        edges.append((int(ids[best_from[nxt]]), int(ids[nxt]), float(best_dist[nxt])))
        in_tree[nxt] = True
        improved = dists[nxt] < best_dist
        improved &= ~in_tree
        best_dist[improved] = dists[nxt][improved]
        best_from[improved] = nxt
    return edges


def degree_bounded_mst(
    computer: DistanceComputer,
    ids: np.ndarray,
    max_degree: int = 3,
) -> list[tuple[int, int]]:
    """Kruskal-style MST that skips edges saturating a ``max_degree`` cap.

    This is HCNNG's variant: edges are considered in ascending weight; an
    edge joining two components is accepted only while both endpoints are
    below the cap.  The result is a spanning forest whose components are
    usually one tree, with every node's degree at most ``max_degree``.
    """
    if max_degree < 1:
        raise ValueError("max_degree must be >= 1")
    ids = np.asarray(ids, dtype=np.int64)
    m = ids.size
    if m <= 1:
        return []
    dists = computer.many_to_many(ids, ids)
    iu = np.triu_indices(m, k=1)
    order = np.argsort(dists[iu], kind="stable")
    parent = np.arange(m)

    def find(x: int) -> int:
        """Union-find root with path halving."""
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    degree = np.zeros(m, dtype=np.int64)
    edges: list[tuple[int, int]] = []
    for idx in order:
        a = int(iu[0][idx])
        b = int(iu[1][idx])
        if degree[a] >= max_degree or degree[b] >= max_degree:
            continue
        root_a, root_b = find(a), find(b)
        if root_a == root_b:
            continue
        parent[root_a] = root_b
        degree[a] += 1
        degree[b] += 1
        edges.append((int(ids[a]), int(ids[b])))
        if len(edges) == m - 1:
            break
    return edges
