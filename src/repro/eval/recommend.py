"""Method recommendations — Figure 18's decision tree.

The paper closes with a practitioner's flowchart: dataset size and hardness
(plus desired recall) select the methods expected to perform best.  This
module encodes that tree so the recommendation bench can both print it and
cross-check it against measured results.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Recommendation", "recommend", "HARD_DATASETS"]

#: Datasets the paper characterizes as hard (high LID / low LRC, Figure 4).
HARD_DATASETS = frozenset(
    {"seismic", "text2img", "randpow0", "randpow5", "randpow50"}
)


@dataclass(frozen=True)
class Recommendation:
    """Methods suggested for one (size, hardness) regime."""

    methods: tuple[str, ...]
    rationale: str


def recommend(
    dataset_size: int,
    hard: bool,
    large_threshold: int | None = None,
    tier_100gb_equivalent: int = 30_000,
) -> Recommendation:
    """Figure 18: pick methods from dataset size and workload hardness.

    Parameters
    ----------
    dataset_size:
        Number of vectors to index.
    hard:
        Whether the dataset/workload is hard (high LID, low LRC, or noisy
        queries) — see :data:`HARD_DATASETS` and
        :mod:`repro.datasets.complexity`.
    large_threshold:
        Size at which the "large dataset" branch applies; defaults to this
        reproduction's 100GB-equivalent tier.
    tier_100gb_equivalent:
        The scaled-down point count standing in for the paper's 100GB.
    """
    if dataset_size <= 0:
        raise ValueError("dataset_size must be positive")
    threshold = large_threshold if large_threshold is not None else tier_100gb_equivalent
    if dataset_size >= threshold:
        return Recommendation(
            methods=("HNSW", "ELPIS"),
            rationale=(
                "Large datasets (>=100GB in the paper): only II-based methods "
                "scale; HNSW and ELPIS consistently rank top (Figs. 14, 16)."
            ),
        )
    if hard:
        return Recommendation(
            methods=("ELPIS", "SPTAG-BKT", "HCNNG"),
            rationale=(
                "Small/medium but hard datasets: DC-based methods win because "
                "per-partition graphs localize the beam search "
                "(Figs. 12d, 13c, 13e, 13f, 15)."
            ),
        )
    return Recommendation(
        methods=("HNSW", "NSG", "SSG"),
        rationale=(
            "Small/medium easy datasets: ND-based methods with strong seed "
            "selection dominate (Figs. 12a, 12b, 12e, 12f)."
        ),
    )
