"""Accuracy and efficiency metrics — Section 4.1, "Measures".

The paper reports *Recall* (fraction of true nearest neighbors returned),
*wall clock time*, and *distance calculations* for both indexing and query
answering.  Ground truth comes from the exact brute-force baseline.
"""

from __future__ import annotations

import numpy as np

from ..core.distances import DistanceComputer

__all__ = ["recall", "ground_truth", "mean_recall"]


def recall(returned_ids: np.ndarray, true_ids: np.ndarray) -> float:
    """Fraction of the true k-NN ids present in the returned ids.

    Follows the paper's definition: ``|returned ∩ true| / k`` with
    ``k = len(true_ids)``.
    """
    true_ids = np.asarray(true_ids).ravel()
    if true_ids.size == 0:
        raise ValueError("true_ids must be non-empty")
    returned = set(np.asarray(returned_ids).ravel().tolist())
    hits = sum(1 for t in true_ids.tolist() if t in returned)
    return hits / true_ids.size


def mean_recall(returned: list[np.ndarray], truth: list[np.ndarray]) -> float:
    """Average recall over a query workload."""
    if len(returned) != len(truth):
        raise ValueError("returned and truth workloads must align")
    if not returned:
        raise ValueError("empty workload")
    return float(np.mean([recall(r, t) for r, t in zip(returned, truth)]))


def ground_truth(
    data: np.ndarray, queries: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact k-NN ids and distances of each query by brute force.

    Returns ``(ids, dists)`` of shape ``(n_queries, k)``.  Not charged to
    any index's accounting (a throwaway computer is used).
    """
    computer = DistanceComputer(data)
    queries = np.atleast_2d(np.asarray(queries))
    ids = np.empty((queries.shape[0], min(k, computer.n)), dtype=np.int64)
    dists = np.empty_like(ids, dtype=np.float64)
    for row, query in enumerate(queries):
        ids[row], dists[row] = computer.exact_knn(query, k)
    return ids, dists
