"""Accuracy and efficiency metrics — Section 4.1, "Measures".

The paper reports *Recall* (fraction of true nearest neighbors returned),
*wall clock time*, and *distance calculations* for both indexing and query
answering.  Ground truth comes from the exact brute-force baseline.
"""

from __future__ import annotations

import numpy as np

from ..core.distances import DistanceComputer

__all__ = ["recall", "ground_truth", "filtered_ground_truth", "mean_recall"]


def recall(returned_ids: np.ndarray, true_ids: np.ndarray) -> float:
    """Fraction of the true k-NN ids present in the returned ids.

    Follows the paper's definition: ``|returned ∩ true| / |true|``.  Both
    sides are treated as *sets*: a duplicated id in ``true_ids`` (possible
    when a ground-truth generator resolves distance ties inconsistently)
    counts once in the denominator and at most once as a hit, so recall
    stays in ``[0, 1]`` and a single returned id can never be credited
    twice.

    Negative ids on either side are sentinel padding (masked searches and
    filtered ground truth pad to exactly ``k`` slots with ``PAD_ID = -1``
    when fewer than ``k`` answers exist) and are stripped before
    comparison: a padded slot is neither a hit nor a miss.  A query whose
    *ground truth* is entirely padding (no point satisfies the filter) has
    recall 1.0 by convention — there was nothing to find.
    """
    true_raw = np.asarray(true_ids).ravel()
    if true_raw.size == 0:
        raise ValueError("true_ids must be non-empty")
    true = np.unique(true_raw)
    true = true[true >= 0]
    if true.size == 0:
        return 1.0  # ground truth is all padding: nothing satisfies the filter
    returned = np.asarray(returned_ids).ravel()
    returned = set(returned[returned >= 0].tolist())
    hits = sum(1 for t in true.tolist() if t in returned)
    return hits / true.size


def mean_recall(returned: list[np.ndarray], truth: list[np.ndarray]) -> float:
    """Average recall over a query workload."""
    if len(returned) != len(truth):
        raise ValueError("returned and truth workloads must align")
    if not returned:
        raise ValueError("empty workload")
    return float(np.mean([recall(r, t) for r, t in zip(returned, truth)]))


def ground_truth(
    data: np.ndarray, queries: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact k-NN ids and distances of each query by brute force.

    Returns ``(ids, dists)`` of shape ``(n_queries, k)``.  Not charged to
    any index's accounting (a throwaway computer is used).

    Raises
    ------
    ValueError
        If ``k`` exceeds the dataset size — a silently narrower answer
        matrix would mis-align every caller zipping against ``k``-wide
        index answers.
    """
    computer = DistanceComputer(data)
    if k > computer.n:
        raise ValueError(
            f"k={k} exceeds the dataset size n={computer.n}; "
            "ground truth cannot be truncated without mis-aligning callers"
        )
    queries = np.atleast_2d(np.asarray(queries))
    return computer.exact_knn_batch(queries, k)


def filtered_ground_truth(
    data: np.ndarray, queries: np.ndarray, k: int, allow_masks
) -> tuple[np.ndarray, np.ndarray]:
    """Exact k-NN restricted to each query's allowed points, by brute force.

    ``allow_masks`` is one boolean mask per query (True = the point
    satisfies the query's predicate); each row of the result ranks only the
    allowed points.  A query with fewer than ``k`` allowed points gets its
    row padded with ``(-1, inf)`` — the same sentinel convention as the
    masked search paths — so the answer matrix is always ``(n_queries, k)``
    and :func:`recall` aligns rows without special cases.

    Ties at equal distance are broken by ascending id (a total order), so
    the ground truth is independent of mask layout and iteration order —
    the determinism the cross-process regression tests pin.
    """
    computer = DistanceComputer(data)
    queries = np.atleast_2d(np.asarray(queries))
    masks = list(allow_masks)
    if len(masks) != queries.shape[0]:
        raise ValueError(
            f"allow_masks disagree with the workload: {len(masks)} masks "
            f"vs {queries.shape[0]} queries"
        )
    ids = np.full((queries.shape[0], k), -1, dtype=np.int64)
    dists = np.full((queries.shape[0], k), np.inf)
    for j in range(queries.shape[0]):
        mask = np.asarray(masks[j], dtype=bool)
        if mask.shape != (computer.n,):
            raise ValueError(
                f"allow mask {j} has shape {mask.shape}, "
                f"expected ({computer.n},)"
            )
        allowed = np.flatnonzero(mask)
        if allowed.size == 0:
            continue
        q64, q_sq = computer.prepare_query(queries[j])
        d = computer.to_query_prepared(allowed, q64, q_sq)
        order = np.lexsort((allowed, d))[: min(k, allowed.size)]
        ids[j, : order.size] = allowed[order]
        dists[j, : order.size] = d[order]
    return ids, dists
