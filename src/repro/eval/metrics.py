"""Accuracy and efficiency metrics — Section 4.1, "Measures".

The paper reports *Recall* (fraction of true nearest neighbors returned),
*wall clock time*, and *distance calculations* for both indexing and query
answering.  Ground truth comes from the exact brute-force baseline.
"""

from __future__ import annotations

import numpy as np

from ..core.distances import DistanceComputer

__all__ = ["recall", "ground_truth", "mean_recall"]


def recall(returned_ids: np.ndarray, true_ids: np.ndarray) -> float:
    """Fraction of the true k-NN ids present in the returned ids.

    Follows the paper's definition: ``|returned ∩ true| / |true|``.  Both
    sides are treated as *sets*: a duplicated id in ``true_ids`` (possible
    when a ground-truth generator resolves distance ties inconsistently)
    counts once in the denominator and at most once as a hit, so recall
    stays in ``[0, 1]`` and a single returned id can never be credited
    twice.
    """
    true = np.unique(np.asarray(true_ids).ravel())
    if true.size == 0:
        raise ValueError("true_ids must be non-empty")
    returned = set(np.asarray(returned_ids).ravel().tolist())
    hits = sum(1 for t in true.tolist() if t in returned)
    return hits / true.size


def mean_recall(returned: list[np.ndarray], truth: list[np.ndarray]) -> float:
    """Average recall over a query workload."""
    if len(returned) != len(truth):
        raise ValueError("returned and truth workloads must align")
    if not returned:
        raise ValueError("empty workload")
    return float(np.mean([recall(r, t) for r, t in zip(returned, truth)]))


def ground_truth(
    data: np.ndarray, queries: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact k-NN ids and distances of each query by brute force.

    Returns ``(ids, dists)`` of shape ``(n_queries, k)``.  Not charged to
    any index's accounting (a throwaway computer is used).

    Raises
    ------
    ValueError
        If ``k`` exceeds the dataset size — a silently narrower answer
        matrix would mis-align every caller zipping against ``k``-wide
        index answers.
    """
    computer = DistanceComputer(data)
    if k > computer.n:
        raise ValueError(
            f"k={k} exceeds the dataset size n={computer.n}; "
            "ground truth cannot be truncated without mis-aligning callers"
        )
    queries = np.atleast_2d(np.asarray(queries))
    return computer.exact_knn_batch(queries, k)
