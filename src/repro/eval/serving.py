"""Concurrent serving front end over the streaming index tier.

:class:`ServingEngine` turns :class:`~repro.core.streaming.StreamingIndex`
into an online service shape: callers ``await engine.search(q)`` while a
background batcher coalesces concurrent requests into micro-batches for the
vectorized multi-query beam kernel, and ``insert`` / ``delete`` /
``consolidate`` interleave with query traffic under a mutation lock.

Two properties keep the serving layer *transparent* — answers are exactly
what the offline protocol would produce, regardless of traffic shape:

* **Content-addressed randomness.**  A query's seed-selection RNG is keyed
  to CRC-32 of its float32 bytes (via ``run_batch``'s ``seed_indices``), not
  to its position in whatever micro-batch it landed in.  Identical queries
  therefore get identical answers whether they arrive alone, together, or in
  different batch compositions.
* **Version-keyed caching.**  The LRU answer cache keys on
  ``(query bytes, k, beam width, index.version)``; every mutation bumps the
  index version, so a cache hit can only ever return the answer the current
  graph state would produce.  Hits are free and provably answer-preserving;
  the cache never needs explicit invalidation.

Latency is recorded per request from enqueue to completion (queueing +
batching delay + kernel time), so the p50/p95/p99 figures reflect what a
caller actually observed under mixed load.
"""

from __future__ import annotations

import asyncio
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .parallel import run_batch
from .runner import QueryMeasurement

__all__ = ["ServingEngine", "ServingReport", "query_seed_index"]


def query_seed_index(query: np.ndarray) -> int:
    """Deterministic RNG index for a query, derived from its content.

    CRC-32 over the contiguous float32 bytes (the same checksum the dataset
    loader uses for cache keys).  Two bit-identical queries map to the same
    seed index, which is what makes cached answers and micro-batched answers
    indistinguishable from sequential ones.
    """
    return int(zlib.crc32(np.ascontiguousarray(query, dtype=np.float32).tobytes()))


@dataclass
class ServingReport:
    """Client-observed accounting for one engine lifetime (or interval)."""

    n_queries: int = 0
    n_batches: int = 0
    cache_hits: int = 0
    total_distance_calls: int = 0
    wall_time_s: float = 0.0
    latencies_s: list = field(default_factory=list)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.n_queries if self.n_queries else 0.0

    @property
    def mean_batch_size(self) -> float:
        served = self.n_queries - self.cache_hits
        return served / self.n_batches if self.n_batches else 0.0

    @property
    def qps(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.n_queries / self.wall_time_s

    def percentile_s(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    def measurement(self, recall: float, beam_width: int) -> QueryMeasurement:
        """Fold into the standard reporting row (client-observed latency)."""
        lat = np.asarray(self.latencies_s) if self.latencies_s else np.zeros(1)
        return QueryMeasurement(
            beam_width=beam_width,
            recall=recall,
            mean_distance_calls=(
                self.total_distance_calls / self.n_queries if self.n_queries else 0.0
            ),
            mean_hops=0.0,
            mean_time_s=float(lat.mean()),
            p50_time_s=self.percentile_s(50),
            p95_time_s=self.percentile_s(95),
            p99_time_s=self.percentile_s(99),
            qps=self.qps,
            total_distance_calls=self.total_distance_calls,
            wall_time_s=self.wall_time_s,
        )


@dataclass
class _Pending:
    """One enqueued query awaiting its micro-batch."""

    query: np.ndarray
    k: int
    beam_width: int
    future: asyncio.Future
    enqueued_at: float


class ServingEngine:
    """Micro-batching async front end with an answer-preserving LRU cache.

    Parameters
    ----------
    index:
        A built :class:`~repro.core.streaming.StreamingIndex` (any index
        exposing ``search_batch``, ``version``, and the mutation methods
    works, but tombstone semantics come from the streaming tier).
    k, beam_width:
        Defaults for :meth:`search`; callers may override per query, and
        the batcher groups same-``(k, width)`` requests into one kernel
        invocation.
    max_batch:
        Micro-batch size cap: the batcher dispatches as soon as this many
        requests are waiting.
    max_delay_s:
        Batching window: a lone request waits at most this long for company
        before dispatching (the latency cost of batching is bounded by it).
    cache_size:
        LRU capacity in answers.  ``0`` disables caching.
    n_workers, kernel:
        Execution of each micro-batch, passed to ``run_batch``.  ``1`` runs
        in-process through the multi-query kernel; ``>1`` shards each batch
        over a worker pool (pool start-up per batch — only worthwhile for
        large batches).
    """

    def __init__(
        self,
        index,
        k: int = 10,
        beam_width: int | None = None,
        max_batch: int = 32,
        max_delay_s: float = 0.002,
        cache_size: int = 1024,
        n_workers: int = 1,
        kernel: str | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be >= 0")
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self.index = index
        self.k = k
        self.beam_width = beam_width if beam_width is not None else max(
            getattr(index, "default_beam_width", 64), k
        )
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.cache_size = cache_size
        self.n_workers = n_workers
        self.kernel = kernel
        self.report = ServingReport()
        self._cache: OrderedDict = OrderedDict()
        self._queue: asyncio.Queue | None = None
        self._batcher: asyncio.Task | None = None
        self._mutation_lock = asyncio.Lock()
        self._closed = False
        self._started_at: float | None = None

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    async def search(
        self,
        query: np.ndarray,
        k: int | None = None,
        beam_width: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Answer one query; returns ``(ids, dists)``.

        Cache hits resolve immediately; misses join the next micro-batch.
        """
        if self._closed:
            raise RuntimeError("ServingEngine is closed")
        self._ensure_batcher()
        k = self.k if k is None else k
        width = max(beam_width or max(self.beam_width, k), k)
        query = np.ascontiguousarray(query, dtype=np.float32).ravel()
        start = time.perf_counter()
        cached = self._cache_get(query, k, width)
        if cached is not None:
            self.report.n_queries += 1
            self.report.cache_hits += 1
            self.report.latencies_s.append(time.perf_counter() - start)
            return cached
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(_Pending(query, k, width, future, start))
        return await future

    def _ensure_batcher(self) -> None:
        if self._batcher is None or self._batcher.done():
            self._queue = self._queue or asyncio.Queue()
            self._batcher = asyncio.get_running_loop().create_task(
                self._batch_loop()
            )
            if self._started_at is None:
                self._started_at = time.perf_counter()

    async def _batch_loop(self) -> None:
        while not self._closed:
            item = await self._queue.get()
            if item is None:
                return
            batch = [item]
            deadline = time.perf_counter() + self.max_delay_s
            while len(batch) < self.max_batch:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    # Past the deadline, drain whatever is already queued
                    # synchronously.  ``wait_for(get(), timeout=0)`` would
                    # time out on a fresh (not-yet-done) get() task even
                    # with waiters sitting in the queue, dispatching an
                    # under-full batch — with max_delay_s=0 every batch
                    # degraded to size 1.
                    try:
                        extra = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if extra is None:
                        self._dispatch(batch)
                        return
                    batch.append(extra)
                    continue
                try:
                    extra = await asyncio.wait_for(
                        self._queue.get(), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    continue
                if extra is None:
                    self._dispatch(batch)
                    return
                batch.append(extra)
            self._dispatch(batch)

    def _dispatch(self, batch: list) -> None:
        """Run one micro-batch under the mutation lock, then resolve futures."""

        async def _run() -> None:
            async with self._mutation_lock:
                await asyncio.get_running_loop().run_in_executor(
                    None, self._execute_batch, batch
                )

        asyncio.get_running_loop().create_task(_run())

    def _execute_batch(self, batch: list) -> None:
        loop = self._batcher.get_loop()
        groups: dict[tuple[int, int], list] = {}
        for item in batch:
            groups.setdefault((item.k, item.beam_width), []).append(item)
        for (k, width), items in groups.items():
            answers: list = [None] * len(items)
            misses: list[int] = []
            for pos, item in enumerate(items):
                # re-check the cache: an identical query may have been
                # answered by an earlier group of this same batch round
                cached = self._cache_get(item.query, k, width)
                if cached is not None:
                    answers[pos] = cached
                    self.report.cache_hits += 1
                else:
                    misses.append(pos)
            if misses:
                queries = np.stack([items[pos].query for pos in misses])
                seeds = np.array(
                    [query_seed_index(items[pos].query) for pos in misses],
                    dtype=np.int64,
                )
                result = run_batch(
                    self.index,
                    queries,
                    k=k,
                    beam_width=width,
                    n_workers=self.n_workers,
                    kernel=self.kernel,
                    seed_indices=seeds,
                )
                self.report.n_batches += 1
                for pos, outcome in zip(misses, result.outcomes):
                    answer = (outcome.ids, outcome.dists)
                    answers[pos] = answer
                    self._cache_put(items[pos].query, k, width, answer)
                    self.report.total_distance_calls += outcome.distance_calls
            done = time.perf_counter()
            for item, answer in zip(items, answers):
                self.report.n_queries += 1
                self.report.latencies_s.append(done - item.enqueued_at)
                loop.call_soon_threadsafe(_resolve, item.future, answer)
        self.report.wall_time_s = done - (self._started_at or done)

    # ------------------------------------------------------------------
    # answer cache (version-keyed: hits cannot change answers)
    # ------------------------------------------------------------------
    def _cache_key(self, query: np.ndarray, k: int, width: int) -> tuple:
        return (query.tobytes(), k, width, getattr(self.index, "version", 0))

    def _cache_get(self, query, k, width):
        if not self.cache_size:
            return None
        key = self._cache_key(query, k, width)
        answer = self._cache.get(key)
        if answer is not None:
            self._cache.move_to_end(key)
        return answer

    def _cache_put(self, query, k, width, answer) -> None:
        if not self.cache_size:
            return
        self._cache[self._cache_key(query, k, width)] = answer
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # mutations (serialized against query batches)
    # ------------------------------------------------------------------
    async def insert(self, vectors: np.ndarray) -> np.ndarray:
        """Insert a vector batch; returns the new ids."""
        async with self._mutation_lock:
            return await asyncio.get_running_loop().run_in_executor(
                None, self.index.insert, vectors
            )

    async def delete(self, ids) -> int:
        """Tombstone ids; returns how many were newly deleted."""
        async with self._mutation_lock:
            return await asyncio.get_running_loop().run_in_executor(
                None, self.index.delete, ids
            )

    async def consolidate(self):
        """Run a consolidation pass; returns its report."""
        async with self._mutation_lock:
            return await asyncio.get_running_loop().run_in_executor(
                None, self.index.consolidate
            )

    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Drain the batcher and stop accepting queries."""
        if self._closed:
            return
        self._closed = True
        if self._batcher is not None and not self._batcher.done():
            await self._queue.put(None)
            await self._batcher
        # one lock round-trip so any in-flight dispatch finishes first
        async with self._mutation_lock:
            pass


def _resolve(future: asyncio.Future, answer) -> None:
    if not future.done():
        future.set_result(answer)
