"""Experiment driver: builds, sweeps, and tradeoff curves.

Reproduces the paper's experimental procedure (Section 4.1): indexes are
built once per configuration; query workloads are swept over beam widths to
trace the recall / distance-calculation tradeoff curve of each method
(Figures 5, 12-16); build cost is tracked in wall time, distance
calculations, and peak Python-heap bytes (Figures 7-8).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field

import numpy as np

from ..indexes.base import BaseIndex
from .metrics import ground_truth, recall

__all__ = [
    "BuildMeasurement",
    "SweepPoint",
    "build_with_tracking",
    "sweep_beam_widths",
    "calls_at_recall",
    "beam_width_for_recall",
    "QueryMeasurement",
    "run_workload",
]


@dataclass
class BuildMeasurement:
    """Construction cost of one index (one Figure 7/8 bar)."""

    name: str
    wall_time_s: float
    distance_calls: int
    peak_heap_bytes: int
    index_bytes: int


@dataclass
class QueryMeasurement:
    """One workload run at a fixed beam width."""

    beam_width: int
    recall: float
    mean_distance_calls: float
    mean_hops: float
    mean_time_s: float


@dataclass
class SweepPoint:
    """One point of a recall/efficiency tradeoff curve."""

    beam_width: int
    recall: float
    distance_calls: float
    time_s: float
    extras: dict = field(default_factory=dict)


def build_with_tracking(index: BaseIndex, data: np.ndarray) -> BuildMeasurement:
    """Build ``index`` over ``data`` recording time, distances, peak memory.

    Peak memory is the Python-heap high-water mark during construction
    (tracemalloc), standing in for the paper's ``/proc`` VmPeak probe.
    """
    tracemalloc.start()
    index.build(data)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return BuildMeasurement(
        name=index.name,
        wall_time_s=index.build_report.wall_time_s,
        distance_calls=index.build_report.distance_calls,
        peak_heap_bytes=int(peak),
        index_bytes=index.memory_bytes(),
    )


def run_workload(
    index: BaseIndex,
    queries: np.ndarray,
    truth_ids: np.ndarray,
    k: int,
    beam_width: int,
) -> QueryMeasurement:
    """Run every query sequentially (the paper's protocol) at one beam width."""
    queries = np.atleast_2d(np.asarray(queries))
    recalls, calls, hops, times = [], [], [], []
    for query, truth in zip(queries, truth_ids):
        start = time.perf_counter()
        result = index.search(query, k=k, beam_width=beam_width)
        times.append(time.perf_counter() - start)
        recalls.append(recall(result.ids, truth[:k]))
        calls.append(result.distance_calls)
        hops.append(result.hops)
    return QueryMeasurement(
        beam_width=beam_width,
        recall=float(np.mean(recalls)),
        mean_distance_calls=float(np.mean(calls)),
        mean_hops=float(np.mean(hops)),
        mean_time_s=float(np.mean(times)),
    )


def sweep_beam_widths(
    index: BaseIndex,
    queries: np.ndarray,
    truth_ids: np.ndarray,
    k: int = 10,
    beam_widths: tuple[int, ...] = (10, 20, 40, 80, 160, 320),
) -> list[SweepPoint]:
    """Trace the recall / distance-calculation tradeoff curve of a method."""
    curve: list[SweepPoint] = []
    for width in beam_widths:
        if width < k:
            continue
        measurement = run_workload(index, queries, truth_ids, k, width)
        curve.append(
            SweepPoint(
                beam_width=width,
                recall=measurement.recall,
                distance_calls=measurement.mean_distance_calls,
                time_s=measurement.mean_time_s,
            )
        )
    return curve


def calls_at_recall(curve: list[SweepPoint], target: float) -> float | None:
    """Distance calls needed to reach ``target`` recall, interpolated.

    Returns ``None`` when the curve never reaches the target (the paper
    reports these cases as method failures, e.g. Seismic at 0.8).
    """
    reached = [p for p in curve if p.recall >= target]
    if not reached:
        return None
    above = min(reached, key=lambda p: p.distance_calls)
    below = [p for p in curve if p.recall < target and p.distance_calls <= above.distance_calls]
    if not below:
        return float(above.distance_calls)
    prev = max(below, key=lambda p: p.recall)
    span = above.recall - prev.recall
    if span <= 0:
        return float(above.distance_calls)
    frac = (target - prev.recall) / span
    return float(prev.distance_calls + frac * (above.distance_calls - prev.distance_calls))


def beam_width_for_recall(curve: list[SweepPoint], target: float) -> int | None:
    """Smallest swept beam width reaching ``target`` recall (Figure 11)."""
    reached = [p for p in curve if p.recall >= target]
    if not reached:
        return None
    return int(min(reached, key=lambda p: p.beam_width).beam_width)


def make_ground_truth(
    data: np.ndarray, queries: np.ndarray, k: int
) -> np.ndarray:
    """Convenience wrapper returning just the ground-truth ids."""
    ids, _ = ground_truth(data, queries, k)
    return ids
