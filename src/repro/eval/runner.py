"""Experiment driver: builds, sweeps, and tradeoff curves.

Reproduces the paper's experimental procedure (Section 4.1): indexes are
built once per configuration; query workloads are swept over beam widths to
trace the recall / distance-calculation tradeoff curve of each method
(Figures 5, 12-16); build cost is tracked in wall time, distance
calculations, and peak Python-heap bytes (Figures 7-8).
"""

from __future__ import annotations

import tracemalloc
import warnings
from dataclasses import dataclass, field

import numpy as np

from ..indexes.base import BaseIndex
from .metrics import ground_truth, recall
from .parallel import run_batch

__all__ = [
    "BuildMeasurement",
    "SweepPoint",
    "build_with_tracking",
    "sweep_beam_widths",
    "calls_at_recall",
    "beam_width_for_recall",
    "QueryMeasurement",
    "run_workload",
]


@dataclass
class BuildMeasurement:
    """Construction cost of one index (one Figure 7/8 bar)."""

    name: str
    wall_time_s: float
    distance_calls: int
    peak_heap_bytes: int
    index_bytes: int


@dataclass
class QueryMeasurement:
    """One workload run at a fixed beam width.

    ``mean_*`` fields keep the paper's per-query averages; the latency
    percentiles, throughput, and exact aggregate counter were added with the
    parallel batch-query engine (``n_workers`` records how the batch ran —
    the answers themselves are worker-count-invariant).
    """

    beam_width: int
    recall: float
    mean_distance_calls: float
    mean_hops: float
    mean_time_s: float
    p50_time_s: float = 0.0
    p95_time_s: float = 0.0
    p99_time_s: float = 0.0
    qps: float = 0.0
    total_distance_calls: int = 0
    wall_time_s: float = 0.0
    n_workers: int = 1
    # disk-tier accounting (zero on the in-memory exact paths): PQ estimates
    # scored and logical disk rows fetched, deterministic at any worker count
    mean_approx_calls: float = 0.0
    mean_page_reads: float = 0.0
    total_approx_calls: int = 0
    total_page_reads: int = 0
    # which storage tier answered the workload ("ram" or "disk") — reporting
    # keys the disk-counter section on this, not on counter truthiness, so a
    # disk run that happened to read zero pages still renders as a disk run
    tier_mode: str = "ram"


@dataclass
class SweepPoint:
    """One point of a recall/efficiency tradeoff curve."""

    beam_width: int
    recall: float
    distance_calls: float
    time_s: float
    extras: dict = field(default_factory=dict)


def build_with_tracking(index: BaseIndex, data: np.ndarray) -> BuildMeasurement:
    """Build ``index`` over ``data`` recording time, distances, peak memory.

    Peak memory is the Python-heap high-water mark during construction
    (tracemalloc), standing in for the paper's ``/proc`` VmPeak probe.
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    try:
        index.build(data)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return BuildMeasurement(
        name=index.name,
        wall_time_s=index.build_report.wall_time_s,
        distance_calls=index.build_report.distance_calls,
        peak_heap_bytes=int(peak),
        index_bytes=index.memory_bytes(),
    )


def run_workload(
    index: BaseIndex,
    queries: np.ndarray,
    truth_ids: np.ndarray,
    k: int,
    beam_width: int,
    n_workers: int = 1,
    kernel: str | None = None,
) -> QueryMeasurement:
    """Run one workload at one beam width over the batch-query engine.

    ``n_workers=1`` (the default) keeps the paper's sequential protocol;
    larger values shard the batch across worker processes.  ``kernel``
    selects the beam backend (``scalar`` / ``python`` / ``numba`` / ``auto``;
    ``None`` defers to ``$REPRO_KERNEL``).  Recall and the aggregate
    distance-calculation count are identical for every worker count and
    kernel backend (see :mod:`repro.eval.parallel`).
    """
    queries = np.atleast_2d(np.asarray(queries))
    truth_ids = np.atleast_2d(np.asarray(truth_ids))
    if queries.shape[0] != truth_ids.shape[0]:
        raise ValueError(
            f"queries and truth_ids disagree: {queries.shape[0]} queries vs "
            f"{truth_ids.shape[0]} ground-truth rows"
        )
    batch = run_batch(
        index, queries, k=k, beam_width=beam_width, n_workers=n_workers,
        kernel=kernel,
    )
    recalls = [
        recall(outcome.ids, truth[:k])
        for outcome, truth in zip(batch.outcomes, truth_ids)
    ]
    calls = [outcome.distance_calls for outcome in batch.outcomes]
    hops = [outcome.hops for outcome in batch.outcomes]
    times = [outcome.time_s for outcome in batch.outcomes]
    approx = [outcome.approx_calls for outcome in batch.outcomes]
    pages = [outcome.page_reads for outcome in batch.outcomes]
    return QueryMeasurement(
        beam_width=beam_width,
        recall=float(np.mean(recalls)),
        mean_distance_calls=float(np.mean(calls)),
        mean_hops=float(np.mean(hops)),
        mean_time_s=float(np.mean(times)),
        p50_time_s=float(np.percentile(times, 50)),
        p95_time_s=float(np.percentile(times, 95)),
        p99_time_s=float(np.percentile(times, 99)),
        qps=batch.qps,
        total_distance_calls=batch.total_distance_calls,
        wall_time_s=batch.wall_time_s,
        n_workers=batch.n_workers,
        mean_approx_calls=float(np.mean(approx)),
        mean_page_reads=float(np.mean(pages)),
        total_approx_calls=batch.total_approx_calls,
        total_page_reads=batch.total_page_reads,
        tier_mode="disk" if getattr(index, "_disk_tier", None) is not None else "ram",
    )


def sweep_beam_widths(
    index: BaseIndex,
    queries: np.ndarray,
    truth_ids: np.ndarray,
    k: int = 10,
    beam_widths: tuple[int, ...] = (10, 20, 40, 80, 160, 320),
    n_workers: int = 1,
    kernel: str | None = None,
) -> list[SweepPoint]:
    """Trace the recall / distance-calculation tradeoff curve of a method.

    Beam widths below ``k`` cannot hold ``k`` answers and are dropped with a
    warning naming them; if *every* width is below ``k`` the curve would be
    silently empty, so that raises instead.
    """
    dropped = [width for width in beam_widths if width < k]
    if dropped:
        if len(dropped) == len(beam_widths):
            raise ValueError(
                f"all beam widths {list(beam_widths)} are < k={k}; "
                "the sweep would be empty"
            )
        warnings.warn(
            f"dropping beam widths {dropped} < k={k} from the sweep",
            UserWarning,
            stacklevel=2,
        )
    curve: list[SweepPoint] = []
    for width in beam_widths:
        if width < k:
            continue
        measurement = run_workload(
            index, queries, truth_ids, k, width, n_workers=n_workers,
            kernel=kernel,
        )
        curve.append(
            SweepPoint(
                beam_width=width,
                recall=measurement.recall,
                distance_calls=measurement.mean_distance_calls,
                time_s=measurement.mean_time_s,
            )
        )
    return curve


def calls_at_recall(curve: list[SweepPoint], target: float) -> float | None:
    """Distance calls needed to reach ``target`` recall, interpolated.

    Returns ``None`` when the curve never reaches the target (the paper
    reports these cases as method failures, e.g. Seismic at 0.8).
    """
    reached = [p for p in curve if p.recall >= target]
    if not reached:
        return None
    above = min(reached, key=lambda p: p.distance_calls)
    below = [p for p in curve if p.recall < target and p.distance_calls <= above.distance_calls]
    if not below:
        return float(above.distance_calls)
    prev = max(below, key=lambda p: p.recall)
    span = above.recall - prev.recall
    if span <= 0:
        return float(above.distance_calls)
    frac = (target - prev.recall) / span
    return float(prev.distance_calls + frac * (above.distance_calls - prev.distance_calls))


def beam_width_for_recall(curve: list[SweepPoint], target: float) -> int | None:
    """Smallest swept beam width reaching ``target`` recall (Figure 11)."""
    reached = [p for p in curve if p.recall >= target]
    if not reached:
        return None
    return int(min(reached, key=lambda p: p.beam_width).beam_width)


def make_ground_truth(
    data: np.ndarray, queries: np.ndarray, k: int
) -> np.ndarray:
    """Convenience wrapper returning just the ground-truth ids."""
    ids, _ = ground_truth(data, queries, k)
    return ids
