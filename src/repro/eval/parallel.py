"""Parallel batch-query execution engine with deterministic accounting.

The paper's protocol answers queries one at a time in a single thread; a
serving-shaped system answers the same batch across worker processes.  This
module does both behind one entry point, :func:`run_batch`, with one hard
guarantee: **for a fixed index seed, the per-query answers, recall, and total
distance-calculation counts are identical for every worker count** (ParlayANN
calls this deterministic parallelism).  Two mechanisms deliver it:

* every query ``i`` is answered under an RNG derived only from
  ``(index.seed, i)`` (``BaseIndex.seed_query_rng``), never from how many
  queries the answering process saw before;
* per-query distance calls are measured as ``computer.since(mark)`` deltas,
  which are independent of the counter's absolute value, so summing the
  ordered per-query outcomes reproduces the sequential aggregate exactly.

Workers never re-pickle the dataset or the graph.  The parent places the
float32/float64 dataset copies, the squared norms, and the CSR-flattened
graph into ``multiprocessing.shared_memory`` segments
(:class:`SharedArrayPack`); each worker unpickles a skeleton index (heavy
arrays stripped by ``BaseIndex.__getstate__``) and re-attaches zero-copy
views (``DistanceComputer.from_shared`` + ``CSRGraph``), keeping its own
independent distance counter.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from multiprocessing import get_context

import numpy as np

from ..core.shared import SharedArrayPack
from ..indexes.base import BaseIndex

__all__ = ["QueryOutcome", "BatchResult", "SharedArrayPack", "run_batch"]


@dataclass
class QueryOutcome:
    """Answer and accounting for one query of a batch.

    ``approx_calls``/``page_reads`` are nonzero only in disk-tier mode:
    PQ asymmetric estimates scored and logical disk rows fetched (graph
    adjacency rows + re-rank vector rows).  Like ``distance_calls`` they
    are measured as counter deltas, so they are bit-identical at any
    worker count.
    """

    query_index: int
    ids: np.ndarray
    dists: np.ndarray
    distance_calls: int
    hops: int
    time_s: float
    approx_calls: int = 0
    page_reads: int = 0


@dataclass
class BatchResult:
    """Ordered per-query outcomes plus batch-level wall time."""

    outcomes: list[QueryOutcome]
    wall_time_s: float
    n_workers: int

    @property
    def total_distance_calls(self) -> int:
        """Aggregate distance calculations across the batch (exact)."""
        return sum(outcome.distance_calls for outcome in self.outcomes)

    @property
    def total_approx_calls(self) -> int:
        """Aggregate PQ asymmetric-distance estimates (disk tier; exact)."""
        return sum(outcome.approx_calls for outcome in self.outcomes)

    @property
    def total_page_reads(self) -> int:
        """Aggregate logical disk-row fetches (disk tier; exact)."""
        return sum(outcome.page_reads for outcome in self.outcomes)

    @property
    def qps(self) -> float:
        """Queries answered per second of batch wall time."""
        if self.wall_time_s <= 0:
            return 0.0
        return len(self.outcomes) / self.wall_time_s


# ----------------------------------------------------------------------
# worker process state and entry points
# ----------------------------------------------------------------------
_WORKER: dict = {}


def _worker_init(
    index_bytes: bytes,
    specs: dict,
    k: int,
    beam_width: int | None,
    kernel: str | None = None,
) -> None:
    """Pool initializer: mount shared arrays and rebuild the index skeleton."""
    arrays, segments = SharedArrayPack.attach(specs)
    index = pickle.loads(index_bytes)
    index.attach_shared_query_state(arrays)
    queries = arrays["batch_queries"]
    _WORKER.update(
        index=index,
        queries=queries,
        k=k,
        beam_width=beam_width,
        kernel=kernel,
        seed_indices=arrays.get("seed_indices"),
        segments=segments,
    )


def _worker_run_chunk(query_indices: np.ndarray) -> list[tuple]:
    """Answer a chunk of queries by global index; returns plain tuples."""
    outcomes = _answer_chunk(
        _WORKER["index"],
        _WORKER["queries"],
        query_indices,
        _WORKER["k"],
        _WORKER["beam_width"],
        _WORKER["kernel"],
        _WORKER["seed_indices"],
    )
    return [
        (
            outcome.query_index,
            outcome.ids,
            outcome.dists,
            outcome.distance_calls,
            outcome.hops,
            outcome.time_s,
            outcome.approx_calls,
            outcome.page_reads,
        )
        for outcome in outcomes
    ]


def _answer_chunk(
    index: BaseIndex,
    queries: np.ndarray,
    query_indices,
    k: int,
    beam_width: int | None,
    kernel: str | None,
    seed_indices: np.ndarray | None = None,
) -> list[QueryOutcome]:
    """Answer one chunk of queries, batched through the beam kernel.

    ``kernel="scalar"`` (or any index without a batch path) answers
    per-query through :func:`_answer_one`, the accounting-faithful
    reference; otherwise the chunk goes through ``index.search_batch`` as
    one multi-query kernel invocation.  Answers, hop counts, and distance
    accounting are bit-identical either way; only per-query latency
    attribution differs (a batched chunk reports the chunk's mean).

    ``seed_indices`` decouples randomness from batch position: query ``i``
    is answered under ``seed_query_rng(seed_indices[i])`` while the outcome
    still reports position ``i``.  The serving engine uses this to key
    randomness to query *content*, so an answer does not depend on where in
    a micro-batch the query landed.
    """
    from ..core.kernels import resolve_backend

    query_indices = np.asarray(query_indices, dtype=np.int64)
    rng_indices = (
        query_indices if seed_indices is None else seed_indices[query_indices]
    )
    if resolve_backend(kernel) == "scalar":
        return [
            _answer_one(index, queries[i], int(i), k, beam_width, int(r))
            for i, r in zip(query_indices, rng_indices)
        ]
    start = time.perf_counter()
    results = index.search_batch(
        queries[query_indices],
        k=k,
        beam_width=beam_width,
        query_indices=rng_indices,
        kernel=kernel,
    )
    per_query_s = (time.perf_counter() - start) / max(len(results), 1)
    return [
        QueryOutcome(
            query_index=int(query_index),
            ids=result.ids,
            dists=result.dists,
            distance_calls=result.distance_calls,
            hops=result.hops,
            time_s=per_query_s,
            approx_calls=result.approx_calls,
            page_reads=result.page_reads,
        )
        for query_index, result in zip(query_indices, results)
    ]


def _answer_one(
    index: BaseIndex,
    query: np.ndarray,
    query_index: int,
    k: int,
    beam_width: int | None,
    seed_index: int | None = None,
) -> QueryOutcome:
    """Answer one query under its deterministic per-query RNG."""
    index.seed_query_rng(query_index if seed_index is None else seed_index)
    start = time.perf_counter()
    result = index.search(query, k=k, beam_width=beam_width)
    elapsed = time.perf_counter() - start
    return QueryOutcome(
        query_index=query_index,
        ids=result.ids,
        dists=result.dists,
        distance_calls=result.distance_calls,
        hops=result.hops,
        time_s=elapsed,
        approx_calls=result.approx_calls,
        page_reads=result.page_reads,
    )


def run_batch(
    index: BaseIndex,
    queries: np.ndarray,
    k: int,
    beam_width: int | None = None,
    n_workers: int = 1,
    chunks_per_worker: int = 4,
    kernel: str | None = None,
    seed_indices: np.ndarray | None = None,
) -> BatchResult:
    """Answer a query batch, sequentially or across worker processes.

    ``n_workers=1`` answers in-process (the paper's sequential protocol);
    ``n_workers>1`` shards the batch over a process pool.  ``kernel``
    selects the beam backend (``None`` = ``$REPRO_KERNEL`` = ``auto``):
    batched kernels answer each worker's chunk as one vectorized
    multi-query traversal, ``"scalar"`` keeps the per-query reference loop.
    Either way the outcomes come back ordered by query index and are
    bit-identical for a fixed index seed — across worker counts, chunkings,
    and kernel backends.

    ``seed_indices`` (optional, one per query) replaces each query's
    positional RNG index: query ``i`` runs under
    ``seed_query_rng(seed_indices[i])`` but still reports
    ``query_index=i``.  The serving tier derives these from query content
    so identical queries get identical answers regardless of micro-batch
    composition.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    queries = np.atleast_2d(np.asarray(queries))
    n_queries = queries.shape[0]
    if seed_indices is not None:
        seed_indices = np.asarray(seed_indices, dtype=np.int64)
        if seed_indices.shape != (n_queries,):
            raise ValueError(
                f"seed_indices must have shape ({n_queries},), "
                f"got {seed_indices.shape}"
            )
    start = time.perf_counter()
    if n_workers == 1 or n_queries <= 1:
        outcomes = _answer_chunk(
            index, queries, np.arange(n_queries), k, beam_width, kernel,
            seed_indices,
        )
        return BatchResult(outcomes, time.perf_counter() - start, 1)

    shared = dict(index.shared_query_state())
    shared["batch_queries"] = queries
    if seed_indices is not None:
        shared["seed_indices"] = seed_indices
    pack = SharedArrayPack(shared)
    index_bytes = pickle.dumps(index)
    n_workers = min(n_workers, n_queries)
    chunks = np.array_split(
        np.arange(n_queries), min(n_queries, n_workers * chunks_per_worker)
    )
    try:
        # fork shares the parent's modules, so even __main__-defined index
        # classes unpickle; platforms without fork fall back to spawn
        context = get_context("fork")
    except ValueError:
        context = get_context("spawn")
    try:
        with context.Pool(
            processes=n_workers,
            initializer=_worker_init,
            initargs=(index_bytes, pack.specs, k, beam_width, kernel),
        ) as pool:
            chunk_results = pool.map(_worker_run_chunk, chunks)
        outcomes = [
            QueryOutcome(*fields)
            for chunk in chunk_results
            for fields in chunk
        ]
    finally:
        pack.unlink()
    outcomes.sort(key=lambda outcome: outcome.query_index)
    return BatchResult(outcomes, time.perf_counter() - start, n_workers)
