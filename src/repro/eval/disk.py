"""Peak-RSS measurement for the beyond-RAM tier.

The disk tier's whole point is that the graph and raw vectors never become
resident.  Proving that from inside the builder process is hopeless — the
parent has already materialized the full dataset to build the index — so
the search phase is probed in a fresh ``spawn`` subprocess that only ever
sees the on-disk tier directory.  Its ``ru_maxrss`` high-water mark then
reflects exactly what disk-tier search keeps resident: the interpreter +
numpy baseline, the PQ codes and codebooks, and whatever mmap pages the
traversal actually touched.

No third-party dependency is needed: :mod:`resource` ships with CPython on
every POSIX platform this repo targets.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys

import numpy as np

__all__ = ["peak_rss_bytes", "probe_disk_search", "reset_peak_rss"]


def peak_rss_bytes() -> int:
    """This process's peak resident set size, in bytes.

    On Linux this reads ``VmHWM`` from ``/proc/self/status`` — the
    per-address-space high-water mark, which is reset by ``exec`` and by
    :func:`reset_peak_rss`.  ``getrusage``'s ``ru_maxrss`` is deliberately
    only a fallback: the kernel keeps it in the signal struct, where it
    *survives* ``fork`` + ``exec``, so a freshly spawned child reports its
    parent's peak — useless for isolating the child's own footprint.
    (``ru_maxrss`` is KiB on Linux, bytes on macOS.)
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) * (1 if sys.platform == "darwin" else 1024)


def reset_peak_rss() -> bool:
    """Reset ``VmHWM`` to the current RSS (Linux only).

    Writing ``5`` to ``/proc/self/clear_refs`` (documented in ``proc(5)``)
    drops the high-water mark back to the process's *current* RSS so
    subsequent :func:`peak_rss_bytes` readings measure only what happens
    next.  Returns whether the reset was possible.
    """
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
        return True
    except OSError:
        return False


def _drop_file_cache(directory) -> bool:
    """Evict the tier's files from the OS page cache (Linux only).

    The benchmark builds the tier moments before probing it, so its files
    are still hot in the page cache — and a page fault against a *cached*
    file maps whole cached folios into the process, inflating RSS far past
    what the traversal actually reads and ignoring ``MADV_RANDOM`` (which
    only curbs disk readahead).  A genuinely beyond-RAM tier would be cold;
    ``POSIX_FADV_DONTNEED`` recreates that honestly.  Returns whether the
    eviction was possible.
    """
    import pathlib

    if not hasattr(os, "posix_fadvise"):
        return False
    done = True
    for path in sorted(pathlib.Path(directory).glob("*.np[yz]")):
        try:
            fd = os.open(path, os.O_RDONLY)
            try:
                # freshly written pages are dirty; DONTNEED silently skips
                # them unless they are flushed first
                os.fsync(fd)
                os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_DONTNEED)
            finally:
                os.close(fd)
        except OSError:
            done = False
    return done


def _probe_child(directory, queries, k, beam_width, kernel, conn) -> None:
    """Subprocess body: open the tier, answer the batch, report RSS.

    ``baseline`` is captured before the tier is opened (after resetting the
    inherited high-water mark), so ``peak - baseline`` isolates the search
    phase's resident footprint from the ~30MB interpreter + numpy floor a
    trivial python process already pays.
    """
    try:
        from ..indexes.base import load_disk_index
        from .parallel import run_batch

        cache_dropped = _drop_file_cache(directory)
        rss_reset = reset_peak_rss()
        baseline = peak_rss_bytes()
        index = load_disk_index(directory)
        tier = index._disk_tier
        batch = run_batch(
            index, queries, k=k, beam_width=beam_width, n_workers=1,
            kernel=kernel,
        )
        conn.send((
            "ok",
            {
                "ids": [np.asarray(o.ids) for o in batch.outcomes],
                "total_distance_calls": batch.total_distance_calls,
                "total_approx_calls": batch.total_approx_calls,
                "total_page_reads": batch.total_page_reads,
                "wall_time_s": batch.wall_time_s,
                "qps": batch.qps,
                "resident_bytes": tier.resident_bytes(),
                "file_bytes": tier.file_bytes(),
                "baseline_rss_bytes": baseline,
                "peak_rss_bytes": peak_rss_bytes(),
                "rss_reset": rss_reset,
                "cache_dropped": cache_dropped,
            },
        ))
    except Exception as exc:  # surfaced as RuntimeError in the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def probe_disk_search(
    directory,
    queries: np.ndarray,
    k: int,
    beam_width: int,
    kernel: str | None = None,
    timeout_s: float = 600.0,
) -> dict:
    """Answer ``queries`` against a disk tier in an isolated subprocess.

    Returns a dict with the batch's answer ids, the three exact counters,
    wall time / QPS, the tier's resident and file sizes, and the child's
    baseline and peak RSS in bytes.  ``peak_rss_bytes - baseline_rss_bytes``
    is the search phase's memory bill; compare it against a budget derived
    from ``file_bytes`` to demonstrate beyond-RAM operation.

    The child is started with the ``spawn`` method so it inherits nothing
    from the parent's address space (``fork`` would carry the parent's
    resident dataset into the child's RSS accounting).
    """
    ctx = mp.get_context("spawn")
    recv_conn, send_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_probe_child,
        args=(str(directory), np.asarray(queries), k, beam_width, kernel,
              send_conn),
    )
    proc.start()
    send_conn.close()
    try:
        if not recv_conn.poll(timeout_s):
            raise TimeoutError(
                f"disk-tier probe produced no result within {timeout_s:.0f}s"
            )
        status, payload = recv_conn.recv()
    finally:
        proc.join(timeout=30.0)
        if proc.is_alive():
            proc.kill()
            proc.join()
        recv_conn.close()
    if status != "ok":
        raise RuntimeError(f"disk-tier probe failed in subprocess: {payload}")
    return payload
