"""eval subpackage of the repro library."""
