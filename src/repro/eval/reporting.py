"""Text rendering of the paper's tables and figure series.

Benchmarks regenerate each table/figure as plain text: a figure becomes the
series of points it plots (method, x, y rows); a table becomes an aligned
grid.  Reports are echoed to stdout and archived under
``benchmarks/results/`` so paper-vs-measured comparisons in EXPERIMENTS.md
can cite them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["format_table", "format_query_stats", "Report"]


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_query_stats(measurement) -> str:
    """Render a :class:`~repro.eval.runner.QueryMeasurement` latency/throughput
    summary (the ``--stats`` output of the CLI demo).

    Disk-tier counters (PQ estimates, logical page reads) appear exactly when
    the workload ran against a disk tier (``measurement.tier_mode ==
    "disk"``), even if every counter happens to be zero — keying on counter
    truthiness would make such a run indistinguishable from RAM mode.
    """
    rows = [
        ["recall", measurement.recall],
        ["mean dist calls/query", measurement.mean_distance_calls],
        ["total dist calls", measurement.total_distance_calls],
    ]
    if getattr(measurement, "tier_mode", "ram") == "disk":
        rows += [
            ["mean approx calls/query", measurement.mean_approx_calls],
            ["total approx calls", measurement.total_approx_calls],
            ["mean page reads/query", measurement.mean_page_reads],
            ["total page reads", measurement.total_page_reads],
        ]
    rows += [
        ["mean latency (ms)", 1000 * measurement.mean_time_s],
        ["p50 latency (ms)", 1000 * measurement.p50_time_s],
        ["p95 latency (ms)", 1000 * measurement.p95_time_s],
        ["p99 latency (ms)", 1000 * measurement.p99_time_s],
        ["throughput (QPS)", measurement.qps],
        ["workers", measurement.n_workers],
    ]
    return format_table(
        ["metric", "value"],
        rows,
        title=f"query stats @ beam width {measurement.beam_width}",
    )


def _json_safe(value):
    """Coerce numpy scalars to native Python types for json.dumps."""
    if hasattr(value, "item"):
        return value.item()
    return value


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6:
            return f"{value:.3g}"
        if abs(value) >= 100:
            return f"{value:.0f}"
        return f"{value:.3f}"
    return str(value)


class Report:
    """Accumulates one experiment's text output and archives it.

    Parameters
    ----------
    name:
        Experiment id, e.g. ``"fig05_nd_search"``; used as the archive
        file name.
    directory:
        Archive directory; default ``benchmarks/results`` relative to the
        repository root, overridable via ``REPRO_RESULTS_DIR``.
    """

    def __init__(self, name: str, directory: str | Path | None = None):
        self.name = name
        if directory is None:
            directory = os.environ.get("REPRO_RESULTS_DIR", "benchmarks/results")
        self.directory = Path(directory)
        self._chunks: list[str] = []
        self._tables: list[dict] = []
        self.metadata: dict = {}

    def add_metadata(self, **fields) -> None:
        """Record run configuration (kernel backend, worker count, scale, ...)
        in the JSON archive, so a result can be traced to how it was produced."""
        self.metadata.update({key: _json_safe(value) for key, value in fields.items()})

    def add(self, text: str) -> None:
        """Append a block of text (also printed immediately)."""
        self._chunks.append(text)
        print(text)

    def add_table(self, headers: list[str], rows: list[list], title: str = "") -> None:
        """Append an aligned table (kept structured for the JSON archive)."""
        self._tables.append(
            {
                "title": title,
                "headers": list(headers),
                "rows": [[_json_safe(value) for value in row] for row in rows],
            }
        )
        self.add(format_table(headers, rows, title=title))

    def save(self) -> Path:
        """Write the report to ``<directory>/<name>.txt`` (and, when any
        tables were added, their machine-readable form to ``<name>.json`` —
        the artifact CI archives)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"{self.name}.txt"
        path.write_text("\n\n".join(self._chunks) + "\n")
        if self._tables or self.metadata:
            payload = {"name": self.name, "tables": self._tables}
            if self.metadata:
                payload["metadata"] = self.metadata
            json_path = self.directory / f"{self.name}.json"
            json_path.write_text(json.dumps(payload, indent=2) + "\n")
        return path
