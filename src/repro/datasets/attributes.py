"""Attribute generation for the filtered-search scenario.

Real serving traffic increasingly carries attribute predicates alongside the
query vector ("nearest shoes under $50"); RWalks and ACORN study this as a
scenario family of its own, with recall/QPS trade-offs governed by the
*specificity* of the filter — the fraction of dataset points that satisfy
it.  This module supplies the workload side:

* :func:`point_attributes` draws one categorical label (Zipf-ish popularity
  ranks) and one uniform numeric value per dataset point;
* :func:`query_predicates` draws per-query numeric range predicates of
  controlled specificity — a predicate with specificity ``s`` matches an
  expected fraction ``s`` of the points;
* :func:`label_predicates` draws per-query categorical predicates, whose
  specificity is implied by the label popularity distribution.

Everything is keyed by the CRC-based :func:`~repro.datasets.synthetic.
dataset_key_seed` protocol — never ``hash()`` — so the same
``(dataset, n, seed)`` triple yields bit-identical attributes and predicates
in every process, at any ``PYTHONHASHSEED``, on any worker of a parallel
run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .synthetic import dataset_key_seed

__all__ = [
    "AttributeSet",
    "Predicate",
    "point_attributes",
    "query_predicates",
    "label_predicates",
]

#: Seed salt separating attribute streams from the vector streams that share
#: the same ``(dataset, seed)`` pair.
_ATTR_SALT = 0xA77C
_PRED_SALT = 0xF11E


@dataclass(frozen=True)
class AttributeSet:
    """Per-point attributes: one categorical label, one numeric value.

    Attributes
    ----------
    labels:
        ``(n,)`` int64 categorical labels in ``[0, n_labels)``, drawn with
        Zipf-ish popularity (label ``r`` has probability proportional to
        ``1 / (r + 1)``), so categorical filters span a wide specificity
        range naturally.
    values:
        ``(n,)`` float64 numeric attribute, uniform on ``[0, 1)`` — range
        predicates over it have exactly controllable expected specificity.
    """

    labels: np.ndarray
    values: np.ndarray

    @property
    def n(self) -> int:
        return int(self.labels.shape[0])

    @property
    def n_labels(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0


@dataclass(frozen=True)
class Predicate:
    """One query's filter: a numeric range and/or a categorical label.

    ``lo <= value < hi`` must hold, and when ``label >= 0`` the point's
    label must equal it.  ``Predicate(0.0, 1.0 + eps)`` with ``label=-1``
    matches everything.
    """

    lo: float
    hi: float
    label: int = -1

    def mask(self, attrs: AttributeSet) -> np.ndarray:
        """Boolean allow-mask over the attribute set (True = passes)."""
        allowed = (attrs.values >= self.lo) & (attrs.values < self.hi)
        if self.label >= 0:
            allowed &= attrs.labels == self.label
        return allowed


def point_attributes(
    dataset: str, n: int, seed: int = 0, n_labels: int = 8
) -> AttributeSet:
    """Deterministic per-point attributes for ``n`` points of a dataset.

    The RNG is keyed by ``(seed ^ dataset_key_seed(dataset), _ATTR_SALT)``:
    independent of the vector stream (same ``seed`` does not correlate
    attributes with coordinates) and stable across processes.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if n_labels < 1:
        raise ValueError("n_labels must be >= 1")
    rng = np.random.default_rng(
        (seed ^ dataset_key_seed(dataset.lower()), _ATTR_SALT)
    )
    weights = 1.0 / (1.0 + np.arange(n_labels, dtype=np.float64))
    weights /= weights.sum()
    labels = rng.choice(n_labels, size=n, p=weights).astype(np.int64)
    values = rng.uniform(size=n)
    return AttributeSet(labels=labels, values=values)


def query_predicates(
    dataset: str,
    n_queries: int,
    specificity: float,
    seed: int = 0,
) -> list[Predicate]:
    """Per-query numeric range predicates with controlled specificity.

    Each predicate is ``[lo, lo + specificity)`` with ``lo`` uniform on
    ``[0, 1 - specificity]``; the numeric attribute is uniform on ``[0, 1)``,
    so every predicate matches an expected fraction ``specificity`` of the
    points.  The RNG key folds the specificity (at nanosecond-scale
    resolution) so sweeps at different specificities draw independent
    predicate streams while staying reproducible.
    """
    if not 0.0 < specificity <= 1.0:
        raise ValueError("specificity must be in (0, 1]")
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    rng = np.random.default_rng(
        (
            seed ^ dataset_key_seed(dataset.lower()),
            _PRED_SALT,
            int(round(specificity * 1_000_000_000)),
        )
    )
    lows = rng.uniform(0.0, 1.0 - specificity, size=n_queries)
    if specificity >= 1.0:
        # degenerate match-everything sweep point: hi must cover value 1-eps
        return [Predicate(0.0, np.nextafter(1.0, 2.0)) for _ in range(n_queries)]
    return [Predicate(float(lo), float(lo + specificity)) for lo in lows]


def label_predicates(
    dataset: str,
    n_queries: int,
    attrs: AttributeSet,
    seed: int = 0,
) -> list[Predicate]:
    """Per-query categorical predicates drawn from the label popularity.

    Each query filters to one label, sampled proportionally to how many
    points carry it — so the specificity distribution mirrors the Zipf-ish
    label weights instead of being uniform over labels that may be nearly
    empty.  The numeric range is left wide open.
    """
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    rng = np.random.default_rng(
        (seed ^ dataset_key_seed(dataset.lower()), _PRED_SALT, 0xCA7)
    )
    counts = np.bincount(attrs.labels, minlength=attrs.n_labels).astype(np.float64)
    probs = counts / counts.sum()
    picks = rng.choice(probs.size, size=n_queries, p=probs)
    hi = float(np.nextafter(1.0, 2.0))
    return [Predicate(0.0, hi, label=int(label)) for label in picks]
