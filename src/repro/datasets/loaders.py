"""Readers and writers for the standard ANN dataset file formats.

The paper's corpora (Sift1B, Deep1B, GIST, ...) ship as ``.fvecs`` /
``.bvecs`` / ``.ivecs`` files: each vector is stored as a little-endian
int32 dimension count followed by ``d`` values (float32, uint8, or int32
respectively).  These loaders let real data be dropped into the reproduction
whenever it is available; the test suite round-trips them on synthetic data.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

__all__ = [
    "read_fvecs",
    "write_fvecs",
    "read_bvecs",
    "write_bvecs",
    "read_ivecs",
    "write_ivecs",
]


def _read_vecs(path: str | Path, value_dtype: np.dtype, limit: int | None) -> np.ndarray:
    raw = np.fromfile(path, dtype=np.uint8)
    if raw.size == 0:
        return np.empty((0, 0), dtype=value_dtype)
    dim = int(np.frombuffer(raw[:4].tobytes(), dtype="<i4")[0])
    if dim <= 0:
        raise ValueError(f"{path}: invalid leading dimension {dim}")
    value_size = np.dtype(value_dtype).itemsize
    record = 4 + dim * value_size
    if raw.size % record != 0:
        raise ValueError(
            f"{path}: size {raw.size} is not a multiple of record size {record}"
        )
    n = raw.size // record
    if limit is not None:
        n = min(n, limit)
    rows = raw[: n * record].reshape(n, record)
    dims = rows[:, :4].copy().view("<i4").ravel()
    if not (dims == dim).all():
        raise ValueError(f"{path}: inconsistent per-record dimensions")
    return rows[:, 4:].copy().view(value_dtype).reshape(n, dim)


def _write_vecs(path: str | Path, data: np.ndarray, value_dtype: np.dtype) -> None:
    data = np.ascontiguousarray(np.atleast_2d(data), dtype=value_dtype)
    n, dim = data.shape
    value_size = np.dtype(value_dtype).itemsize
    out = np.empty((n, 4 + dim * value_size), dtype=np.uint8)
    out[:, :4] = np.frombuffer(
        np.full(n, dim, dtype="<i4").tobytes(), dtype=np.uint8
    ).reshape(n, 4)
    out[:, 4:] = data.view(np.uint8).reshape(n, dim * value_size)
    out.tofile(path)


def read_fvecs(path: str | Path, limit: int | None = None) -> np.ndarray:
    """Read an ``.fvecs`` file into an ``(n, d)`` float32 array."""
    return _read_vecs(path, np.dtype("<f4"), limit)


def write_fvecs(path: str | Path, data: np.ndarray) -> None:
    """Write an ``(n, d)`` array as ``.fvecs`` (float32)."""
    _write_vecs(path, data, np.dtype("<f4"))


def read_bvecs(path: str | Path, limit: int | None = None) -> np.ndarray:
    """Read a ``.bvecs`` file into an ``(n, d)`` uint8 array."""
    return _read_vecs(path, np.dtype("u1"), limit)


def write_bvecs(path: str | Path, data: np.ndarray) -> None:
    """Write an ``(n, d)`` array as ``.bvecs`` (uint8)."""
    _write_vecs(path, data, np.dtype("u1"))


def read_ivecs(path: str | Path, limit: int | None = None) -> np.ndarray:
    """Read an ``.ivecs`` file (e.g. ground-truth ids) as int32."""
    return _read_vecs(path, np.dtype("<i4"), limit)


def write_ivecs(path: str | Path, data: np.ndarray) -> None:
    """Write an ``(n, d)`` int array as ``.ivecs``."""
    _write_vecs(path, data, np.dtype("<i4"))
