"""Dataset-complexity measures: LID (Eq. 5) and LRC (Eq. 6) — Section 4.1.

Local Intrinsic Dimensionality estimates, per query point, how fast the
neighborhood volume grows with radius: *lower LID means easier search*.
Local Relative Contrast measures how separable the k-th neighbor is from the
average point: *higher LRC means easier search*.  Figure 4 of the paper
characterizes every dataset by the distribution of these two quantities over
a sample with k = 100.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.distances import pairwise_euclidean

__all__ = ["lid", "lrc", "ComplexityProfile", "dataset_complexity"]


def lid(knn_dists: np.ndarray) -> np.ndarray:
    """Local Intrinsic Dimensionality from each row of k-NN distances.

    ``LID(x) = - (1/k * sum_i log(dist_i / dist_k))^{-1}`` (Eq. 5, the
    maximum-likelihood estimator of Amsaleg et al.).  Zero distances are
    dropped; rows with no usable distances yield NaN.
    """
    knn_dists = np.atleast_2d(np.asarray(knn_dists, dtype=np.float64))
    k = knn_dists.shape[1]
    out = np.full(knn_dists.shape[0], np.nan)
    for row in range(knn_dists.shape[0]):
        dists = knn_dists[row]
        dists = dists[dists > 0]
        if dists.size < 2:
            continue
        ratio = np.log(dists / dists[-1])
        mean_log = ratio.sum() / k
        if mean_log < 0:
            out[row] = -1.0 / mean_log
    return out


def lrc(knn_dists: np.ndarray, mean_dists: np.ndarray) -> np.ndarray:
    """Local Relative Contrast: ``dist_mean(x) / dist_k(x)`` (Eq. 6)."""
    knn_dists = np.atleast_2d(np.asarray(knn_dists, dtype=np.float64))
    mean_dists = np.asarray(mean_dists, dtype=np.float64)
    dist_k = knn_dists[:, -1]
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(dist_k > 0, mean_dists / dist_k, np.nan)


@dataclass
class ComplexityProfile:
    """Summary of a dataset's hardness (one Figure 4 box)."""

    name: str
    lid_values: np.ndarray
    lrc_values: np.ndarray

    @property
    def mean_lid(self) -> float:
        """Mean LID over sampled query points (the orange line of Fig. 4a)."""
        return float(np.nanmean(self.lid_values))

    @property
    def mean_lrc(self) -> float:
        """Mean LRC over sampled query points (the orange line of Fig. 4b)."""
        return float(np.nanmean(self.lrc_values))


def dataset_complexity(
    data: np.ndarray,
    name: str = "",
    k: int = 100,
    n_samples: int = 200,
    rng: np.random.Generator | None = None,
) -> ComplexityProfile:
    """Estimate LID and LRC for ``data`` following the Figure 4 protocol.

    ``n_samples`` points are drawn as pseudo-queries; their k-NN distances
    against the full dataset (self excluded) feed Eqs. 5-6.
    """
    data = np.atleast_2d(np.asarray(data, dtype=np.float64))
    n = data.shape[0]
    if k >= n:
        raise ValueError(f"k ({k}) must be < n ({n})")
    if rng is None:
        rng = np.random.default_rng(0)
    n_samples = min(n_samples, n)
    sample_ids = rng.choice(n, size=n_samples, replace=False)
    dists = pairwise_euclidean(data[sample_ids], data)
    dists[np.arange(n_samples), sample_ids] = np.inf  # exclude self
    knn = np.sort(np.partition(dists, k, axis=1)[:, :k], axis=1)
    finite = np.where(np.isinf(dists), np.nan, dists)
    mean_dists = np.nanmean(finite, axis=1)
    return ComplexityProfile(
        name=name or "dataset",
        lid_values=lid(knn),
        lrc_values=lrc(knn, mean_dists),
    )
