"""Query workload generators — Section 4.1, "Queries".

Three workload families from the paper:

* **held-out queries** — vectors drawn from the same distribution as the
  dataset but excluded from indexing (SALD/ImageNet/Seismic protocol);
* **noise-hardness workloads** — dataset vectors perturbed with Gaussian
  noise of variance 0.01..0.1, labelled "1%".."10%" (the Figure 15 hard
  workloads, following Zoumpatianos et al.);
* **power-law queries** — fresh draws from the same power-law recipe with a
  different seed (the RandPow protocol).
"""

from __future__ import annotations

import numpy as np

from .synthetic import DATASET_GENERATORS, dataset_key_seed

__all__ = [
    "held_out_split",
    "noise_queries",
    "distribution_queries",
    "NOISE_LEVELS",
]

#: The paper's hardness levels: percentage label -> Gaussian sigma^2.
NOISE_LEVELS: dict[str, float] = {
    "1%": 0.01,
    "2%": 0.02,
    "5%": 0.05,
    "10%": 0.10,
}


def held_out_split(
    data: np.ndarray, n_queries: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Split ``data`` into (index set, query set) without overlap.

    Mirrors the paper's protocol for SALD, ImageNet, and Seismic: queries
    are random dataset members removed from the index-building phase.
    """
    n = data.shape[0]
    if not 1 <= n_queries < n:
        raise ValueError(f"n_queries must be in [1, {n - 1}]")
    picks = rng.choice(n, size=n_queries, replace=False)
    mask = np.zeros(n, dtype=bool)
    mask[picks] = True
    return data[~mask], data[picks]


def noise_queries(
    data: np.ndarray,
    n_queries: int,
    sigma_squared: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Hardness workload: dataset vectors plus N(0, sigma^2) noise.

    The noise scale is relative to the per-dimension standard deviation of
    the data so that "10%" remains meaningfully hard across datasets with
    different value ranges.
    """
    if sigma_squared <= 0:
        raise ValueError("sigma_squared must be positive")
    n = data.shape[0]
    picks = rng.choice(n, size=n_queries, replace=n_queries > n)
    # per-dimension std, as documented: a dataset whose dimensions have very
    # different spreads (anisotropic) must be perturbed anisotropically, or
    # "10%" noise swamps the narrow dimensions and barely moves the wide
    # ones.  Dimensions with zero spread (constant columns) get unit scale
    # explicitly rather than through a silent global fallback.
    scale = data.std(axis=0, dtype=np.float64)
    scale[scale == 0.0] = 1.0
    noise = rng.normal(0.0, np.sqrt(sigma_squared), size=(n_queries, data.shape[1]))
    return (data[picks] + scale * noise).astype(np.float32)


def distribution_queries(
    dataset_name: str, n_queries: int, seed: int = 12345
) -> np.ndarray:
    """Fresh queries from a named generator's distribution (different seed)."""
    key = dataset_name.lower()
    if key not in DATASET_GENERATORS:
        raise KeyError(f"unknown dataset {dataset_name!r}")
    # dataset_key_seed, not hash(): str hashes are salted per process
    rng = np.random.default_rng(seed ^ dataset_key_seed(key))
    return DATASET_GENERATORS[key].generate(n_queries, rng)
