"""Synthetic dataset generators — difficulty-matched stand-ins for the
paper's real collections.

The paper evaluates seven real datasets (Deep1B, Sift1B, SALD, Seismic,
Text-to-Image, GIST, ImageNet1M) plus three synthetic power-law datasets.
The real collections are terabyte-scale downloads unavailable here, so each
is replaced by a generator tuned to reproduce its *difficulty profile* —
the Local Intrinsic Dimensionality / Local Relative Contrast ordering of
Figure 4 — rather than its byte content (see DESIGN.md, "Substitutions").

The dials are: number of Gaussian clusters, the intrinsic dimensionality of
the subspace the clusters live in, the cluster spread relative to their
separation, and the tail behaviour of the noise.  Easy datasets (Sift, Deep,
ImageNet) use few effective dimensions and well-separated clusters; hard
ones (Seismic, Text-to-Image, RandPow*) approach isotropic noise.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DATASET_GENERATORS",
    "DatasetSpec",
    "dataset_key_seed",
    "generate",
    "clustered_gaussian",
    "power_law",
    "TIER_SIZES",
    "tier_size",
]

#: Paper size tier -> default reproduction point count (see DESIGN.md §1.4).
#: Scaled by the REPRO_SCALE environment variable in the benchmark layer.
TIER_SIZES: dict[str, int] = {
    "1M": 4_000,
    "25GB": 9_000,
    "100GB": 18_000,
    "1B": 36_000,
}


def tier_size(tier: str, scale: float = 1.0) -> int:
    """Point count for a paper size tier, optionally rescaled."""
    if tier not in TIER_SIZES:
        raise KeyError(f"unknown tier {tier!r}; choose from {sorted(TIER_SIZES)}")
    return max(64, int(TIER_SIZES[tier] * scale))


def clustered_gaussian(
    n: int,
    dim: int,
    n_clusters: int,
    intrinsic_dim: int,
    cluster_std: float,
    ambient_noise: float,
    rng: np.random.Generator,
    heavy_tail: float = 0.0,
) -> np.ndarray:
    """Gaussian-mixture points living near a random ``intrinsic_dim`` subspace.

    Parameters
    ----------
    n, dim:
        Output shape.
    n_clusters:
        Mixture components; centers are drawn in the intrinsic subspace.
    intrinsic_dim:
        Dimensionality of the subspace carrying the signal; lower values
        give lower LID (easier search).
    cluster_std:
        Within-cluster spread relative to unit center scale.
    ambient_noise:
        Isotropic full-dimensional noise; higher values raise LID.
    heavy_tail:
        When positive, multiplies each point's noise by a Pareto factor,
        emulating the bursty tails of seismic data.
    """
    if intrinsic_dim > dim:
        raise ValueError("intrinsic_dim cannot exceed dim")
    # Smooth low-frequency orthonormal basis: the signal varies coherently
    # across neighboring dimensions, as in the paper's data-series
    # collections.  LID/LRC are rotation-invariant, so difficulty is the
    # same as with a random basis, but summarization-based methods (EAPCA,
    # PAA) see the structure they were designed for.
    t = np.linspace(0.0, 1.0, dim)
    waves = np.stack(
        [np.cos(np.pi * (j + 1) * t + rng.uniform(0, np.pi)) for j in range(intrinsic_dim)],
        axis=1,
    )
    basis = np.linalg.qr(waves)[0]
    centers = rng.normal(size=(n_clusters, intrinsic_dim))
    assignment = rng.integers(n_clusters, size=n)
    local = centers[assignment] + cluster_std * rng.normal(size=(n, intrinsic_dim))
    points = local @ basis.T
    noise = ambient_noise * rng.normal(size=(n, dim))
    if heavy_tail > 0:
        noise *= (1.0 + rng.pareto(heavy_tail, size=(n, 1)))
    return (points + noise).astype(np.float32)


def power_law(
    n: int, dim: int, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """The paper's RandPow datasets (Section 4.1).

    Each coordinate is ``U^(1/(exponent+1))`` for uniform ``U``: exponent 0
    is the uniform dataset RandPow0; larger exponents (5, 50) skew mass
    toward 1, increasing the distribution skewness exactly as described.
    """
    if exponent < 0:
        raise ValueError("exponent must be >= 0")
    u = rng.uniform(size=(n, dim))
    return (u ** (1.0 / (exponent + 1.0))).astype(np.float32)


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one named dataset stand-in."""

    name: str
    dim: int
    n_clusters: int
    intrinsic_dim: int
    cluster_std: float
    ambient_noise: float
    heavy_tail: float = 0.0
    power_exponent: float | None = None

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Materialize ``n`` vectors of this dataset."""
        if self.power_exponent is not None:
            return power_law(n, self.dim, self.power_exponent, rng)
        return clustered_gaussian(
            n,
            self.dim,
            self.n_clusters,
            self.intrinsic_dim,
            self.cluster_std,
            self.ambient_noise,
            rng,
            heavy_tail=self.heavy_tail,
        )


#: Difficulty-matched stand-ins, ordered roughly easy -> hard (Figure 4).
DATASET_GENERATORS: dict[str, DatasetSpec] = {
    # easy: low LID, high LRC
    "sift": DatasetSpec("sift", dim=128, n_clusters=80, intrinsic_dim=12,
                        cluster_std=0.25, ambient_noise=0.02),
    "deep": DatasetSpec("deep", dim=96, n_clusters=60, intrinsic_dim=14,
                        cluster_std=0.3, ambient_noise=0.03),
    "imagenet": DatasetSpec("imagenet", dim=256, n_clusters=40, intrinsic_dim=16,
                            cluster_std=0.3, ambient_noise=0.03),
    # moderate
    "gist": DatasetSpec("gist", dim=120, n_clusters=40, intrinsic_dim=24,
                        cluster_std=0.45, ambient_noise=0.08),
    "sald": DatasetSpec("sald", dim=128, n_clusters=30, intrinsic_dim=28,
                        cluster_std=0.5, ambient_noise=0.1),
    # hard: high LID, low LRC
    "text2img": DatasetSpec("text2img", dim=200, n_clusters=20, intrinsic_dim=48,
                            cluster_std=0.8, ambient_noise=0.2),
    "seismic": DatasetSpec("seismic", dim=256, n_clusters=15, intrinsic_dim=64,
                           cluster_std=0.9, ambient_noise=0.25, heavy_tail=3.0),
    # the paper's synthetic power-law family (256 dimensions)
    "randpow0": DatasetSpec("randpow0", dim=256, n_clusters=1, intrinsic_dim=1,
                            cluster_std=0.0, ambient_noise=0.0, power_exponent=0.0),
    "randpow5": DatasetSpec("randpow5", dim=256, n_clusters=1, intrinsic_dim=1,
                            cluster_std=0.0, ambient_noise=0.0, power_exponent=5.0),
    "randpow50": DatasetSpec("randpow50", dim=256, n_clusters=1, intrinsic_dim=1,
                             cluster_std=0.0, ambient_noise=0.0, power_exponent=50.0),
}


def generate(name: str, n: int, seed: int = 0) -> np.ndarray:
    """Materialize ``n`` vectors of a named dataset stand-in.

    ``generate("deep", tier_size("25GB"))`` reproduces the paper's
    Deep25GB workload at this environment's scale.
    """
    key = name.lower()
    if key not in DATASET_GENERATORS:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_GENERATORS)}"
        )
    rng = np.random.default_rng(seed ^ dataset_key_seed(key))
    return DATASET_GENERATORS[key].generate(n, rng)


def dataset_key_seed(key: str) -> int:
    """Stable per-dataset seed offset.

    ``hash(str)`` is salted by ``PYTHONHASHSEED``, so using it here made
    every process generate *different* data for the same ``(name, seed)`` —
    a reproducibility bug that surfaced as run-to-run flakiness in any test
    or experiment downstream of a generated dataset.  CRC32 is stable across
    processes, platforms, and Python versions.
    """
    return zlib.crc32(key.encode("utf-8")) % (2**31)
