"""datasets subpackage of the repro library."""
