"""Hercules EAPCA tree — ELPIS's divide-and-conquer partitioner.

ELPIS (Section 3.6) splits the dataset with the Hercules tree (Echihabi et
al.): a binary tree whose nodes summarize their points in EAPCA space and
split on the segment whose summaries vary the most.  Each *leaf* becomes a
partition on which ELPIS builds an HNSW graph; at query time, leaves are
ranked and pruned by the admissible EAPCA lower-bound distance of the query
to the leaf's synopsis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..summarization.eapca import EAPCASynopsis, eapca_transform

__all__ = ["HerculesTree", "HerculesLeaf"]


@dataclass
class HerculesLeaf:
    """One partition: its point ids and its EAPCA synopsis."""

    point_ids: np.ndarray
    synopsis: EAPCASynopsis


@dataclass
class _HNode:
    synopsis: EAPCASynopsis
    point_ids: np.ndarray | None = None  # leaves only
    split_segment: int = -1
    split_value: float = 0.0
    left: "_HNode | None" = None
    right: "_HNode | None" = None
    children: list = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """Whether this node stores points directly."""
        return self.point_ids is not None


class HerculesTree:
    """EAPCA-splitting binary tree producing ELPIS partitions."""

    def __init__(self, root: _HNode, n_segments: int, leaf_size: int):
        self._root = root
        self.n_segments = n_segments
        self.leaf_size = leaf_size

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        leaf_size: int,
        n_segments: int = 8,
        ids: np.ndarray | None = None,
    ) -> "HerculesTree":
        """Partition ``data`` into EAPCA-coherent leaves of ``<= leaf_size``."""
        if leaf_size < 2:
            raise ValueError("leaf_size must be >= 2")
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        n_segments = min(n_segments, data.shape[1])
        if ids is None:
            ids = np.arange(data.shape[0], dtype=np.int64)
        root = cls._build_node(data, np.asarray(ids, dtype=np.int64), leaf_size, n_segments)
        return cls(root, n_segments, leaf_size)

    @staticmethod
    def _build_node(
        data: np.ndarray, ids: np.ndarray, leaf_size: int, n_segments: int
    ) -> _HNode:
        synopsis = EAPCASynopsis.from_points(data[ids], n_segments)
        if ids.size <= leaf_size:
            return _HNode(synopsis=synopsis, point_ids=ids)
        # split on the segment whose EAPCA summaries vary the most,
        # at the median of the per-point segment means
        means, _ = eapca_transform(data[ids], n_segments)
        seg = int(np.argmax(synopsis.split_score()))
        values = means[:, seg]
        split_value = float(np.median(values))
        left_mask = values < split_value
        if not left_mask.any() or left_mask.all():
            order = np.argsort(values, kind="stable")
            left_mask = np.zeros(ids.size, dtype=bool)
            left_mask[order[: ids.size // 2]] = True
        node = _HNode(synopsis=synopsis, split_segment=seg, split_value=split_value)
        node.left = HerculesTree._build_node(data, ids[left_mask], leaf_size, n_segments)
        node.right = HerculesTree._build_node(data, ids[~left_mask], leaf_size, n_segments)
        return node

    def leaves(self) -> list[HerculesLeaf]:
        """All partitions, left-to-right."""
        out: list[HerculesLeaf] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(HerculesLeaf(node.point_ids, node.synopsis))
            else:
                stack.append(node.right)
                stack.append(node.left)
        return out

    def rank_leaves(self, query: np.ndarray) -> list[tuple[float, HerculesLeaf]]:
        """Leaves sorted by ascending EAPCA lower bound to ``query``.

        The first leaf is ELPIS's heuristic initial partition; the bounds of
        the rest drive its pruning against the best-so-far answer.
        """
        ranked = [
            (leaf.synopsis.lower_bound(query), leaf) for leaf in self.leaves()
        ]
        ranked.sort(key=lambda pair: pair[0])
        return ranked

    def memory_bytes(self) -> int:
        """Approximate bytes across nodes, synopses, and leaf id arrays."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 64 + node.synopsis.memory_bytes()
            if node.is_leaf:
                total += node.point_ids.nbytes
            else:
                stack.append(node.left)
                stack.append(node.right)
        return total
