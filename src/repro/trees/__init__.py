"""trees subpackage of the repro library."""
