"""Trinary-Projection (TP) trees — SPTAG's partitioning structure.

A TP tree splits each node by a *trinary projection*: a sparse direction
formed as a signed combination of a few coordinate axes (weights in
{-1, 0, +1}), chosen to maximize the projected variance, with the split at
the median projection.  SPTAG runs several randomized TP-tree partitions of
the whole dataset and builds an exact k-NN graph inside every leaf
(Section 3.6, "SPTAG").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TPTree"]

_CANDIDATE_DIRECTIONS = 8
_AXES_PER_DIRECTION = 3


@dataclass
class _TPNode:
    point_ids: np.ndarray | None = None
    axes: np.ndarray | None = None
    signs: np.ndarray | None = None
    split_value: float = 0.0
    left: "_TPNode | None" = None
    right: "_TPNode | None" = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node stores points directly."""
        return self.point_ids is not None


class TPTree:
    """One randomized trinary-projection tree used for leaf partitioning."""

    def __init__(self, root: _TPNode, leaf_size: int):
        self._root = root
        self.leaf_size = leaf_size

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        leaf_size: int,
        rng: np.random.Generator,
        ids: np.ndarray | None = None,
    ) -> "TPTree":
        """Partition ``data`` (or ``data[ids]``) down to ``leaf_size`` leaves."""
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        if ids is None:
            ids = np.arange(data.shape[0], dtype=np.int64)
        root = cls._build_node(data, np.asarray(ids, dtype=np.int64), leaf_size, rng)
        return cls(root, leaf_size)

    @staticmethod
    def _build_node(
        data: np.ndarray,
        ids: np.ndarray,
        leaf_size: int,
        rng: np.random.Generator,
    ) -> _TPNode:
        if ids.size <= leaf_size:
            return _TPNode(point_ids=ids)
        subset = data[ids]
        d = data.shape[1]
        n_axes = min(_AXES_PER_DIRECTION, d)
        best: tuple[float, np.ndarray, np.ndarray, np.ndarray] | None = None
        for _ in range(_CANDIDATE_DIRECTIONS):
            axes = rng.choice(d, size=n_axes, replace=False)
            signs = rng.choice(np.asarray([-1.0, 1.0]), size=n_axes)
            projection = subset[:, axes] @ signs
            variance = float(projection.var())
            if best is None or variance > best[0]:
                best = (variance, axes, signs, projection)
        _, axes, signs, projection = best
        split_value = float(np.median(projection))
        left_mask = projection < split_value
        if not left_mask.any() or left_mask.all():
            left_mask = np.zeros(ids.size, dtype=bool)
            left_mask[: ids.size // 2] = True
        node = _TPNode(axes=axes, signs=signs, split_value=split_value)
        node.left = TPTree._build_node(data, ids[left_mask], leaf_size, rng)
        node.right = TPTree._build_node(data, ids[~left_mask], leaf_size, rng)
        return node

    def leaves(self) -> list[np.ndarray]:
        """All leaf id arrays (the partitions SPTAG builds graphs on)."""
        out: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node.point_ids)
            else:
                stack.append(node.left)
                stack.append(node.right)
        return out

    def leaf_of(self, query: np.ndarray) -> np.ndarray:
        """Ids of the leaf the query projects into."""
        node = self._root
        while not node.is_leaf:
            projection = float(query[node.axes] @ node.signs)
            node = node.left if projection < node.split_value else node.right
        return node.point_ids

    def memory_bytes(self) -> int:
        """Approximate bytes: leaf ids plus internal node metadata."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 64
            if node.is_leaf:
                total += node.point_ids.nbytes
            else:
                total += node.axes.nbytes + node.signs.nbytes
                stack.append(node.left)
                stack.append(node.right)
        return total
