"""Balanced K-means Tree (BKT) — SPTAG-BKT's seed structure.

Each internal node partitions its points into ``branching`` balanced k-means
clusters; recursion stops at ``leaf_size``.  Query-time seed retrieval walks
the tree best-first by centroid distance, collecting ids from the most
promising leaves (Section 3.3, strategy "KM").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..clustering.kmeans import balanced_kmeans

__all__ = ["BKTree", "BKForest"]


@dataclass
class _BKTNode:
    centroid: np.ndarray
    point_ids: np.ndarray | None = None  # leaves only
    children: "list[_BKTNode]" = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """Whether this node stores points directly."""
        return self.point_ids is not None


class BKTree:
    """One balanced k-means tree over a set of dataset ids."""

    def __init__(self, root: _BKTNode, leaf_size: int, branching: int):
        self._root = root
        self.leaf_size = leaf_size
        self.branching = branching

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        ids: np.ndarray,
        leaf_size: int,
        branching: int,
        rng: np.random.Generator,
    ) -> "BKTree":
        """Recursively cluster ``data[ids]`` into a balanced tree."""
        if branching < 2:
            raise ValueError("branching must be >= 2")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        ids = np.asarray(ids, dtype=np.int64)
        root = cls._build_node(data, ids, leaf_size, branching, rng)
        return cls(root, leaf_size, branching)

    @staticmethod
    def _build_node(
        data: np.ndarray,
        ids: np.ndarray,
        leaf_size: int,
        branching: int,
        rng: np.random.Generator,
    ) -> _BKTNode:
        centroid = data[ids].mean(axis=0)
        if ids.size <= leaf_size or ids.size <= branching:
            return _BKTNode(centroid=centroid, point_ids=ids)
        result = balanced_kmeans(data[ids], branching, rng, max_iterations=8)
        node = _BKTNode(centroid=centroid)
        for cluster in range(branching):
            members = ids[result.labels == cluster]
            if members.size == 0:
                continue
            node.children.append(
                BKTree._build_node(data, members, leaf_size, branching, rng)
            )
        if not node.children:  # clustering degenerated; make a leaf
            return _BKTNode(centroid=centroid, point_ids=ids)
        return node

    def search_candidates(self, query: np.ndarray, n_candidates: int) -> np.ndarray:
        """Best-first centroid-guided descent collecting leaf ids."""
        query = np.asarray(query, dtype=np.float64)
        counter = 0
        heap: list[tuple[float, int, _BKTNode]] = [(0.0, counter, self._root)]
        collected: list[np.ndarray] = []
        total = 0
        while heap and total < n_candidates:
            _, _, node = heapq.heappop(heap)
            if node.is_leaf:
                collected.append(node.point_ids)
                total += node.point_ids.size
                continue
            for child in node.children:
                diff = query - child.centroid
                counter += 1
                heapq.heappush(heap, (float(diff @ diff), counter, child))
        if not collected:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(collected))

    def leaves(self) -> list[np.ndarray]:
        """All leaf id arrays."""
        out: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node.point_ids)
            else:
                stack.extend(node.children)
        return out

    def memory_bytes(self) -> int:
        """Approximate bytes: leaf ids plus per-node centroids."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += node.centroid.nbytes + 64
            if node.is_leaf:
                total += node.point_ids.nbytes
            else:
                stack.extend(node.children)
        return total


class BKForest:
    """Multiple BKTrees searched together (SPTAG builds several)."""

    def __init__(self, trees: list[BKTree]):
        if not trees:
            raise ValueError("need at least one tree")
        self.trees = trees

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        n_trees: int,
        leaf_size: int,
        branching: int,
        rng: np.random.Generator,
        ids: np.ndarray | None = None,
    ) -> "BKForest":
        """Build ``n_trees`` balanced k-means trees."""
        if ids is None:
            ids = np.arange(data.shape[0], dtype=np.int64)
        trees = [
            BKTree.build(data, ids, leaf_size, branching, rng)
            for _ in range(n_trees)
        ]
        return cls(trees)

    def search_candidates(self, query: np.ndarray, n_candidates: int) -> np.ndarray:
        """Union of per-tree candidate sets."""
        per_tree = max(1, n_candidates // len(self.trees))
        parts = [t.search_candidates(query, per_tree) for t in self.trees]
        return np.unique(np.concatenate(parts))

    def memory_bytes(self) -> int:
        """Total bytes across all trees."""
        return sum(t.memory_bytes() for t in self.trees)
