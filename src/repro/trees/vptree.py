"""Vantage-point tree — NGT's seed-selection structure.

A VP tree recursively picks a vantage point and splits the remaining points
by the median distance to it.  NGT uses one to find good entry nodes for its
graph search (Section 3.6, "NGT").  Search is branch-and-bound with the
triangle inequality and returns the ids of the ``k`` closest points found
within the examined budget.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = ["VPTree"]


@dataclass
class _VPNode:
    vantage: int = -1
    radius: float = 0.0
    inside: "_VPNode | None" = None
    outside: "_VPNode | None" = None
    point_ids: np.ndarray | None = None  # leaves only

    @property
    def is_leaf(self) -> bool:
        """Whether this node stores points directly."""
        return self.point_ids is not None


class VPTree:
    """Vantage-point tree over dataset ids, with budgeted k-NN search."""

    def __init__(self, root: _VPNode, data: np.ndarray, leaf_size: int):
        self._root = root
        self._data = data
        self.leaf_size = leaf_size
        #: distance evaluations performed by the most recent search() call,
        #: so callers can charge seed-selection work to their query accounting
        self.last_examined = 0

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        leaf_size: int,
        rng: np.random.Generator,
        ids: np.ndarray | None = None,
    ) -> "VPTree":
        """Build over ``data`` (or ``data[ids]``)."""
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        if ids is None:
            ids = np.arange(data.shape[0], dtype=np.int64)
        data64 = np.asarray(data, dtype=np.float64)
        root = cls._build_node(data64, np.asarray(ids, dtype=np.int64), leaf_size, rng)
        return cls(root, data64, leaf_size)

    @staticmethod
    def _build_node(
        data: np.ndarray,
        ids: np.ndarray,
        leaf_size: int,
        rng: np.random.Generator,
    ) -> _VPNode:
        if ids.size <= leaf_size:
            return _VPNode(point_ids=ids)
        pick = int(rng.integers(ids.size))
        vantage = int(ids[pick])
        rest = np.delete(ids, pick)
        dists = np.sqrt(((data[rest] - data[vantage]) ** 2).sum(axis=1))
        radius = float(np.median(dists))
        inside_mask = dists < radius
        if not inside_mask.any() or inside_mask.all():
            return _VPNode(point_ids=ids)
        node = _VPNode(vantage=vantage, radius=radius)
        node.inside = VPTree._build_node(data, rest[inside_mask], leaf_size, rng)
        node.outside = VPTree._build_node(data, rest[~inside_mask], leaf_size, rng)
        return node

    def search(self, query: np.ndarray, k: int, max_examined: int = 256) -> np.ndarray:
        """Approximate k-NN ids of ``query`` under an examination budget.

        Best-first branch-and-bound; the budget caps how many stored points
        have their distance evaluated, making the cost predictable when used
        for seed selection.
        """
        query = np.asarray(query, dtype=np.float64)
        best: list[tuple[float, int]] = []  # max-heap by negated distance
        examined = 0
        counter = 0
        heap: list[tuple[float, int, _VPNode]] = [(0.0, counter, self._root)]

        def offer(ids: np.ndarray) -> None:
            """Score candidate ids against the running top-k."""
            nonlocal examined
            dists = np.sqrt(((self._data[ids] - query) ** 2).sum(axis=1))
            examined += ids.size
            for dist, node_id in zip(dists, ids):
                if len(best) < k:
                    heapq.heappush(best, (-float(dist), int(node_id)))
                elif -best[0][0] > dist:
                    heapq.heapreplace(best, (-float(dist), int(node_id)))

        while heap and examined < max_examined:
            bound, _, node = heapq.heappop(heap)
            if len(best) == k and bound > -best[0][0]:
                continue
            if node.is_leaf:
                offer(node.point_ids)
                continue
            offer(np.asarray([node.vantage], dtype=np.int64))
            dist_v = float(
                np.sqrt(((self._data[node.vantage] - query) ** 2).sum())
            )
            near, far = (
                (node.inside, node.outside)
                if dist_v < node.radius
                else (node.outside, node.inside)
            )
            margin = abs(dist_v - node.radius)
            counter += 1
            heapq.heappush(heap, (bound, counter, near))
            counter += 1
            heapq.heappush(heap, (max(bound, margin), counter, far))
        self.last_examined = examined
        ordered = sorted((-d, i) for d, i in best)
        return np.asarray([i for _, i in ordered], dtype=np.int64)

    def memory_bytes(self) -> int:
        """Approximate bytes held by nodes and leaf id arrays."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 64
            if node.is_leaf:
                total += node.point_ids.nbytes
            else:
                stack.append(node.inside)
                stack.append(node.outside)
        return total
