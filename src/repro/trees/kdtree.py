"""Randomized truncated K-D trees.

Substrate for three uses in the paper: the "KD" seed-selection strategy
(Section 3.3), EFANNA's initial-graph construction (leaf co-membership gives
each point its first candidate neighbors), and the entry-point structures of
SPTAG-KDT and HCNNG.

The trees are *randomized* (the split dimension is drawn from the highest-
variance dimensions, as in FLANN/EFANNA) and *truncated* (splitting stops at
``leaf_size`` points, so leaves hold candidate pools rather than single
points).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

__all__ = ["KDTree", "KDForest"]

_TOP_VARIANCE_DIMS = 5


@dataclass
class _Node:
    """Internal or leaf node; leaves carry point ids."""

    point_ids: np.ndarray | None = None  # set on leaves only
    split_dim: int = -1
    split_value: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        """Whether this node stores points directly."""
        return self.point_ids is not None


@dataclass
class KDTree:
    """One randomized truncated K-D tree over a set of dataset ids."""

    leaf_size: int
    _root: _Node = field(default_factory=_Node, repr=False)
    _n_nodes: int = 0

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        ids: np.ndarray,
        leaf_size: int,
        rng: np.random.Generator,
    ) -> "KDTree":
        """Build a tree over ``data[ids]``.

        Parameters
        ----------
        data:
            Full ``(n, d)`` dataset; the tree stores only ids.
        ids:
            Which rows of ``data`` this tree indexes.
        leaf_size:
            Maximum points per leaf.
        rng:
            Source of split-dimension randomness.
        """
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        tree = cls(leaf_size=leaf_size)
        ids = np.asarray(ids, dtype=np.int64)
        tree._root = tree._build_node(data, ids, rng)
        return tree

    def _build_node(
        self, data: np.ndarray, ids: np.ndarray, rng: np.random.Generator
    ) -> _Node:
        self._n_nodes += 1
        if ids.size <= self.leaf_size:
            return _Node(point_ids=ids)
        subset = data[ids]
        variances = subset.var(axis=0)
        top = np.argsort(-variances, kind="stable")[:_TOP_VARIANCE_DIMS]
        split_dim = int(rng.choice(top))
        values = subset[:, split_dim]
        split_value = float(np.median(values))
        left_mask = values < split_value
        # guard against degenerate splits on constant dimensions
        if not left_mask.any() or left_mask.all():
            left_mask = np.zeros(ids.size, dtype=bool)
            left_mask[: ids.size // 2] = True
        node = _Node(split_dim=split_dim, split_value=split_value)
        node.left = self._build_node(data, ids[left_mask], rng)
        node.right = self._build_node(data, ids[~left_mask], rng)
        return node

    # ------------------------------------------------------------------
    def leaf_of(self, query: np.ndarray) -> np.ndarray:
        """Ids stored in the single leaf the query descends into."""
        node = self._root
        while not node.is_leaf:
            if query[node.split_dim] < node.split_value:
                node = node.left
            else:
                node = node.right
        return node.point_ids

    def search_candidates(self, query: np.ndarray, n_candidates: int) -> np.ndarray:
        """Best-first traversal collecting ids from the most promising leaves.

        Uses the usual branch-and-bound priority queue ordered by the
        accumulated splitting-plane distance; returns at least
        ``n_candidates`` ids (or every indexed id if fewer exist).
        """
        collected: list[np.ndarray] = []
        total = 0
        counter = 0  # tie-breaker so heap never compares nodes
        heap: list[tuple[float, int, _Node]] = [(0.0, counter, self._root)]
        while heap and total < n_candidates:
            margin, _, node = heapq.heappop(heap)
            while not node.is_leaf:
                diff = float(query[node.split_dim] - node.split_value)
                if diff < 0:
                    near, far = node.left, node.right
                else:
                    near, far = node.right, node.left
                counter += 1
                heapq.heappush(heap, (margin + diff * diff, counter, far))
                node = near
            collected.append(node.point_ids)
            total += node.point_ids.size
        if not collected:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(collected))[: max(n_candidates, 1) * 4]

    def leaves(self) -> list[np.ndarray]:
        """All leaf id arrays (used by EFANNA's initial graph)."""
        out: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node.point_ids)
            else:
                stack.append(node.left)
                stack.append(node.right)
        return out

    def memory_bytes(self) -> int:
        """Approximate bytes held by nodes and leaf id arrays."""
        leaf_bytes = sum(leaf.nbytes for leaf in self.leaves())
        return leaf_bytes + self._n_nodes * 64


class KDForest:
    """A set of independently randomized K-D trees searched together."""

    def __init__(self, trees: list[KDTree]):
        if not trees:
            raise ValueError("need at least one tree")
        self.trees = trees

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        n_trees: int,
        leaf_size: int,
        rng: np.random.Generator,
        ids: np.ndarray | None = None,
    ) -> "KDForest":
        """Build ``n_trees`` randomized trees over ``data`` (or ``data[ids]``)."""
        if ids is None:
            ids = np.arange(data.shape[0], dtype=np.int64)
        trees = [
            KDTree.build(data, ids, leaf_size, rng) for _ in range(n_trees)
        ]
        return cls(trees)

    def search_candidates(self, query: np.ndarray, n_candidates: int) -> np.ndarray:
        """Union of per-tree candidate sets."""
        per_tree = max(1, n_candidates // len(self.trees))
        parts = [t.search_candidates(query, per_tree) for t in self.trees]
        return np.unique(np.concatenate(parts))

    def initial_neighbor_lists(
        self, n: int, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        """EFANNA initialization: neighbors sampled from leaf co-members.

        Returns an ``(n, k)`` id matrix; ids are drawn from the leaves each
        point falls in across all trees (padded randomly when a point has
        fewer than ``k`` distinct co-members).
        """
        pools: list[list[int]] = [[] for _ in range(n)]
        for tree in self.trees:
            for leaf in tree.leaves():
                members = leaf.tolist()
                for point in members:
                    pools[point].extend(members)
        out = np.empty((n, k), dtype=np.int64)
        for point in range(n):
            pool = np.unique(np.asarray(pools[point], dtype=np.int64))
            pool = pool[pool != point]
            if pool.size >= k:
                out[point] = rng.choice(pool, size=k, replace=False)
            else:
                extra = rng.choice(n - 1, size=k - pool.size, replace=False)
                extra[extra >= point] += 1
                out[point] = np.concatenate([pool, extra])[:k]
        return out

    def memory_bytes(self) -> int:
        """Total bytes across all trees."""
        return sum(t.memory_bytes() for t in self.trees)
